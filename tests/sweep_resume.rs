//! Crash-safe resume of streamed sweeps: kill a sweep mid-write (simulated
//! by truncating a shard inside a record and deleting another shard
//! outright), resume with the same matrix, and verify that only the missing
//! cells re-run and the final report is byte-for-byte the uninterrupted
//! sweep's.

use std::path::PathBuf;

use spcp::harness::spool::{self, SpoolError};
use spcp::harness::{RunMatrix, StreamConfig, SweepEngine};
use spcp::system::{PredictorKind, ProtocolKind};
use spcp::workloads::suite;

/// 2 benchmarks × 3 protocols × 2 seeds = 12 runs.
fn matrix_12() -> RunMatrix {
    RunMatrix::new()
        .bench(suite::by_name("fft").unwrap())
        .bench(suite::by_name("radix").unwrap())
        .protocol("dir", ProtocolKind::Directory)
        .protocol("bc", ProtocolKind::Broadcast)
        .protocol("sp", ProtocolKind::Predicted(PredictorKind::sp_default()))
        .seeds(&[7, 11])
}

struct Spool(PathBuf);

impl Spool {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("spcp-resume-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Spool(dir)
    }
}

impl Drop for Spool {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Counts the complete records currently recoverable from the spool.
fn recoverable(dir: &std::path::Path, fingerprint: u64) -> usize {
    let shards = spool::shard_files(dir).expect("list shards");
    let mut merge = spool::SpoolMerge::open(&shards, fingerprint).expect("open shards");
    let mut n = 0;
    while merge.next().expect("merge").is_some() {
        n += 1;
    }
    n
}

#[test]
fn kill_then_resume_is_bit_identical_to_uninterrupted() {
    let matrix = matrix_12();

    // The uninterrupted reference sweep.
    let clean = Spool::new("clean");
    let uninterrupted = SweepEngine::new(4)
        .run_streamed(&matrix, &StreamConfig::new(&clean.0))
        .expect("reference sweep");
    let reference_render = uninterrupted.render_golden().expect("replay");
    let reference_summary = uninterrupted.summary().expect("replay");

    // The "crashed" sweep: run to completion, then damage the spool the
    // way a mid-write kill would — one shard loses bytes inside its last
    // record (torn frame), another disappears entirely (never flushed).
    let crashed = Spool::new("crashed");
    let first = SweepEngine::new(4)
        .run_streamed(&matrix, &StreamConfig::new(&crashed.0))
        .expect("first sweep");
    assert_eq!(first.executed, 12);
    let fingerprint = first.fingerprint();

    let shards = spool::shard_files(&crashed.0).expect("list shards");
    assert!(shards.len() >= 2, "4 workers over 12 runs make >=2 shards");
    // Tear the tail record of the first shard: cut inside the frame, not
    // at the line boundary.
    let torn = &shards[0];
    let bytes = std::fs::read(torn).expect("read shard");
    assert!(bytes.ends_with(b"\n"));
    std::fs::write(torn, &bytes[..bytes.len() - 7]).expect("truncate shard");
    // Drop the last shard wholesale.
    std::fs::remove_file(shards.last().unwrap()).expect("remove shard");

    let survivors = recoverable(&crashed.0, fingerprint);
    assert!(survivors < 12, "the damage must lose at least one record");

    // Fresh mode refuses the dirty directory...
    let fresh = SweepEngine::new(4).run_streamed(&matrix, &StreamConfig::new(&crashed.0));
    assert!(matches!(fresh, Err(SpoolError::NotEmpty { .. })));

    // ...resume re-runs exactly the missing cells...
    let resumed = SweepEngine::new(4)
        .run_streamed(&matrix, &StreamConfig::new(&crashed.0).resume(true))
        .expect("resumed sweep");
    assert_eq!(resumed.resumed, survivors);
    assert_eq!(resumed.executed, 12 - survivors);

    // ...and the final report is byte-for-byte the uninterrupted one's.
    assert_eq!(resumed.render_golden().expect("replay"), reference_render);
    assert_eq!(resumed.summary().expect("replay"), reference_summary);
}

#[test]
fn resume_after_clean_completion_executes_nothing() {
    let matrix = matrix_12();
    let spool = Spool::new("noop");
    let first = SweepEngine::new(2)
        .run_streamed(&matrix, &StreamConfig::new(&spool.0))
        .expect("first sweep");
    let render = first.render_golden().expect("replay");

    let again = SweepEngine::new(2)
        .run_streamed(&matrix, &StreamConfig::new(&spool.0).resume(true))
        .expect("resume");
    assert_eq!(again.executed, 0);
    assert_eq!(again.resumed, 12);
    assert_eq!(again.render_golden().expect("replay"), render);
}

#[test]
fn resume_rejects_a_different_matrix() {
    let spool = Spool::new("mismatch");
    SweepEngine::new(2)
        .run_streamed(&matrix_12(), &StreamConfig::new(&spool.0))
        .expect("first sweep");

    // Same shape, different seed set: a different experiment entirely.
    let other = RunMatrix::new()
        .bench(suite::by_name("fft").unwrap())
        .bench(suite::by_name("radix").unwrap())
        .protocol("dir", ProtocolKind::Directory)
        .protocol("bc", ProtocolKind::Broadcast)
        .protocol("sp", ProtocolKind::Predicted(PredictorKind::sp_default()))
        .seeds(&[13, 17]);
    let err = SweepEngine::new(2).run_streamed(&other, &StreamConfig::new(&spool.0).resume(true));
    assert!(matches!(err, Err(SpoolError::MatrixMismatch { .. })));
}
