//! Randomized property tests on the core data structures and invariants,
//! cross-checked against simple reference models.
//!
//! Inputs are driven by the workspace's own deterministic PRNG
//! (`spcp::sim::DetRng`), so the suite runs fully offline and every case is
//! reproducible from its printed case number.

use spcp::harness::frame;
use spcp::mem::{BlockAddr, CacheConfig, SetAssocCache, BLOCK_BYTES};
use spcp::noc::Mesh;
use spcp::predict::CommCounters;
use spcp::sim::{CoreId, CoreSet, Cycle, DetRng, EventQueue};

mod common;
use common::RefCache;

/// Cases per randomized test.
const CASES: u64 = 64;
const PROP_SEED: u64 = 0x9d0b_5eed;

fn case_rng(test_salt: u64, case: u64) -> DetRng {
    DetRng::seeded(PROP_SEED ^ test_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case)
}

/// An arbitrary 64-bit value (both halves uniform).
fn any_u64(rng: &mut DetRng) -> u64 {
    (rng.range(0, 1 << 32) << 32) | rng.range(0, 1 << 32)
}

// ---------------- CoreSet algebra ----------------

#[test]
fn coreset_union_superset_of_both() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        let (sa, sb) = (
            CoreSet::from_bits(any_u64(&mut rng)),
            CoreSet::from_bits(any_u64(&mut rng)),
        );
        let u = sa.union(sb);
        assert!(u.is_superset(sa), "case {case}");
        assert!(u.is_superset(sb), "case {case}");
        assert_eq!(u, sb.union(sa), "case {case}");
    }
}

#[test]
fn coreset_intersect_subset_of_both() {
    for case in 0..CASES {
        let mut rng = case_rng(11, case);
        let (sa, sb) = (
            CoreSet::from_bits(any_u64(&mut rng)),
            CoreSet::from_bits(any_u64(&mut rng)),
        );
        let i = sa.intersect(sb);
        assert!(sa.is_superset(i), "case {case}");
        assert!(sb.is_superset(i), "case {case}");
    }
}

#[test]
fn coreset_len_matches_iteration() {
    for case in 0..CASES {
        let mut rng = case_rng(12, case);
        let s = CoreSet::from_bits(any_u64(&mut rng));
        assert_eq!(s.len(), s.iter().count(), "case {case}");
        // Round trip through the iterator.
        let rebuilt: CoreSet = s.iter().collect();
        assert_eq!(rebuilt, s, "case {case}");
    }
}

#[test]
fn coreset_difference_disjoint_from_subtrahend() {
    for case in 0..CASES {
        let mut rng = case_rng(13, case);
        let (a, b) = (any_u64(&mut rng), any_u64(&mut rng));
        let d = CoreSet::from_bits(a).difference(CoreSet::from_bits(b));
        assert!(d.intersect(CoreSet::from_bits(b)).is_empty(), "case {case}");
    }
}

// ---------------- Event queue ----------------

#[test]
fn event_queue_pops_sorted() {
    for case in 0..CASES {
        let mut rng = case_rng(20, case);
        let n = rng.range(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.range(0, 1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle::new(t), i);
        }
        let mut last = Cycle::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "case {case}");
            last = t;
            popped += 1;
        }
        assert_eq!(popped, times.len(), "case {case}");
    }
}

#[test]
fn event_queue_equal_times_fifo() {
    for case in 0..CASES {
        let mut rng = case_rng(21, case);
        let n = rng.range(1, 100) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(Cycle::new(42), i);
        }
        for i in 0..n {
            assert_eq!(q.pop().map(|(_, x)| x), Some(i), "case {case}");
        }
    }
}

// ---------------- Mesh routing ----------------

#[test]
fn mesh_route_reaches_destination() {
    for case in 0..CASES {
        let mut rng = case_rng(30, case);
        let w = rng.range(1, 6) as usize;
        let h = rng.range(1, 6) as usize;
        let mesh = Mesh::new(w, h);
        let n = mesh.nodes();
        let src = CoreId::new(rng.index(n));
        let dst = CoreId::new(rng.index(n));
        let route = mesh.route(src, dst);
        assert_eq!(route.len(), mesh.hops(src, dst), "case {case}");
        assert_eq!(mesh.hops(src, dst), mesh.hops(dst, src), "case {case}");
    }
}

#[test]
fn mesh_hops_triangle_inequality() {
    for case in 0..CASES {
        let mut rng = case_rng(31, case);
        let mesh = Mesh::new(4, 4);
        let a = CoreId::new(rng.index(16));
        let b = CoreId::new(rng.index(16));
        let c = CoreId::new(rng.index(16));
        assert!(
            mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c),
            "case {case}"
        );
    }
}

// ---------------- Set-associative cache vs reference model ----------------

#[test]
fn cache_agrees_with_reference_lru() {
    for case in 0..CASES {
        let mut rng = case_rng(40, case);
        let n_ops = rng.range(1, 300) as usize;
        // 2-way, 4-set cache against a per-set reference LRU list.
        let cfg = CacheConfig {
            size_bytes: 8 * BLOCK_BYTES,
            assoc: 2,
            block_bytes: BLOCK_BYTES,
            tag_cycles: 1,
            data_cycles: 1,
        };
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(cfg);
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); 4]; // MRU at back
        for _ in 0..n_ops {
            let block = rng.range(0, 64);
            let is_insert = rng.chance(0.5);
            let set = (block % 4) as usize;
            let b = BlockAddr::from_index(block);
            if is_insert {
                cache.insert(b, block);
                let r = &mut reference[set];
                if let Some(pos) = r.iter().position(|&x| x == block) {
                    r.remove(pos);
                } else if r.len() == 2 {
                    r.remove(0); // evict LRU
                }
                r.push(block);
            } else {
                let hit = cache.lookup(b).is_some();
                let r = &mut reference[set];
                let ref_hit = r.contains(&block);
                assert_eq!(hit, ref_hit, "case {case} block {block}");
                if let Some(pos) = r.iter().position(|&x| x == block) {
                    let v = r.remove(pos);
                    r.push(v); // refresh recency
                }
            }
        }
        // Final contents agree.
        let mut got: Vec<u64> = cache.iter().map(|(b, _)| b.index()).collect();
        let mut want: Vec<u64> = reference.into_iter().flatten().collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}

// ---------------- Cache LRU invariants (SoA and reference) ----------------
//
// The same three invariants are checked against the SoA `SetAssocCache`
// (through its `set_ways` introspection) and the pre-SoA reference model
// (`tests/common/mod.rs`) independently, so a violation pinpoints which
// implementation drifted.

/// A small random geometry plus an op stream applied to both caches.
fn churned_pair(rng: &mut DetRng, ops: usize) -> (SetAssocCache<u64>, RefCache<u64>) {
    let assoc = *rng.pick(&[1usize, 2, 4, 8]);
    let sets = *rng.pick(&[2usize, 3, 4, 8]);
    let cfg = CacheConfig {
        size_bytes: (assoc * sets) as u64 * BLOCK_BYTES,
        assoc,
        block_bytes: BLOCK_BYTES,
        tag_cycles: 1,
        data_cycles: 1,
    };
    let mut soa: SetAssocCache<u64> = SetAssocCache::new(cfg);
    let mut aos: RefCache<u64> = RefCache::new(cfg);
    let universe = (assoc * sets) as u64 * 3;
    for _ in 0..ops {
        let b = BlockAddr::from_index(rng.range(0, universe));
        match rng.index(3) {
            0 => {
                let v = rng.range(0, 1 << 20);
                soa.insert(b, v);
                aos.insert(b, v);
            }
            1 => {
                soa.lookup(b);
                aos.lookup(b);
            }
            _ => {
                soa.invalidate(b);
                aos.invalidate(b);
            }
        }
    }
    (soa, aos)
}

/// Sorting a set's ways by LRU stamp permutes exactly its resident ways:
/// stamps are pairwise distinct (the global clock ticks on every stamping
/// op) and the stamp-ordered list holds the same blocks, each once.
#[test]
fn cache_lru_order_is_permutation_of_resident_ways() {
    for case in 0..CASES {
        let mut rng = case_rng(41, case);
        let ops = rng.range(50, 400) as usize;
        let (soa, aos) = churned_pair(&mut rng, ops);
        let mut soa_total = 0;
        for set in 0..soa.num_sets() {
            let ways: Vec<(BlockAddr, u64)> = soa.set_ways(set).collect();
            soa_total += ways.len();
            let mut by_stamp = ways.clone();
            by_stamp.sort_by_key(|&(_, stamp)| stamp);
            let mut blocks: Vec<BlockAddr> = ways.iter().map(|&(b, _)| b).collect();
            let mut permuted: Vec<BlockAddr> = by_stamp.iter().map(|&(b, _)| b).collect();
            blocks.sort_by_key(|b| b.index());
            permuted.sort_by_key(|b| b.index());
            assert_eq!(blocks, permuted, "case {case} set {set}: permutation");
            for w in by_stamp.windows(2) {
                assert!(w[0].1 < w[1].1, "case {case} set {set}: stamp collision");
            }
        }
        assert_eq!(soa_total, soa.len(), "case {case}: occupancy");
        let mut aos_total = 0;
        for set in 0..aos.num_sets() {
            let mut ways = aos.set_ways(set);
            aos_total += ways.len();
            ways.sort_by_key(|&(_, stamp)| stamp);
            for w in ways.windows(2) {
                assert!(
                    w[0].1 < w[1].1,
                    "case {case} set {set}: ref stamp collision"
                );
            }
        }
        assert_eq!(aos_total, aos.len(), "case {case}: ref occupancy");
    }
}

/// When a full set takes a new block, the victim is always the resident
/// way with the oldest (minimum) LRU stamp.
#[test]
fn cache_eviction_selects_oldest_stamp() {
    for case in 0..CASES {
        let mut rng = case_rng(42, case);
        let warmup = rng.range(20, 200) as usize;
        let (mut soa, mut aos) = churned_pair(&mut rng, warmup);
        let universe = soa.num_sets() as u64 * soa.config().assoc as u64 * 3;
        let mut evictions = 0;
        for i in 0..200 {
            let b = BlockAddr::from_index(rng.range(0, universe));
            let assoc = soa.config().assoc;
            let set = soa.set_of(b);
            let ways: Vec<(BlockAddr, u64)> = soa.set_ways(set).collect();
            let expect_evict = ways.len() == assoc && !ways.iter().any(|&(w, _)| w == b);
            let oldest = ways
                .iter()
                .min_by_key(|&&(_, stamp)| stamp)
                .map(|&(w, _)| w);
            let ref_oldest = aos
                .set_ways(set)
                .into_iter()
                .min_by_key(|&(_, stamp)| stamp)
                .map(|(w, _)| BlockAddr::from_index(w));
            assert_eq!(oldest, ref_oldest, "case {case} insert {i}: oldest way");
            let v = rng.range(0, 1 << 20);
            let victim = soa.insert(b, v);
            let ref_victim = aos.insert(b, v);
            assert_eq!(victim, ref_victim, "case {case} insert {i}");
            if expect_evict {
                evictions += 1;
                assert_eq!(
                    victim.map(|(w, _)| w),
                    oldest,
                    "case {case} insert {i}: victim is not the oldest stamp"
                );
            }
        }
        assert!(evictions > 0, "case {case}: stream never filled a set");
    }
}

/// `lookup` — hit or miss — never changes which blocks are resident.
#[test]
fn cache_lookup_never_changes_occupancy() {
    for case in 0..CASES {
        let mut rng = case_rng(43, case);
        let warmup = rng.range(20, 300) as usize;
        let (mut soa, mut aos) = churned_pair(&mut rng, warmup);
        let universe = soa.num_sets() as u64 * soa.config().assoc as u64 * 3;
        for i in 0..100 {
            let b = BlockAddr::from_index(rng.range(0, universe));
            let before: Vec<(u64, u64)> = (0..soa.num_sets())
                .flat_map(|s| soa.set_ways(s).collect::<Vec<_>>())
                .map(|(blk, _)| (blk.index(), 0))
                .collect();
            let ref_before = aos.len();
            let hit = soa.lookup(b).is_some();
            let ref_hit = aos.lookup(b).is_some();
            assert_eq!(hit, ref_hit, "case {case} lookup {i}");
            let after: Vec<(u64, u64)> = (0..soa.num_sets())
                .flat_map(|s| soa.set_ways(s).collect::<Vec<_>>())
                .map(|(blk, _)| (blk.index(), 0))
                .collect();
            assert_eq!(before, after, "case {case} lookup {i}: resident set moved");
            assert_eq!(
                ref_before,
                aos.len(),
                "case {case} lookup {i}: ref occupancy"
            );
        }
        assert!(soa.audit().is_ok(), "case {case}");
    }
}

// ---------------- Hot-set extraction ----------------

fn random_counters(rng: &mut DetRng, max_volume: u64) -> CommCounters {
    let mut c = CommCounters::new(16);
    for i in 0..16 {
        for _ in 0..rng.range(0, max_volume) {
            c.record(CoreId::new(i));
        }
    }
    c
}

#[test]
fn hot_set_members_meet_threshold() {
    for case in 0..CASES {
        let mut rng = case_rng(50, case);
        let c = random_counters(&mut rng, 200);
        let th = 0.01 + rng.unit() * 0.49;
        let hot = c.hot_set(th, None);
        let total = c.total();
        for core in hot.iter() {
            assert!(
                c.volume(core) as f64 >= (total as f64 * th).ceil().max(1.0) - 0.5,
                "case {case}: member below threshold"
            );
        }
        // Non-members are below threshold.
        for i in 0..16 {
            let core = CoreId::new(i);
            if !hot.contains(core) && total > 0 {
                assert!(
                    (c.volume(core) as u64) < ((total as f64 * th).ceil() as u64).max(1),
                    "case {case}"
                );
            }
        }
    }
}

#[test]
fn hot_set_cap_keeps_hottest() {
    for case in 0..CASES {
        let mut rng = case_rng(51, case);
        let c = random_counters(&mut rng, 100);
        let capped = c.hot_set(0.05, Some(2));
        assert!(capped.len() <= 2, "case {case}");
        let uncapped = c.hot_set(0.05, None);
        assert!(uncapped.is_superset(capped), "case {case}");
        // Every member of the capped set has volume >= every non-member of
        // the uncapped set that was dropped.
        for m in capped.iter() {
            for d in uncapped.difference(capped).iter() {
                assert!(c.volume(m) >= c.volume(d), "case {case}");
            }
        }
    }
}

#[test]
fn coverage_by_top_is_monotone() {
    for case in 0..CASES {
        let mut rng = case_rng(52, case);
        let c = random_counters(&mut rng, 100);
        let mut prev = 0.0;
        for k in 0..=16 {
            let cov = c.coverage_by_top(k);
            assert!(cov + 1e-12 >= prev, "case {case} k={k}");
            assert!((0.0..=1.0 + 1e-12).contains(&cov), "case {case} k={k}");
            prev = cov;
        }
        if c.total() > 0 {
            assert!((c.coverage_by_top(16) - 1.0).abs() < 1e-9, "case {case}");
        }
    }
}

// ---------------- Signature history ----------------

#[test]
fn sig_history_keeps_newest_d() {
    for case in 0..CASES {
        let mut rng = case_rng(60, case);
        let n = rng.range(1, 40) as usize;
        let sigs: Vec<u64> = (0..n).map(|_| rng.range(0, 0xFFFF)).collect();
        let d = rng.range(1, 5) as usize;
        let mut h = spcp::predict::SigHistory::new(d);
        for &s in &sigs {
            h.push(CoreSet::from_bits(s));
        }
        assert_eq!(h.len(), sigs.len().min(d), "case {case}");
        assert_eq!(
            h.newest(),
            Some(CoreSet::from_bits(*sigs.last().unwrap())),
            "case {case}"
        );
        if sigs.len() >= 2 && d >= 2 {
            assert_eq!(
                h.previous(),
                Some(CoreSet::from_bits(sigs[sigs.len() - 2])),
                "case {case}"
            );
        }
        // stable() is always a subset of the union of the history.
        if let Some(st) = h.stable() {
            assert!(h.union().is_superset(st), "case {case}");
        }
    }
}

#[test]
fn stride2_flag_matches_definition() {
    for case in 0..CASES {
        let mut rng = case_rng(61, case);
        let n = rng.range(3, 30) as usize;
        let sigs: Vec<u64> = (0..n).map(|_| rng.range(0, 16)).collect();
        let mut h = spcp::predict::SigHistory::new(2);
        let mut expected = false;
        for (i, &s) in sigs.iter().enumerate() {
            if i >= 2 {
                expected = s == sigs[i - 2] && s != sigs[i - 1];
            }
            h.push(CoreSet::from_bits(s));
        }
        assert_eq!(h.stride2_detected(), expected, "case {case}: {sigs:?}");
    }
}

// ---------------- NoC fabric ----------------

#[test]
fn fabric_latency_monotone_in_departure_without_contention() {
    use spcp::noc::{Fabric, MsgKind, NocConfig};
    for case in 0..CASES {
        let mut rng = case_rng(70, case);
        let src = rng.index(16);
        let dst = rng.index(16);
        let t1 = rng.range(0, 10_000);
        let dt = rng.range(0, 10_000);
        let mut f = Fabric::new(NocConfig {
            model_contention: false,
            ..NocConfig::default()
        });
        let a = f.send(
            CoreId::new(src),
            CoreId::new(dst),
            MsgKind::Request,
            Cycle::new(t1),
        );
        let b = f.send(
            CoreId::new(src),
            CoreId::new(dst),
            MsgKind::Request,
            Cycle::new(t1 + dt),
        );
        // Same route, later departure: arrival shifts by exactly dt.
        assert_eq!(b.as_u64() - a.as_u64(), dt, "case {case}");
        // And arrival never precedes departure.
        assert!(a.as_u64() >= t1, "case {case}");
    }
}

#[test]
fn fabric_accounting_is_additive() {
    use spcp::noc::{Fabric, MsgKind, NocConfig};
    for case in 0..CASES {
        let mut rng = case_rng(71, case);
        let n = rng.range(1, 60) as usize;
        let pairs: Vec<(usize, usize)> = (0..n).map(|_| (rng.index(16), rng.index(16))).collect();
        let mut f = Fabric::new(NocConfig::default());
        let mesh = Mesh::new(4, 4);
        let mut expected_hops = 0u64;
        for &(s, d) in &pairs {
            f.send(
                CoreId::new(s),
                CoreId::new(d),
                MsgKind::Request,
                Cycle::ZERO,
            );
            expected_hops += mesh.hops(CoreId::new(s), CoreId::new(d)) as u64;
        }
        let stats = f.stats();
        assert_eq!(stats.messages, pairs.len() as u64, "case {case}");
        assert_eq!(stats.byte_hops, 8 * expected_hops, "case {case}");
        assert_eq!(
            stats.ctrl_byte_hops, stats.byte_hops,
            "case {case}: requests are control-only"
        );
        // Energy: 5 units per byte-hop (link 1 + router 4).
        assert!(
            (stats.energy - 5.0 * stats.byte_hops as f64).abs() < 1e-6,
            "case {case}"
        );
    }
}

// ---------------- Trace analyzer vs raw event stream ----------------

#[test]
fn trace_analyzer_counts_match_stream() {
    use spcp::sync::SyncKind;
    use spcp::trace::{TraceAnalyzer, TraceEvent};
    for case in 0..CASES {
        let mut rng = case_rng(80, case);
        let n = rng.range(0, 200) as usize;
        let stream: Vec<TraceEvent> = (0..n)
            .map(|_| {
                let core = rng.index(8);
                let val = rng.range(0, 4);
                if rng.chance(0.5) {
                    TraceEvent::Sync {
                        core: CoreId::new(core),
                        kind: SyncKind::Barrier,
                        static_id: val as u32 + 1,
                        instance: 0,
                    }
                } else {
                    TraceEvent::Miss {
                        core: CoreId::new(core),
                        block: BlockAddr::from_index(val),
                        pc: 0,
                        kind: spcp::predict::AccessKind::Read,
                        targets: CoreSet::from_bits(val),
                    }
                }
            })
            .collect();
        let a = TraceAnalyzer::from_events(8, &stream);
        let misses = stream
            .iter()
            .filter(|e| matches!(e, TraceEvent::Miss { .. }))
            .count() as u64;
        let comm = stream.iter().filter(|e| e.is_communicating_miss()).count() as u64;
        let syncs = stream.len() as u64 - misses;
        assert_eq!(a.total_misses(), misses, "case {case}");
        assert_eq!(a.comm_misses(), comm, "case {case}");
        assert_eq!(a.epochs().len() as u64, syncs, "case {case}");
        // Attributed volume never exceeds total communication events.
        let attributed: u64 = a.epochs().iter().map(|e| e.total_volume()).sum();
        let total_targets: u64 = stream
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Miss { targets, .. } => Some(targets.len() as u64),
                _ => None,
            })
            .sum();
        assert!(attributed <= total_targets, "case {case}");
    }
}

// ---------------- Workload generation ----------------

#[test]
fn generation_deterministic_and_balanced() {
    for case in 0..8 {
        let mut rng = case_rng(90, case);
        let seed = any_u64(&mut rng);
        let spec = spcp::workloads::suite::x264();
        let a = spec.generate(16, seed);
        let b = spec.generate(16, seed);
        assert_eq!(a.threads(), b.threads(), "seed {seed}");
        // All threads observe the same barrier count.
        let barriers: Vec<usize> = a
            .threads()
            .iter()
            .map(|t| {
                t.iter()
                    .filter(|o| {
                        matches!(o, spcp::workloads::Op::Sync(p)
                            if p.kind == spcp::sync::SyncKind::Barrier)
                    })
                    .count()
            })
            .collect();
        assert!(barriers.windows(2).all(|w| w[0] == w[1]), "seed {seed}");
    }
}

// ---------------- Spool frame codec ----------------

/// A random frame payload: printable ASCII (never a newline — the encoder
/// rejects embedded newlines by contract), length 0..=40.
fn any_payload(rng: &mut DetRng) -> String {
    let len = rng.index(41);
    (0..len)
        .map(|_| char::from(rng.range(0x20, 0x7f) as u8))
        .collect()
}

/// A random valid frame stream plus its payloads.
fn any_stream(rng: &mut DetRng, max_frames: usize) -> (Vec<u8>, Vec<String>) {
    let n = rng.index(max_frames + 1);
    let payloads: Vec<String> = (0..n).map(|_| any_payload(rng)).collect();
    let stream = payloads
        .iter()
        .map(|p| frame::encode(p))
        .collect::<String>();
    (stream.into_bytes(), payloads)
}

#[test]
fn frame_encode_decode_round_trips() {
    for case in 0..CASES {
        let mut rng = case_rng(100, case);
        let payload = any_payload(&mut rng);
        let encoded = frame::encode(&payload);
        assert!(encoded.ends_with('\n'), "case {case}");
        let line = encoded.trim_end_matches('\n');
        assert_eq!(
            frame::decode_line(line.as_bytes()),
            Ok(payload.as_str()),
            "case {case}"
        );
    }
}

#[test]
fn frame_truncation_yields_exact_prefix() {
    for case in 0..CASES {
        let mut rng = case_rng(101, case);
        let (stream, payloads) = any_stream(&mut rng, 8);
        let cut = rng.index(stream.len() + 1);
        let decoded = frame::decode_stream(&stream[..cut]);
        // Complete frames before the cut decode exactly; the torn frame is
        // reported as a truncated tail, never misparsed or miscounted.
        assert!(decoded.payloads.len() <= payloads.len(), "case {case}");
        assert_eq!(
            decoded.payloads,
            payloads[..decoded.payloads.len()],
            "case {case}"
        );
        assert_eq!(
            decoded.rejected, 0,
            "case {case}: truncation is not corruption"
        );
        let consumed: usize = payloads[..decoded.payloads.len()]
            .iter()
            .map(|p| frame::encode(p).len())
            .sum();
        assert_eq!(decoded.truncated_tail, cut != consumed, "case {case}");
    }
}

#[test]
fn frame_bit_flips_never_misparse() {
    for case in 0..CASES {
        let mut rng = case_rng(102, case);
        let (mut stream, payloads) = any_stream(&mut rng, 6);
        if stream.is_empty() {
            continue;
        }
        let byte = rng.index(stream.len());
        let bit = rng.index(8);
        stream[byte] ^= 1 << bit;
        let decoded = frame::decode_stream(&stream);
        // Every payload that still decodes must be one of the originals:
        // a flip either leaves a frame untouched-equivalent or gets the
        // frame rejected — it never yields a novel payload.
        for p in &decoded.payloads {
            assert!(
                payloads.iter().any(|orig| orig == p),
                "case {case}: misparsed {p:?}"
            );
        }
        assert!(decoded.payloads.len() <= payloads.len(), "case {case}");
    }
}

#[test]
fn frame_concatenation_decodes_both_streams() {
    for case in 0..CASES {
        let mut rng = case_rng(103, case);
        let (a, pa) = any_stream(&mut rng, 5);
        let (b, pb) = any_stream(&mut rng, 5);
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        let decoded = frame::decode_stream(&joined);
        let expected: Vec<String> = pa.iter().chain(&pb).cloned().collect();
        assert_eq!(decoded.payloads, expected, "case {case}");
        assert_eq!(decoded.rejected, 0, "case {case}");
        assert!(!decoded.truncated_tail, "case {case}");
    }
}
