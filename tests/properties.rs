//! Property-based tests on the core data structures and invariants,
//! cross-checked against simple reference models.

use proptest::prelude::*;
use spcp::mem::{BlockAddr, CacheConfig, SetAssocCache, BLOCK_BYTES};
use spcp::predict::CommCounters;
use spcp::sim::{CoreId, CoreSet, Cycle, EventQueue};
use spcp::noc::Mesh;

proptest! {
    // ---------------- CoreSet algebra ----------------

    #[test]
    fn coreset_union_superset_of_both(a: u64, b: u64) {
        let (sa, sb) = (CoreSet::from_bits(a), CoreSet::from_bits(b));
        let u = sa.union(sb);
        prop_assert!(u.is_superset(sa));
        prop_assert!(u.is_superset(sb));
        prop_assert_eq!(u, sb.union(sa));
    }

    #[test]
    fn coreset_intersect_subset_of_both(a: u64, b: u64) {
        let (sa, sb) = (CoreSet::from_bits(a), CoreSet::from_bits(b));
        let i = sa.intersect(sb);
        prop_assert!(sa.is_superset(i));
        prop_assert!(sb.is_superset(i));
    }

    #[test]
    fn coreset_len_matches_iteration(a: u64) {
        let s = CoreSet::from_bits(a);
        prop_assert_eq!(s.len(), s.iter().count());
        // Round trip through the iterator.
        let rebuilt: CoreSet = s.iter().collect();
        prop_assert_eq!(rebuilt, s);
    }

    #[test]
    fn coreset_difference_disjoint_from_subtrahend(a: u64, b: u64) {
        let d = CoreSet::from_bits(a).difference(CoreSet::from_bits(b));
        prop_assert!(d.intersect(CoreSet::from_bits(b)).is_empty());
    }

    // ---------------- Event queue ----------------

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle::new(t), i);
        }
        let mut last = Cycle::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    #[test]
    fn event_queue_equal_times_fifo(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(Cycle::new(42), i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop().map(|(_, x)| x), Some(i));
        }
    }

    // ---------------- Mesh routing ----------------

    #[test]
    fn mesh_route_reaches_destination(w in 1usize..6, h in 1usize..6, s: u16, d: u16) {
        let mesh = Mesh::new(w, h);
        let n = mesh.nodes();
        let src = CoreId::new(s as usize % n);
        let dst = CoreId::new(d as usize % n);
        let route = mesh.route(src, dst);
        prop_assert_eq!(route.len(), mesh.hops(src, dst));
        // Hops satisfy the triangle equality for X-Y routing via any
        // intermediate column point.
        prop_assert_eq!(mesh.hops(src, dst), mesh.hops(dst, src));
    }

    #[test]
    fn mesh_hops_triangle_inequality(s: u16, m: u16, d: u16) {
        let mesh = Mesh::new(4, 4);
        let a = CoreId::new(s as usize % 16);
        let b = CoreId::new(m as usize % 16);
        let c = CoreId::new(d as usize % 16);
        prop_assert!(mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c));
    }

    // ---------------- Set-associative cache vs reference model ----------------

    #[test]
    fn cache_agrees_with_reference_lru(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..300)) {
        // 2-way, 4-set cache against a per-set reference LRU list.
        let cfg = CacheConfig {
            size_bytes: 8 * BLOCK_BYTES,
            assoc: 2,
            block_bytes: BLOCK_BYTES,
            tag_cycles: 1,
            data_cycles: 1,
        };
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(cfg);
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); 4]; // MRU at back
        for (block, is_insert) in ops {
            let set = (block % 4) as usize;
            let b = BlockAddr::from_index(block);
            if is_insert {
                cache.insert(b, block);
                let r = &mut reference[set];
                if let Some(pos) = r.iter().position(|&x| x == block) {
                    r.remove(pos);
                } else if r.len() == 2 {
                    r.remove(0); // evict LRU
                }
                r.push(block);
            } else {
                let hit = cache.lookup(b).is_some();
                let r = &mut reference[set];
                let ref_hit = r.contains(&block);
                prop_assert_eq!(hit, ref_hit, "block {}", block);
                if let Some(pos) = r.iter().position(|&x| x == block) {
                    let v = r.remove(pos);
                    r.push(v); // refresh recency
                }
            }
        }
        // Final contents agree.
        let mut got: Vec<u64> = cache.iter().map(|(b, _)| b.index()).collect();
        let mut want: Vec<u64> = reference.into_iter().flatten().collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    // ---------------- Hot-set extraction ----------------

    #[test]
    fn hot_set_members_meet_threshold(
        volumes in proptest::collection::vec(0u32..200, 16),
        th in 0.01f64..0.5,
    ) {
        let mut c = CommCounters::new(16);
        for (i, &v) in volumes.iter().enumerate() {
            for _ in 0..v {
                c.record(CoreId::new(i));
            }
        }
        let hot = c.hot_set(th, None);
        let total = c.total();
        for core in hot.iter() {
            prop_assert!(
                c.volume(core) as f64 >= (total as f64 * th).ceil().max(1.0) - 0.5,
                "member below threshold"
            );
        }
        // Non-members are below threshold.
        for i in 0..16 {
            let core = CoreId::new(i);
            if !hot.contains(core) && total > 0 {
                prop_assert!((c.volume(core) as u64) < ((total as f64 * th).ceil() as u64).max(1));
            }
        }
    }

    #[test]
    fn hot_set_cap_keeps_hottest(volumes in proptest::collection::vec(0u32..100, 16)) {
        let mut c = CommCounters::new(16);
        for (i, &v) in volumes.iter().enumerate() {
            for _ in 0..v {
                c.record(CoreId::new(i));
            }
        }
        let capped = c.hot_set(0.05, Some(2));
        prop_assert!(capped.len() <= 2);
        let uncapped = c.hot_set(0.05, None);
        prop_assert!(uncapped.is_superset(capped));
        // Every member of the capped set has volume >= every non-member of
        // the uncapped set that was dropped.
        for m in capped.iter() {
            for d in uncapped.difference(capped).iter() {
                prop_assert!(c.volume(m) >= c.volume(d));
            }
        }
    }

    #[test]
    fn coverage_by_top_is_monotone(volumes in proptest::collection::vec(0u32..100, 16)) {
        let mut c = CommCounters::new(16);
        for (i, &v) in volumes.iter().enumerate() {
            for _ in 0..v {
                c.record(CoreId::new(i));
            }
        }
        let mut prev = 0.0;
        for k in 0..=16 {
            let cov = c.coverage_by_top(k);
            prop_assert!(cov + 1e-12 >= prev);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&cov));
            prev = cov;
        }
        if c.total() > 0 {
            prop_assert!((c.coverage_by_top(16) - 1.0).abs() < 1e-9);
        }
    }
}

// ---------------- Signature history ----------------

proptest! {
    #[test]
    fn sig_history_keeps_newest_d(sigs in proptest::collection::vec(0u64..0xFFFF, 1..40), d in 1usize..5) {
        let mut h = spcp::predict::SigHistory::new(d);
        for &s in &sigs {
            h.push(CoreSet::from_bits(s));
        }
        prop_assert_eq!(h.len(), sigs.len().min(d));
        prop_assert_eq!(h.newest(), Some(CoreSet::from_bits(*sigs.last().unwrap())));
        if sigs.len() >= 2 && d >= 2 {
            prop_assert_eq!(h.previous(), Some(CoreSet::from_bits(sigs[sigs.len() - 2])));
        }
        // stable() is always a subset of the newest signature's union with
        // the previous.
        if let Some(st) = h.stable() {
            prop_assert!(h.union().is_superset(st));
        }
    }

    #[test]
    fn stride2_flag_matches_definition(sigs in proptest::collection::vec(0u64..16, 3..30)) {
        let mut h = spcp::predict::SigHistory::new(2);
        let mut expected = false;
        for (i, &s) in sigs.iter().enumerate() {
            if i >= 2 {
                expected = s == sigs[i - 2] && s != sigs[i - 1];
            }
            h.push(CoreSet::from_bits(s));
        }
        prop_assert_eq!(h.stride2_detected(), expected);
    }
}

// ---------------- NoC fabric ----------------

proptest! {
    #[test]
    fn fabric_latency_monotone_in_departure_without_contention(
        src in 0usize..16, dst in 0usize..16, t1 in 0u64..10_000, dt in 0u64..10_000,
    ) {
        use spcp::noc::{Fabric, MsgKind, NocConfig};
        use spcp::sim::Cycle;
        let mut f = Fabric::new(NocConfig { model_contention: false, ..NocConfig::default() });
        let a = f.send(
            spcp::sim::CoreId::new(src), spcp::sim::CoreId::new(dst),
            MsgKind::Request, Cycle::new(t1),
        );
        let b = f.send(
            spcp::sim::CoreId::new(src), spcp::sim::CoreId::new(dst),
            MsgKind::Request, Cycle::new(t1 + dt),
        );
        // Same route, later departure: arrival shifts by exactly dt.
        prop_assert_eq!(b.as_u64() - a.as_u64(), dt);
        // And arrival never precedes departure.
        prop_assert!(a.as_u64() >= t1);
    }

    #[test]
    fn fabric_accounting_is_additive(
        pairs in proptest::collection::vec((0usize..16, 0usize..16), 1..60),
    ) {
        use spcp::noc::{Fabric, Mesh, MsgKind, NocConfig};
        use spcp::sim::Cycle;
        let mut f = Fabric::new(NocConfig::default());
        let mesh = Mesh::new(4, 4);
        let mut expected_hops = 0u64;
        for &(s, d) in &pairs {
            f.send(
                spcp::sim::CoreId::new(s), spcp::sim::CoreId::new(d),
                MsgKind::Request, Cycle::ZERO,
            );
            expected_hops += mesh.hops(spcp::sim::CoreId::new(s), spcp::sim::CoreId::new(d)) as u64;
        }
        let stats = f.stats();
        prop_assert_eq!(stats.messages, pairs.len() as u64);
        prop_assert_eq!(stats.byte_hops, 8 * expected_hops);
        prop_assert_eq!(stats.ctrl_byte_hops, stats.byte_hops, "requests are control-only");
        // Energy: 5 units per byte-hop (link 1 + router 4).
        prop_assert!((stats.energy - 5.0 * stats.byte_hops as f64).abs() < 1e-6);
    }
}

// ---------------- Trace analyzer vs raw event stream ----------------

proptest! {
    #[test]
    fn trace_analyzer_counts_match_stream(
        events in proptest::collection::vec((0usize..8, 0u64..4, any::<bool>()), 0..200),
    ) {
        use spcp::trace::{TraceAnalyzer, TraceEvent};
        use spcp::sync::SyncKind;
        let stream: Vec<TraceEvent> = events
            .iter()
            .map(|&(core, val, is_sync)| {
                if is_sync {
                    TraceEvent::Sync {
                        core: spcp::sim::CoreId::new(core),
                        kind: SyncKind::Barrier,
                        static_id: val as u32 + 1,
                        instance: 0,
                    }
                } else {
                    TraceEvent::Miss {
                        core: spcp::sim::CoreId::new(core),
                        block: spcp::mem::BlockAddr::from_index(val),
                        pc: 0,
                        kind: spcp::predict::AccessKind::Read,
                        targets: spcp::sim::CoreSet::from_bits(val),
                    }
                }
            })
            .collect();
        let a = TraceAnalyzer::from_events(8, &stream);
        let misses = stream.iter().filter(|e| matches!(e, TraceEvent::Miss { .. })).count() as u64;
        let comm = stream.iter().filter(|e| e.is_communicating_miss()).count() as u64;
        let syncs = stream.len() as u64 - misses;
        prop_assert_eq!(a.total_misses(), misses);
        prop_assert_eq!(a.comm_misses(), comm);
        prop_assert_eq!(a.epochs().len() as u64, syncs);
        // Attributed volume never exceeds total communication events.
        let attributed: u64 = a.epochs().iter().map(|e| e.total_volume()).sum();
        let total_targets: u64 = stream
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Miss { targets, .. } => Some(targets.len() as u64),
                _ => None,
            })
            .sum();
        prop_assert!(attributed <= total_targets);
    }
}

// ---------------- Workload generation ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn generation_deterministic_and_balanced(seed: u64) {
        let spec = spcp::workloads::suite::x264();
        let a = spec.generate(16, seed);
        let b = spec.generate(16, seed);
        prop_assert_eq!(a.threads(), b.threads());
        // All threads observe the same barrier count.
        let barriers: Vec<usize> = a
            .threads()
            .iter()
            .map(|t| {
                t.iter()
                    .filter(|o| matches!(o, spcp::workloads::Op::Sync(p)
                        if p.kind == spcp::sync::SyncKind::Barrier))
                    .count()
            })
            .collect();
        prop_assert!(barriers.windows(2).all(|w| w[0] == w[1]));
    }
}
