//! End-to-end trace pipeline tests: collect a §3.2-style trace from the
//! simulator, round-trip it through the codec, and verify that the
//! trace-driven characterization agrees with the execution-driven
//! statistics.

use spcp::system::{CmpSystem, MachineConfig, ProtocolKind, RunConfig};
use spcp::trace::{read_trace, write_trace, TraceAnalyzer, TraceEvent};
use spcp::workloads::suite;

fn traced_run(name: &str) -> spcp::system::RunStats {
    let w = suite::by_name(name)
        .expect("known benchmark")
        .generate(16, 7);
    CmpSystem::run_workload(
        &w,
        &RunConfig::new(MachineConfig::paper_16core(), ProtocolKind::Directory)
            .tracing()
            .recording(),
    )
}

#[test]
fn trace_contains_misses_and_sync_points() {
    let s = traced_run("x264");
    let misses = s
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Miss { .. }))
        .count() as u64;
    let syncs = s
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Sync { .. }))
        .count();
    assert_eq!(misses, s.l2_misses);
    assert!(syncs > 16, "every barrier/lock/unlock must be traced");
}

#[test]
fn trace_round_trips_through_the_codec() {
    let s = traced_run("ferret");
    let mut buf = Vec::new();
    write_trace(&mut buf, &s.trace).expect("in-memory write");
    let back = read_trace(buf.as_slice()).expect("parse back");
    assert_eq!(back, s.trace);
}

#[test]
fn trace_driven_characterization_matches_execution_driven() {
    let s = traced_run("bodytrack");
    let a = TraceAnalyzer::from_events(16, &s.trace);
    assert_eq!(a.total_misses(), s.l2_misses);
    assert_eq!(a.comm_misses(), s.comm_misses);
    assert!((a.comm_ratio() - s.comm_ratio()).abs() < 1e-12);
    // Epoch volume totals agree with the recorded epoch records.
    let trace_volume: u64 = a.epochs().iter().map(|e| e.total_volume()).sum();
    let record_volume: u64 = s
        .epoch_records
        .iter()
        .flatten()
        .map(|r| r.total_volume())
        .sum();
    assert_eq!(trace_volume, record_volume);
    // Dynamic epoch counts agree.
    let record_epochs: usize = s.epoch_records.iter().map(|r| r.len()).sum();
    assert_eq!(a.epochs().len(), record_epochs);
}

#[test]
fn tracing_off_collects_nothing() {
    let w = suite::x264().generate(16, 7);
    let s = CmpSystem::run_workload(
        &w,
        &RunConfig::new(MachineConfig::paper_16core(), ProtocolKind::Directory),
    );
    assert!(s.trace.is_empty());
}
