//! Golden-snapshot regression tests: 12 benchmarks × 4 protocols at the
//! fixed figure seed, snapshotted under `tests/golden/`. Any change to
//! simulator behavior shows up as a precise line diff. The streamed
//! (spooled-to-disk) sweep path must reproduce every golden byte for byte.
//!
//! Regenerate after an intentional behavior change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_regression
//! ```
//!
//! To add a benchmark without touching existing snapshots, regenerate
//! only its own file: `UPDATE_GOLDEN=1 cargo test --test
//! golden_regression golden_<bench>`.

use std::path::PathBuf;

use spcp::harness::{golden, RunMatrix, StreamConfig, SweepEngine};
use spcp::system::{PredictorKind, ProtocolKind};
use spcp::workloads::suite;

const GOLDEN_BENCHES: [&str; 12] = [
    "fft",
    "lu",
    "x264",
    "radix",
    "ocean",
    "streamcluster",
    "bodytrack",
    "fluidanimate",
    "raytrace",
    "vips",
    "ferret",
    "dedup",
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn golden_matrix(bench: &str) -> RunMatrix {
    RunMatrix::new()
        .bench(suite::by_name(bench).expect("known benchmark"))
        .protocol("dir", ProtocolKind::Directory)
        .protocol("bc", ProtocolKind::Broadcast)
        .protocol("sp", ProtocolKind::Predicted(PredictorKind::sp_default()))
        .protocol("uni", ProtocolKind::Predicted(PredictorKind::Uni))
}

fn check_bench(bench: &str) {
    let result = SweepEngine::new(2).run(&golden_matrix(bench));
    assert_eq!(result.runs.len(), 4);
    let rendered = golden::render(&result);
    let path = golden_dir().join(format!("{bench}.golden"));
    match golden::check_or_update(&path, &rendered) {
        Ok(updated) => {
            if updated {
                println!("regenerated {}", path.display());
            }
        }
        Err(e) => panic!("{e}"),
    }
}

#[test]
fn golden_fft() {
    check_bench(GOLDEN_BENCHES[0]);
}

#[test]
fn golden_lu() {
    check_bench(GOLDEN_BENCHES[1]);
}

#[test]
fn golden_x264() {
    check_bench(GOLDEN_BENCHES[2]);
}

#[test]
fn golden_radix() {
    check_bench(GOLDEN_BENCHES[3]);
}

#[test]
fn golden_ocean() {
    check_bench(GOLDEN_BENCHES[4]);
}

#[test]
fn golden_streamcluster() {
    check_bench(GOLDEN_BENCHES[5]);
}

#[test]
fn golden_bodytrack() {
    check_bench(GOLDEN_BENCHES[6]);
}

#[test]
fn golden_fluidanimate() {
    check_bench(GOLDEN_BENCHES[7]);
}

#[test]
fn golden_raytrace() {
    check_bench(GOLDEN_BENCHES[8]);
}

#[test]
fn golden_vips() {
    check_bench(GOLDEN_BENCHES[9]);
}

#[test]
fn golden_ferret() {
    check_bench(GOLDEN_BENCHES[10]);
}

#[test]
fn golden_dedup() {
    check_bench(GOLDEN_BENCHES[11]);
}

/// The streamed (write-ahead spool) path reproduces every golden file byte
/// for byte: the same matrix run through `run_streamed` renders from its
/// on-disk records to exactly the snapshot the in-memory path produced.
#[test]
fn streamed_path_reproduces_all_goldens() {
    let dir = std::env::temp_dir().join(format!("spcp-golden-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for bench in GOLDEN_BENCHES {
        let path = golden_dir().join(format!("{bench}.golden"));
        let stored = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            // Missing files are reported by the per-bench tests (or being
            // created right now under UPDATE_GOLDEN=1); don't double-fail.
            Err(_) => continue,
        };
        let spool = dir.join(bench);
        let streamed = SweepEngine::new(2)
            .run_streamed(&golden_matrix(bench), &StreamConfig::new(&spool))
            .expect("streamed sweep");
        let rendered = streamed.render_golden().expect("replay spool");
        assert_eq!(rendered, stored, "{bench}: streamed render diverges");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The golden files themselves stay well-formed: header line, one `[run …]`
/// block per protocol, only `field = integer` payload lines.
#[test]
fn golden_files_are_well_formed() {
    for bench in GOLDEN_BENCHES {
        let path = golden_dir().join(format!("{bench}.golden"));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            // Missing files are reported by the per-bench tests (or being
            // created right now under UPDATE_GOLDEN=1); don't double-fail.
            Err(_) => continue,
        };
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(golden::GOLDEN_HEADER), "{bench}");
        let mut run_blocks = 0;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if line.starts_with("[run ") && line.ends_with(']') {
                run_blocks += 1;
                continue;
            }
            let (field, value) = line.split_once(" = ").unwrap_or_else(|| {
                panic!("{bench}: malformed line {line:?}");
            });
            assert!(!field.is_empty(), "{bench}");
            assert!(
                value.chars().all(|c| c.is_ascii_digit()),
                "{bench}: non-integer value in {line:?}"
            );
        }
        assert_eq!(run_blocks, 4, "{bench}: expected one block per protocol");
    }
}
