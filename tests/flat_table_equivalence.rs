//! Property-style equivalence tests for the flat-table hot-path
//! structures, against straightforward `HashMap`-based reference models
//! mirroring the pre-flat-table implementations.
//!
//! * `Directory` (open-addressing `FlatMap` keyed by block index) vs a
//!   `HashMap` directory model — including the `record_drop` owner
//!   fallback to the lowest-numbered remaining sharer and entry removal
//!   when the last sharer drops.
//! * `Fabric` (flat `Vec`-indexed per-link virtual-channel table) vs a
//!   `HashMap<Link, Vec<Cycle>>` reservation model — including VC
//!   exhaustion and head-of-line contention on hot links.
//!
//! All randomness is `DetRng`-seeded, so failures replay exactly.

use std::collections::HashMap;

use spcp::mem::{BlockAddr, Directory};
use spcp::noc::{Fabric, Link, Mesh, MsgKind, NocConfig};
use spcp::sim::{CoreId, CoreSet, Cycle, DetRng};

// ---------------------------------------------------------------------------
// Directory vs HashMap model
// ---------------------------------------------------------------------------

/// The pre-flat-table directory semantics, written the obvious way.
#[derive(Default)]
struct ModelDirectory {
    entries: HashMap<u64, (Option<CoreId>, CoreSet)>,
}

impl ModelDirectory {
    fn entry(&self, block: u64) -> (Option<CoreId>, CoreSet) {
        self.entries
            .get(&block)
            .copied()
            .unwrap_or((None, CoreSet::empty()))
    }

    fn record_exclusive(&mut self, block: u64, core: CoreId) {
        self.entries
            .insert(block, (Some(core), CoreSet::single(core)));
    }

    fn record_shared(&mut self, block: u64, core: CoreId) {
        let e = self.entries.entry(block).or_default();
        e.1.insert(core);
        e.0 = Some(core);
    }

    fn record_shared_no_forward(&mut self, block: u64, core: CoreId) {
        let e = self.entries.entry(block).or_default();
        e.1.insert(core);
        e.0 = None;
    }

    fn record_drop(&mut self, block: u64, core: CoreId) {
        if let Some(e) = self.entries.get_mut(&block) {
            e.1.remove(core);
            if e.0 == Some(core) {
                // Ownership falls to the lowest-numbered remaining sharer.
                e.0 = e.1.iter().next();
            }
            if e.1.is_empty() {
                self.entries.remove(&block);
            }
        }
    }
}

#[test]
fn directory_matches_hashmap_model_under_random_churn() {
    let mut rng = DetRng::seeded(0xD1_8E_C7);
    let mut dir = Directory::new(16);
    let mut model = ModelDirectory::default();
    // A small block universe forces constant insert/remove churn and
    // repeated reuse of freshly-removed keys (the backward-shift deletion
    // path of the underlying FlatMap).
    let blocks: Vec<u64> = (0..96).map(|i| i * 37 + 5).collect();

    for step in 0..40_000 {
        let block = blocks[rng.index(blocks.len())];
        let core = CoreId::new(rng.index(16));
        match rng.index(4) {
            0 => {
                dir.record_exclusive(BlockAddr::from_index(block), core);
                model.record_exclusive(block, core);
            }
            1 => {
                dir.record_shared(BlockAddr::from_index(block), core);
                model.record_shared(block, core);
            }
            2 => {
                dir.record_shared_no_forward(BlockAddr::from_index(block), core);
                model.record_shared_no_forward(block, core);
            }
            _ => {
                dir.record_drop(BlockAddr::from_index(block), core);
                model.record_drop(block, core);
            }
        }
        let got = dir.entry(BlockAddr::from_index(block));
        let (owner, sharers) = model.entry(block);
        assert_eq!(got.owner, owner, "step {step}, block {block}: owner");
        assert_eq!(got.sharers, sharers, "step {step}, block {block}: sharers");
    }

    // Full-state equivalence at the end, both directions.
    assert_eq!(dir.tracked_blocks(), model.entries.len());
    for (block, e) in dir.iter() {
        let (owner, sharers) = model.entry(block.index());
        assert_eq!(e.owner, owner);
        assert_eq!(e.sharers, sharers);
        assert!(!e.sharers.is_empty(), "tracked entries must have sharers");
    }
}

#[test]
fn directory_drop_owner_fallback_prefers_lowest_sharer() {
    // Deterministic corner: many sharers, owner dropped repeatedly.
    let mut dir = Directory::new(16);
    let b = BlockAddr::from_index(123);
    dir.record_exclusive(b, CoreId::new(9));
    for c in [3usize, 11, 6] {
        dir.record_shared(b, CoreId::new(c));
    }
    // Owner is core 6 (most recent reader). Drop it: fallback must pick
    // the lowest-numbered remaining sharer, core 3.
    dir.record_drop(b, CoreId::new(6));
    assert_eq!(dir.entry(b).owner, Some(CoreId::new(3)));
    dir.record_drop(b, CoreId::new(3));
    assert_eq!(dir.entry(b).owner, Some(CoreId::new(9)));
    dir.record_drop(b, CoreId::new(9));
    assert_eq!(dir.entry(b).owner, Some(CoreId::new(11)));
    dir.record_drop(b, CoreId::new(11));
    assert!(dir.entry(b).is_uncached());
    assert_eq!(dir.tracked_blocks(), 0);
}

// ---------------------------------------------------------------------------
// Fabric vs HashMap-reservation model
// ---------------------------------------------------------------------------

/// The pre-flat-table link-reservation semantics: per-link VC vectors in a
/// `HashMap`, earliest-free VC (first on ties), lazily initialised to
/// all-free.
struct ModelFabric {
    mesh: Mesh,
    cfg: NocConfig,
    link_free: HashMap<Link, Vec<Cycle>>,
    contention_cycles: u64,
}

impl ModelFabric {
    fn new(cfg: NocConfig) -> Self {
        ModelFabric {
            mesh: Mesh::new(cfg.width, cfg.height),
            cfg,
            link_free: HashMap::new(),
            contention_cycles: 0,
        }
    }

    fn send(&mut self, src: CoreId, dst: CoreId, kind: MsgKind, depart: Cycle) -> Cycle {
        if src == dst {
            return depart;
        }
        let vcs = self.cfg.virtual_channels.max(1);
        let flits = kind.bytes().div_ceil(self.cfg.flit_bytes).max(1);
        let mut head = depart;
        for link in self.mesh.route(src, dst) {
            head += self.cfg.router_cycles;
            let slots = self
                .link_free
                .entry(link)
                .or_insert_with(|| vec![Cycle::ZERO; vcs]);
            let slot = slots
                .iter_mut()
                .min_by_key(|c| **c)
                .expect("at least one VC");
            if *slot > head {
                self.contention_cycles += (*slot - head).as_u64();
                head = *slot;
            }
            *slot = head + flits * self.cfg.link_cycles;
            head += self.cfg.link_cycles;
        }
        head
    }
}

/// Random traffic with deliberate hot spots: most messages funnel into one
/// corner so shared links saturate and VC exhaustion decides timings.
fn fabric_traffic_equivalence(cfg: NocConfig, seed: u64, steps: usize) {
    let nodes = cfg.nodes();
    let mut real = Fabric::new(cfg.clone());
    let mut model = ModelFabric::new(cfg);
    let mut rng = DetRng::seeded(seed);
    let kinds = [
        MsgKind::Request,
        MsgKind::DataResponse,
        MsgKind::Invalidate,
        MsgKind::InvalidateAck,
    ];
    let mut now = Cycle::ZERO;
    for step in 0..steps {
        // Bursty clock: several messages share a departure cycle.
        if rng.chance(0.3) {
            now += rng.range(0, 6);
        }
        let src = CoreId::new(rng.index(nodes));
        // 60% of traffic targets node 0's corner: hot links, exhausted VCs.
        let dst = if rng.chance(0.6) {
            CoreId::new(rng.index(2))
        } else {
            CoreId::new(rng.index(nodes))
        };
        let kind = *rng.pick(&kinds);
        let got = real.send(src, dst, kind, now);
        let want = model.send(src, dst, kind, now);
        assert_eq!(got, want, "step {step}: {src}->{dst} {kind:?} at {now}");
    }
    assert_eq!(real.stats().contention_cycles, model.contention_cycles);
    assert!(
        real.stats().contention_cycles > 0,
        "traffic pattern must actually contend to be a meaningful test"
    );
}

#[test]
fn fabric_matches_hashmap_model_default_vcs() {
    fabric_traffic_equivalence(NocConfig::default(), 0xFA_B1, 8_000);
}

#[test]
fn fabric_matches_hashmap_model_single_vc() {
    // One VC per link: every overlapping message queues (exhaustion path).
    fabric_traffic_equivalence(
        NocConfig {
            virtual_channels: 1,
            ..NocConfig::default()
        },
        0xFA_B2,
        8_000,
    );
}

#[test]
fn fabric_matches_hashmap_model_rectangular_mesh() {
    // Non-square mesh: exercises the link indexing math off the 4×4 path.
    fabric_traffic_equivalence(
        NocConfig {
            width: 2,
            height: 3,
            virtual_channels: 2,
            ..NocConfig::default()
        },
        0xFA_B3,
        6_000,
    );
}
