//! Property-based whole-system fuzzing: random (but well-formed)
//! multithreaded programs are executed under every protocol with full
//! coherence-invariant validation, and cross-protocol conservation laws
//! are checked.

use proptest::prelude::*;
use spcp::mem::Addr;
use spcp::system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig, RunStats};
use spcp::sync::{LockId, StaticSyncId, SyncPoint};
use spcp::workloads::{Op, Workload};

/// One generated action inside an epoch.
#[derive(Debug, Clone)]
enum Action {
    Load(u8),
    Store(u8),
    /// Critical section on one of 4 locks with a few accesses inside.
    Critical(u8, u8),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..32).prop_map(Action::Load),
        (0u8..32).prop_map(Action::Store),
        ((0u8..4), (1u8..5)).prop_map(|(l, n)| Action::Critical(l, n)),
    ]
}

/// A program: per-epoch, per-thread action lists; all threads share the
/// same barrier skeleton.
fn program_strategy(
    threads: usize,
) -> impl Strategy<Value = Vec<Vec<Vec<Action>>>> {
    // 1..4 epochs, each with per-thread action lists of 0..12 actions.
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::vec(action_strategy(), 0..12),
            threads,
        ),
        1..4,
    )
}

/// Lowers the generated program to op streams. Addresses come from a tiny
/// shared pool so threads genuinely collide.
fn lower(program: &[Vec<Vec<Action>>], threads: usize) -> Workload {
    let mut streams: Vec<Vec<Op>> = vec![Vec::new(); threads];
    for (e, epoch) in program.iter().enumerate() {
        for (t, stream) in streams.iter_mut().enumerate() {
            stream.push(Op::Sync(SyncPoint::barrier(StaticSyncId::new(e as u32 + 1))));
            for action in &epoch[t] {
                match *action {
                    Action::Load(b) => stream.push(Op::Load {
                        addr: Addr::new(b as u64 * 64),
                        pc: 0x100 + b as u32,
                    }),
                    Action::Store(b) => stream.push(Op::Store {
                        addr: Addr::new(b as u64 * 64),
                        pc: 0x200 + b as u32,
                    }),
                    Action::Critical(l, n) => {
                        let lock = LockId::new(l as u32);
                        stream.push(Op::Sync(SyncPoint::lock(lock)));
                        for i in 0..n {
                            let addr = Addr::new(0x4000_0000 + (l as u64 * 16 + i as u64) * 64);
                            if i % 2 == 0 {
                                stream.push(Op::Load { addr, pc: 0x300 });
                            } else {
                                stream.push(Op::Store { addr, pc: 0x304 });
                            }
                        }
                        stream.push(Op::Sync(SyncPoint::unlock(lock)));
                    }
                }
            }
        }
        // Close the program with a final barrier so every epoch ends.
        if e + 1 == program.len() {
            for stream in streams.iter_mut() {
                stream.push(Op::Sync(SyncPoint::barrier(StaticSyncId::new(99))));
            }
        }
    }
    Workload::from_threads("fuzz", streams)
}

fn small_machine() -> MachineConfig {
    let mut m = MachineConfig::paper_16core();
    m.num_cores = 4;
    m.noc = spcp::noc::NocConfig {
        width: 2,
        height: 2,
        ..spcp::noc::NocConfig::default()
    };
    m
}

fn run_validated(w: &Workload, proto: ProtocolKind) -> RunStats {
    CmpSystem::run_workload_validated(w, &RunConfig::new(small_machine(), proto))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every protocol preserves coherence on arbitrary well-formed
    /// programs, and they all agree on what the workload *is*.
    #[test]
    fn protocols_preserve_coherence_on_random_programs(
        program in program_strategy(4)
    ) {
        let w = lower(&program, 4);
        let dir = run_validated(&w, ProtocolKind::Directory);
        let bc = run_validated(&w, ProtocolKind::Broadcast);
        let sp = run_validated(&w, ProtocolKind::Predicted(PredictorKind::sp_default()));
        let mc = run_validated(&w, ProtocolKind::MulticastSnoop(PredictorKind::sp_default()));

        // The op stream is protocol-independent.
        prop_assert_eq!(dir.total_ops, bc.total_ops);
        prop_assert_eq!(dir.total_ops, sp.total_ops);
        prop_assert_eq!(dir.loads + dir.stores, sp.loads + sp.stores);

        // Miss totals are timing-dependent for racy programs (a remote
        // store may invalidate between two loads under one protocol but
        // not another), so only bounds hold: every protocol misses at
        // least once per distinct cold block touched, and never more than
        // the number of memory operations.
        let distinct_blocks: std::collections::HashSet<u64> = w
            .threads()
            .iter()
            .flatten()
            .filter_map(|o| o.addr())
            .map(|a| a.block().index())
            .collect();
        for s in [&dir, &bc, &sp, &mc] {
            let total = s.comm_misses + s.noncomm_misses;
            prop_assert!(total >= distinct_blocks.len() as u64);
            prop_assert!(total <= s.loads + s.stores);
            prop_assert_eq!(total, s.l2_misses);
        }

        // Conservation: every communicating miss under prediction either
        // avoided indirection or paid it.
        prop_assert_eq!(sp.indirections + sp.pred_sufficient_comm, sp.comm_misses);
        prop_assert_eq!(mc.indirections + mc.pred_sufficient_comm, mc.comm_misses);
        // The baseline always pays.
        prop_assert_eq!(dir.indirections, dir.comm_misses);
    }

    /// Determinism: identical runs produce identical statistics.
    #[test]
    fn random_programs_run_deterministically(program in program_strategy(4)) {
        let w = lower(&program, 4);
        let a = run_validated(&w, ProtocolKind::Predicted(PredictorKind::sp_default()));
        let b = run_validated(&w, ProtocolKind::Predicted(PredictorKind::sp_default()));
        prop_assert_eq!(a.exec_cycles, b.exec_cycles);
        prop_assert_eq!(a.noc.byte_hops, b.noc.byte_hops);
        prop_assert_eq!(a.comm_matrix, b.comm_matrix);
    }

    /// Thread migration never breaks coherence or the conservation laws,
    /// with either signature-tracking mode.
    #[test]
    fn migration_preserves_coherence(
        program in program_strategy(4),
        every in 1u64..3,
        rotation in 1usize..4,
        logical: bool,
    ) {
        let w = lower(&program, 4);
        let cfg = RunConfig::new(
            small_machine(),
            ProtocolKind::Predicted(PredictorKind::sp_default()),
        )
        .with_migration(every, rotation, logical);
        let s = CmpSystem::run_workload_validated(&w, &cfg);
        prop_assert_eq!(s.indirections + s.pred_sufficient_comm, s.comm_misses);
        prop_assert_eq!(s.miss_latency.count(), s.l2_misses);
    }

    /// The region filter never suppresses a communicating miss and keeps
    /// all conservation laws intact.
    #[test]
    fn snoop_filter_preserves_invariants(program in program_strategy(4)) {
        let w = lower(&program, 4);
        let cfg = RunConfig::new(
            small_machine(),
            ProtocolKind::Predicted(PredictorKind::sp_default()),
        )
        .with_snoop_filter();
        let s = CmpSystem::run_workload_validated(&w, &cfg);
        prop_assert_eq!(s.indirections + s.pred_sufficient_comm, s.comm_misses);
    }

    /// The predicted protocol can never lose misses: latency samples cover
    /// every L2 miss, and sufficiency never exceeds attempts.
    #[test]
    fn prediction_accounting_is_consistent(program in program_strategy(4)) {
        let w = lower(&program, 4);
        let s = run_validated(&w, ProtocolKind::Predicted(PredictorKind::sp_default()));
        prop_assert_eq!(s.miss_latency.count(), s.l2_misses);
        prop_assert!(s.pred_sufficient >= s.pred_sufficient_comm);
        prop_assert!(s.predictions >= s.pred_insufficient);
        prop_assert_eq!(s.predictions, s.pred_sufficient + s.pred_insufficient);
        prop_assert!(s.comm_miss_latency.count() == s.comm_misses);
    }
}
