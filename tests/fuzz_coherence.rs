//! Randomized whole-system fuzzing: random (but well-formed) multithreaded
//! programs are executed under every protocol with full coherence-invariant
//! validation, and cross-protocol conservation laws are checked.
//!
//! The inputs are driven by the workspace's own deterministic PRNG
//! (`spcp::sim::DetRng`) instead of an external property-testing crate, so
//! the suite runs fully offline and every case is addressable by its seed:
//! a failure report names the exact case to replay. Cases previously
//! recorded in `fuzz_coherence.proptest-regressions` are replayed as
//! explicit tests at the bottom of the file.

use spcp::mem::Addr;
use spcp::sim::DetRng;
use spcp::sync::{LockId, StaticSyncId, SyncPoint};
use spcp::system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig, RunStats};
use spcp::workloads::{Op, Workload};

/// Cases per randomized test (the former proptest case count).
const CASES: u64 = 24;
/// Base seed, xored with the per-test salt and case number.
const FUZZ_SEED: u64 = 0x5bcb_f00d;

/// One generated action inside an epoch.
#[derive(Debug, Clone)]
enum Action {
    Load(u8),
    Store(u8),
    /// Critical section on one of 4 locks with a few accesses inside.
    Critical(u8, u8),
}

fn random_action(rng: &mut DetRng) -> Action {
    match rng.index(3) {
        0 => Action::Load(rng.range(0, 32) as u8),
        1 => Action::Store(rng.range(0, 32) as u8),
        _ => Action::Critical(rng.range(0, 4) as u8, rng.range(1, 5) as u8),
    }
}

/// A program: per-epoch, per-thread action lists; all threads share the
/// same barrier skeleton. 1–3 epochs of 0–11 actions per thread, mirroring
/// the former proptest strategy.
fn random_program(rng: &mut DetRng, threads: usize) -> Vec<Vec<Vec<Action>>> {
    let epochs = rng.range(1, 4) as usize;
    (0..epochs)
        .map(|_| {
            (0..threads)
                .map(|_| {
                    let n = rng.range(0, 12) as usize;
                    (0..n).map(|_| random_action(rng)).collect()
                })
                .collect()
        })
        .collect()
}

/// Per-case RNG: every (test, case) pair gets an independent stream.
fn case_rng(test_salt: u64, case: u64) -> DetRng {
    DetRng::seeded(FUZZ_SEED ^ test_salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case)
}

/// Lowers the generated program to op streams. Addresses come from a tiny
/// shared pool so threads genuinely collide.
fn lower(program: &[Vec<Vec<Action>>], threads: usize) -> Workload {
    let mut streams: Vec<Vec<Op>> = vec![Vec::new(); threads];
    for (e, epoch) in program.iter().enumerate() {
        for (t, stream) in streams.iter_mut().enumerate() {
            stream.push(Op::Sync(SyncPoint::barrier(StaticSyncId::new(
                e as u32 + 1,
            ))));
            for action in &epoch[t] {
                match *action {
                    Action::Load(b) => stream.push(Op::Load {
                        addr: Addr::new(b as u64 * 64),
                        pc: 0x100 + b as u32,
                    }),
                    Action::Store(b) => stream.push(Op::Store {
                        addr: Addr::new(b as u64 * 64),
                        pc: 0x200 + b as u32,
                    }),
                    Action::Critical(l, n) => {
                        let lock = LockId::new(l as u32);
                        stream.push(Op::Sync(SyncPoint::lock(lock)));
                        for i in 0..n {
                            let addr = Addr::new(0x4000_0000 + (l as u64 * 16 + i as u64) * 64);
                            if i % 2 == 0 {
                                stream.push(Op::Load { addr, pc: 0x300 });
                            } else {
                                stream.push(Op::Store { addr, pc: 0x304 });
                            }
                        }
                        stream.push(Op::Sync(SyncPoint::unlock(lock)));
                    }
                }
            }
        }
        // Close the program with a final barrier so every epoch ends.
        if e + 1 == program.len() {
            for stream in streams.iter_mut() {
                stream.push(Op::Sync(SyncPoint::barrier(StaticSyncId::new(99))));
            }
        }
    }
    Workload::from_threads("fuzz", streams)
}

fn small_machine() -> MachineConfig {
    let mut m = MachineConfig::paper_16core();
    m.num_cores = 4;
    m.noc = spcp::noc::NocConfig {
        width: 2,
        height: 2,
        ..spcp::noc::NocConfig::default()
    };
    m
}

fn run_validated(w: &Workload, proto: ProtocolKind) -> RunStats {
    CmpSystem::run_workload_validated(w, &RunConfig::new(small_machine(), proto))
}

/// The cross-protocol invariants checked on every program (shared by the
/// randomized sweep and the regression replays).
fn check_protocol_invariants(w: &Workload, ctx: &str) {
    let dir = run_validated(w, ProtocolKind::Directory);
    let bc = run_validated(w, ProtocolKind::Broadcast);
    let sp = run_validated(w, ProtocolKind::Predicted(PredictorKind::sp_default()));
    let mc = run_validated(w, ProtocolKind::MulticastSnoop(PredictorKind::sp_default()));

    // The op stream is protocol-independent.
    assert_eq!(dir.total_ops, bc.total_ops, "{ctx}");
    assert_eq!(dir.total_ops, sp.total_ops, "{ctx}");
    assert_eq!(dir.loads + dir.stores, sp.loads + sp.stores, "{ctx}");

    // Miss totals are timing-dependent for racy programs (a remote store
    // may invalidate between two loads under one protocol but not
    // another), so only bounds hold: every protocol misses at least once
    // per distinct cold block touched, and never more than the number of
    // memory operations.
    let distinct_blocks: std::collections::HashSet<u64> = w
        .threads()
        .iter()
        .flatten()
        .filter_map(|o| o.addr())
        .map(|a| a.block().index())
        .collect();
    for s in [&dir, &bc, &sp, &mc] {
        let total = s.comm_misses + s.noncomm_misses;
        assert!(total >= distinct_blocks.len() as u64, "{ctx}");
        assert!(total <= s.loads + s.stores, "{ctx}");
        assert_eq!(total, s.l2_misses, "{ctx}");
    }

    // Conservation: every communicating miss under prediction either
    // avoided indirection or paid it.
    assert_eq!(
        sp.indirections + sp.pred_sufficient_comm,
        sp.comm_misses,
        "{ctx}"
    );
    assert_eq!(
        mc.indirections + mc.pred_sufficient_comm,
        mc.comm_misses,
        "{ctx}"
    );
    // The baseline always pays.
    assert_eq!(dir.indirections, dir.comm_misses, "{ctx}");
}

/// Every protocol preserves coherence on arbitrary well-formed programs,
/// and they all agree on what the workload *is*.
#[test]
fn protocols_preserve_coherence_on_random_programs() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let program = random_program(&mut rng, 4);
        let w = lower(&program, 4);
        check_protocol_invariants(&w, &format!("case {case}: {program:?}"));
    }
}

/// Determinism: identical runs produce identical statistics.
#[test]
fn random_programs_run_deterministically() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let w = lower(&random_program(&mut rng, 4), 4);
        let a = run_validated(&w, ProtocolKind::Predicted(PredictorKind::sp_default()));
        let b = run_validated(&w, ProtocolKind::Predicted(PredictorKind::sp_default()));
        assert_eq!(a.exec_cycles, b.exec_cycles, "case {case}");
        assert_eq!(a.noc.byte_hops, b.noc.byte_hops, "case {case}");
        assert_eq!(a.comm_matrix, b.comm_matrix, "case {case}");
    }
}

/// Thread migration never breaks coherence or the conservation laws, with
/// either signature-tracking mode.
#[test]
fn migration_preserves_coherence() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let w = lower(&random_program(&mut rng, 4), 4);
        let every = rng.range(1, 3);
        let rotation = rng.range(1, 4) as usize;
        let logical = rng.chance(0.5);
        let cfg = RunConfig::new(
            small_machine(),
            ProtocolKind::Predicted(PredictorKind::sp_default()),
        )
        .with_migration(every, rotation, logical);
        let s = CmpSystem::run_workload_validated(&w, &cfg);
        let ctx = format!("case {case} every={every} rotation={rotation} logical={logical}");
        assert_eq!(
            s.indirections + s.pred_sufficient_comm,
            s.comm_misses,
            "{ctx}"
        );
        assert_eq!(s.miss_latency.count(), s.l2_misses, "{ctx}");
    }
}

/// The region filter never suppresses a communicating miss and keeps all
/// conservation laws intact.
#[test]
fn snoop_filter_preserves_invariants() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let w = lower(&random_program(&mut rng, 4), 4);
        let cfg = RunConfig::new(
            small_machine(),
            ProtocolKind::Predicted(PredictorKind::sp_default()),
        )
        .with_snoop_filter();
        let s = CmpSystem::run_workload_validated(&w, &cfg);
        assert_eq!(
            s.indirections + s.pred_sufficient_comm,
            s.comm_misses,
            "case {case}"
        );
    }
}

/// The predicted protocol can never lose misses: latency samples cover
/// every L2 miss, and sufficiency never exceeds attempts.
#[test]
fn prediction_accounting_is_consistent() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let w = lower(&random_program(&mut rng, 4), 4);
        let s = run_validated(&w, ProtocolKind::Predicted(PredictorKind::sp_default()));
        assert_eq!(s.miss_latency.count(), s.l2_misses, "case {case}");
        assert!(s.pred_sufficient >= s.pred_sufficient_comm, "case {case}");
        assert!(s.predictions >= s.pred_insufficient, "case {case}");
        assert_eq!(
            s.predictions,
            s.pred_sufficient + s.pred_insufficient,
            "case {case}"
        );
        assert_eq!(s.comm_miss_latency.count(), s.comm_misses, "case {case}");
    }
}

/// The runtime invariant layer (directory/cache agreement, NoC accounting,
/// epoch-volume conservation after every transaction) accepts arbitrary
/// well-formed programs under every protocol engine — at every cache
/// associativity. Each case draws L1 and L2 associativities from
/// {1, 2, 4, 8} so the SoA way layout (bitmask lanes, packed tag scans,
/// stamp eviction) is audited off the paper's default geometry too.
#[test]
fn random_programs_pass_runtime_audits() {
    if !spcp::system::invariants_compiled() {
        // Release build without `--features invariants`: the audit layer
        // is compiled out and there is nothing to exercise.
        return;
    }
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let program = random_program(&mut rng, 4);
        let w = lower(&program, 4);
        // 16 KB L1 and 1 MB L2 divide evenly at every width, so only the
        // way count (and thus set count) changes, never capacity.
        let mut machine = small_machine();
        machine.l1.assoc = *rng.pick(&[1usize, 2, 4, 8]);
        machine.l2.assoc = *rng.pick(&[1usize, 2, 4, 8]);
        for proto in [
            ProtocolKind::Directory,
            ProtocolKind::Broadcast,
            ProtocolKind::Predicted(PredictorKind::sp_default()),
            ProtocolKind::MulticastSnoop(PredictorKind::sp_default()),
        ] {
            let cfg = RunConfig::new(machine.clone(), proto);
            if let Err(v) = CmpSystem::run_workload_checked(&w, &cfg) {
                panic!(
                    "case {case} (l1 assoc {}, l2 assoc {}): {v}\nprogram: {program:?}",
                    machine.l1.assoc, machine.l2.assoc
                );
            }
        }
    }
}

/// Audited runs produce the same statistics as unaudited runs: the
/// invariant layer observes, never perturbs.
#[test]
fn runtime_audits_do_not_perturb_results() {
    if !spcp::system::invariants_compiled() {
        return;
    }
    for case in 0..4 {
        let mut rng = case_rng(7, case);
        let w = lower(&random_program(&mut rng, 4), 4);
        let cfg = RunConfig::new(
            small_machine(),
            ProtocolKind::Predicted(PredictorKind::sp_default()),
        );
        let plain = CmpSystem::run_workload(&w, &cfg);
        let checked = CmpSystem::run_workload_checked(&w, &cfg).expect("clean program");
        assert_eq!(plain.exec_cycles, checked.exec_cycles, "case {case}");
        assert_eq!(plain.noc.byte_hops, checked.noc.byte_hops, "case {case}");
        assert_eq!(plain.comm_matrix, checked.comm_matrix, "case {case}");
    }
}

// ---------------- Recorded regressions ----------------
//
// Explicit replays of the cases proptest once minimized into
// `fuzz_coherence.proptest-regressions`. Kept as plain tests so the
// counterexamples stay pinned forever, independent of any fuzzing
// framework.

/// Regression: one epoch where only threads 1 and 2 touch memory — thread 1
/// re-loads block 2 after thread 2 stores to it. Minimized by proptest from
/// a cross-protocol miss-accounting failure.
#[test]
fn regression_reload_after_remote_store() {
    let program: Vec<Vec<Vec<Action>>> = vec![vec![
        vec![],
        vec![
            Action::Load(2),
            Action::Load(3),
            Action::Load(4),
            Action::Load(0),
            Action::Load(2),
        ],
        vec![Action::Store(2)],
        vec![],
    ]];
    let w = lower(&program, 4);
    check_protocol_invariants(&w, "regression_reload_after_remote_store");
}
