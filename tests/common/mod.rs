//! Shared reference models for the differential suites.
//!
//! `RefCache` is a verbatim port of the pre-SoA `SetAssocCache`
//! (array-of-structures: interleaved `(tag, payload, stamp)` records per
//! set, push-order fill, `swap_remove` on invalidate, min-stamp
//! eviction). `tests/soa_equivalence.rs` runs it in lockstep against the
//! real cache; `tests/properties.rs` checks the LRU invariants against
//! both implementations independently.

// Each integration test binary compiles its own copy of this module and
// uses a subset of it.
#![allow(dead_code)]

use spcp::mem::{BlockAddr, CacheConfig};

struct Way<T> {
    tag: BlockAddr,
    payload: T,
    stamp: u64,
}

/// The pre-SoA cache semantics, ported verbatim.
pub struct RefCache<T> {
    cfg: CacheConfig,
    sets: Vec<Vec<Way<T>>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl<T> RefCache<T> {
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        RefCache {
            cfg,
            sets: (0..num_sets).map(|_| Vec::new()).collect(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn set_index(&self, block: BlockAddr) -> usize {
        (block.index() % self.sets.len() as u64) as usize
    }

    pub fn lookup(&mut self, block: BlockAddr) -> Option<&mut T> {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(block);
        match self.sets[idx].iter_mut().find(|w| w.tag == block) {
            Some(w) => {
                self.hits += 1;
                w.stamp = clock;
                Some(&mut w.payload)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub fn probe(&self, block: BlockAddr) -> Option<&T> {
        let idx = self.set_index(block);
        self.sets[idx]
            .iter()
            .find(|w| w.tag == block)
            .map(|w| &w.payload)
    }

    pub fn insert(&mut self, block: BlockAddr, payload: T) -> Option<(BlockAddr, T)> {
        self.clock += 1;
        let clock = self.clock;
        let assoc = self.cfg.assoc;
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];

        if let Some(w) = set.iter_mut().find(|w| w.tag == block) {
            w.stamp = clock;
            let old = std::mem::replace(&mut w.payload, payload);
            return Some((block, old));
        }
        if set.len() < assoc {
            set.push(Way {
                tag: block,
                payload,
                stamp: clock,
            });
            return None;
        }
        let (victim_idx, _) = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.stamp)
            .expect("non-empty set");
        let victim = std::mem::replace(
            &mut set[victim_idx],
            Way {
                tag: block,
                payload,
                stamp: clock,
            },
        );
        Some((victim.tag, victim.payload))
    }

    pub fn invalidate(&mut self, block: BlockAddr) -> Option<T> {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|w| w.tag == block)?;
        Some(set.swap_remove(pos).payload)
    }

    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Resident `(block index, lru stamp)` pairs of one set, in storage
    /// order — the reference counterpart of `SetAssocCache::set_ways`.
    pub fn set_ways(&self, set: usize) -> Vec<(u64, u64)> {
        self.sets[set]
            .iter()
            .map(|w| (w.tag.index(), w.stamp))
            .collect()
    }

    /// All resident `(block index, lru stamp)` pairs, sorted.
    pub fn resident(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .sets
            .iter()
            .flat_map(|s| s.iter().map(|w| (w.tag.index(), w.stamp)))
            .collect();
        v.sort_unstable();
        v
    }
}
