//! Parallel-determinism guarantees of the sweep engine: a ≥24-run matrix
//! produces bit-identical per-run stats and merged summaries at `--jobs 1`,
//! `--jobs 4` and `--jobs 8`, and summary merging is independent of worker
//! scheduling order. The same guarantees are pinned for the streamed
//! (spooled-to-disk) path: streaming at any job count reproduces the
//! in-memory sweep bit for bit, and the shard merge order never changes
//! the report.

use std::path::PathBuf;

use spcp::harness::spool::{self, SpoolMerge};
use spcp::harness::{golden, RunMatrix, StreamConfig, SweepEngine, SweepResult, SweepSummary};
use spcp::sim::DetRng;
use spcp::system::{PredictorKind, ProtocolKind};
use spcp::workloads::suite;

/// 3 benchmarks × 4 protocols × 2 seeds = 24 runs.
fn matrix_24() -> RunMatrix {
    RunMatrix::new()
        .bench(suite::by_name("fft").unwrap())
        .bench(suite::by_name("radix").unwrap())
        .bench(suite::by_name("lu").unwrap())
        .protocol("dir", ProtocolKind::Directory)
        .protocol("bc", ProtocolKind::Broadcast)
        .protocol("sp", ProtocolKind::Predicted(PredictorKind::sp_default()))
        .protocol("uni", ProtocolKind::Predicted(PredictorKind::Uni))
        .seeds(&[7, 11])
}

fn assert_bit_identical(a: &SweepResult, b: &SweepResult) {
    assert_eq!(a.runs.len(), b.runs.len());
    for (x, y) in a.runs.iter().zip(&b.runs) {
        let id = x.spec.id();
        assert_eq!(x.spec.id(), y.spec.id());
        assert_eq!(
            x.stats.exec_cycles, y.stats.exec_cycles,
            "{id}: exec_cycles"
        );
        assert_eq!(
            x.stats.noc.byte_hops, y.stats.noc.byte_hops,
            "{id}: byte_hops"
        );
        assert_eq!(
            x.stats.noc.ctrl_byte_hops, y.stats.noc.ctrl_byte_hops,
            "{id}"
        );
        assert_eq!(
            x.stats.predictions, y.stats.predictions,
            "{id}: predictions"
        );
        assert_eq!(x.stats.pred_sufficient, y.stats.pred_sufficient, "{id}");
        assert_eq!(x.stats.pred_insufficient, y.stats.pred_insufficient, "{id}");
        assert_eq!(x.stats.indirections, y.stats.indirections, "{id}");
        assert_eq!(x.stats.total_ops, y.stats.total_ops, "{id}: total_ops");
        assert_eq!(x.stats.l2_misses, y.stats.l2_misses, "{id}: l2_misses");
        assert_eq!(
            x.stats.comm_misses, y.stats.comm_misses,
            "{id}: comm_misses"
        );
    }
    assert_eq!(a.summary(), b.summary());
}

#[test]
fn jobs_1_4_8_are_bit_identical() {
    let matrix = matrix_24();
    assert_eq!(matrix.len(), 24);
    let serial = SweepEngine::new(1).run(&matrix);
    let four = SweepEngine::new(4).run(&matrix);
    let eight = SweepEngine::new(8).run(&matrix);
    assert_eq!(serial.jobs, 1);
    assert_bit_identical(&serial, &four);
    assert_bit_identical(&serial, &eight);

    // The harness's own timing metrics must report a ≥3x speedup on a
    // 4+-core machine. On smaller machines (e.g. a 1-core CI container)
    // parallelism cannot help, so only check the metrics are present.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "serial: {}\n jobs8: {}  ({cores} cores available)",
        serial.timing_line(),
        eight.timing_line()
    );
    if cores >= 4 {
        assert!(
            eight.speedup() >= 3.0,
            "expected >=3x speedup on a {cores}-core machine, got {:.2}x",
            eight.speedup()
        );
    }
    assert!(eight.speedup() > 0.0);
    assert!(eight.throughput_ops_per_sec() > 0.0);
}

/// A scratch spool directory, wiped before (and after) use so reruns and
/// crashed prior runs never leak shards into the test.
struct Spool(PathBuf);

impl Spool {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("spcp-det-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Spool(dir)
    }
}

impl Drop for Spool {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn streamed_jobs_1_4_8_bit_identical_to_in_memory() {
    let matrix = matrix_24();
    let reference = SweepEngine::new(1).run(&matrix);
    let reference_render = golden::render(&reference);

    for jobs in [1usize, 4, 8] {
        let spool = Spool::new(&format!("jobs{jobs}"));
        let streamed = SweepEngine::new(jobs)
            .run_streamed(&matrix, &StreamConfig::new(&spool.0))
            .expect("streamed sweep");
        assert_eq!(streamed.executed, 24, "jobs={jobs}");
        assert_eq!(streamed.resumed, 0, "jobs={jobs}");

        // The golden rendering — every counter of every run — is byte-for-
        // byte the in-memory engine's, no matter the worker count.
        let render = streamed.render_golden().expect("replay spool");
        assert_eq!(render, reference_render, "jobs={jobs}");
        assert_eq!(
            streamed.summary().expect("replay spool"),
            reference.summary(),
            "jobs={jobs}"
        );

        // Rehydrating the spool into a SweepResult matches too (canonical
        // run order, identical stats).
        let rehydrated = streamed.into_sweep_result().expect("replay spool");
        assert_bit_identical(&reference, &rehydrated);
    }
}

#[test]
fn shard_merge_order_never_changes_report() {
    let matrix = matrix_24();
    let spool = Spool::new("mergeorder");
    let streamed = SweepEngine::new(4)
        .run_streamed(&matrix, &StreamConfig::new(&spool.0))
        .expect("streamed sweep");
    let reference = streamed.summary().expect("replay spool");
    let fingerprint = streamed.fingerprint();

    let shards = spool::shard_files(&spool.0).expect("list shards");
    assert!(!shards.is_empty());

    let mut rng = DetRng::seeded(0x5eed);
    for trial in 0..10 {
        let mut order = shards.clone();
        rng.shuffle(&mut order);
        let mut merge = SpoolMerge::open(&order, fingerprint).expect("open shards");
        let mut summary = SweepSummary::new();
        let mut last_index = None;
        while let Some(rec) = merge.next().expect("merge") {
            // Records always drain in canonical matrix order, regardless
            // of the order the shard files were listed in.
            assert!(last_index < Some(rec.index), "trial {trial}");
            last_index = Some(rec.index);
            summary.observe(&rec.stats);
        }
        assert_eq!(summary, reference, "trial {trial}");
    }
}

#[test]
fn summary_merge_is_independent_of_worker_order() {
    // Partition the matrix results as if different workers had finished in
    // arbitrary orders, and check every merge order gives the same summary.
    let result = SweepEngine::new(2).run(&matrix_24());
    let reference = result.summary();

    let mut rng = DetRng::seeded(42);
    for trial in 0..10 {
        // Random partition into up to 8 "worker" summaries.
        let mut parts: Vec<SweepSummary> = (0..8).map(|_| SweepSummary::new()).collect();
        for run in &result.runs {
            parts[rng.index(8)].observe(&run.stats);
        }
        // Merge in a random order.
        rng.shuffle(&mut parts);
        let mut merged = SweepSummary::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, reference, "trial {trial}");
    }
}

#[test]
fn summary_reflects_run_count_and_ops() {
    let result = SweepEngine::new(2).run(&matrix_24());
    let summary = result.summary();
    assert_eq!(summary.runs, 24);
    let ops: u64 = result.runs.iter().map(|r| r.stats.total_ops).sum();
    assert_eq!(summary.total_ops, ops);
    assert!(summary.accuracy() > 0.0, "sp/uni runs must predict");
    assert!(summary.noc_byte_hops > 0);
    assert_eq!(
        summary.miss_latency.count(),
        summary.miss_latency_hist.total(),
        "every miss latency sample is histogrammed"
    );
}
