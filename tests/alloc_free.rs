//! Pins the access pipeline's zero-steady-state-allocation property.
//!
//! A counting global allocator measures heap allocations inside
//! `CmpSystem::run_workload` for two runs of the same benchmark that
//! differ only in dynamic length (phase iterations ×1 vs ×4). Setup
//! allocations — caches, the directory's flat table growing to its
//! high-water capacity, stats buffers — are identical for both, so the
//! *difference* in allocation counts is what the extra simulated accesses
//! cost. The flat-table hot path (FlatMap directory, flat link table,
//! RouteIter, ArrivalScratch, CommMatrix) makes that cost ~zero.
//!
//! This file holds exactly one test so no sibling test thread allocates
//! inside the counting window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use spcp_system::{CmpSystem, MachineConfig, ProtocolKind, RunConfig, RunStats};
use spcp_workloads::{suite, BenchmarkSpec};

/// Forwards to the system allocator, counting allocations while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `workload` with counting armed only around the simulation itself.
fn counted_run(workload: &spcp_workloads::Workload, cfg: &RunConfig) -> (RunStats, u64) {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let stats = CmpSystem::run_workload(workload, cfg);
    ARMED.store(false, Ordering::SeqCst);
    (stats, ALLOCS.load(Ordering::SeqCst))
}

/// The benchmark with every phase's iteration count multiplied by `k`:
/// identical static structure and working set, `k`× the dynamic accesses.
fn scaled(mut spec: BenchmarkSpec, k: u32) -> BenchmarkSpec {
    for p in &mut spec.phases {
        p.iterations *= k;
    }
    spec
}

#[test]
fn steady_state_access_pipeline_does_not_allocate() {
    let base = suite::by_name("ocean").expect("known benchmark");
    let cores = 16;
    let w1 = scaled(base.clone(), 1).generate(cores, 7);
    let w4 = scaled(base, 4).generate(cores, 7);
    let cfg = RunConfig::new(MachineConfig::paper_16core(), ProtocolKind::Directory);

    let (s1, a1) = counted_run(&w1, &cfg);
    let (s4, a4) = counted_run(&w4, &cfg);

    assert!(
        s4.total_ops > 2 * s1.total_ops,
        "scaled workload must actually be longer ({} vs {} ops)",
        s4.total_ops,
        s1.total_ops
    );
    let extra_ops = s4.total_ops - s1.total_ops;
    let extra_allocs = a4.saturating_sub(a1);
    eprintln!(
        "run x1: {} ops, {} allocs | run x4: {} ops, {} allocs | \
         {} extra allocs over {} extra ops ({:.6} allocs/access)",
        s1.total_ops,
        a1,
        s4.total_ops,
        a4,
        extra_allocs,
        extra_ops,
        extra_allocs as f64 / extra_ops as f64,
    );
    // "Zero steady-state allocations per access": tripling the access
    // count three times over must cost (almost) nothing. The bound of one
    // allocation per 1000 extra accesses leaves room only for rare
    // high-water-mark growth, not any per-access allocation.
    assert!(
        extra_allocs < extra_ops / 1000,
        "steady-state pipeline allocates: {extra_allocs} extra allocations \
         for {extra_ops} extra accesses"
    );
}
