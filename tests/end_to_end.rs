//! Cross-crate integration tests: whole-system runs spanning workloads,
//! protocols and predictors, asserting the paper's qualitative shapes.

use spcp::system::{
    CmpSystem, MachineConfig, OracleBook, PredictorKind, ProtocolKind, RunConfig, RunStats,
};
use spcp::workloads::suite;

fn machine() -> MachineConfig {
    MachineConfig::paper_16core()
}

fn run(name: &str, proto: ProtocolKind) -> RunStats {
    let w = suite::by_name(name)
        .expect("known benchmark")
        .generate(16, 7);
    CmpSystem::run_workload(&w, &RunConfig::new(machine(), proto))
}

#[test]
fn validated_runs_for_every_protocol_and_a_mix_of_benchmarks() {
    for name in ["x264", "radix", "water-ns"] {
        let w = suite::by_name(name).unwrap().generate(16, 7);
        for proto in [
            ProtocolKind::Directory,
            ProtocolKind::Broadcast,
            ProtocolKind::Predicted(PredictorKind::sp_default()),
            ProtocolKind::Predicted(PredictorKind::Uni),
        ] {
            let s = CmpSystem::run_workload_validated(&w, &RunConfig::new(machine(), proto));
            assert!(s.exec_cycles > 0, "{name}");
            assert!(s.l2_misses > 0, "{name}");
        }
    }
}

#[test]
fn whole_pipeline_is_deterministic_per_seed() {
    let a = run(
        "ferret",
        ProtocolKind::Predicted(PredictorKind::sp_default()),
    );
    let b = run(
        "ferret",
        ProtocolKind::Predicted(PredictorKind::sp_default()),
    );
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert_eq!(a.noc.byte_hops, b.noc.byte_hops);
    assert_eq!(a.pred_sufficient_comm, b.pred_sufficient_comm);
    assert_eq!(a.comm_matrix, b.comm_matrix);
}

#[test]
fn different_seeds_change_timing_but_not_structure() {
    let spec = suite::by_name("ferret").unwrap();
    let a = CmpSystem::run_workload(
        &spec.generate(16, 1),
        &RunConfig::new(machine(), ProtocolKind::Directory),
    );
    let b = CmpSystem::run_workload(
        &spec.generate(16, 2),
        &RunConfig::new(machine(), ProtocolKind::Directory),
    );
    // Structure (ops, epochs) identical; random choices differ.
    assert_eq!(a.total_ops, b.total_ops);
    assert_ne!(a.comm_matrix, b.comm_matrix);
}

#[test]
fn sp_lands_between_directory_and_broadcast_on_comm_latency() {
    for name in ["x264", "facesim"] {
        let dir = run(name, ProtocolKind::Directory);
        let bc = run(name, ProtocolKind::Broadcast);
        let sp = run(name, ProtocolKind::Predicted(PredictorKind::sp_default()));
        let (d, b, s) = (
            dir.comm_miss_latency.mean(),
            bc.comm_miss_latency.mean(),
            sp.comm_miss_latency.mean(),
        );
        assert!(b < d, "{name}: broadcast {b} !< directory {d}");
        assert!(s < d, "{name}: SP {s} !< directory {d}");
        assert!(s > b * 0.9, "{name}: SP cannot beat broadcast by much");
        assert!(
            sp.bandwidth() > dir.bandwidth() && sp.bandwidth() < bc.bandwidth(),
            "{name}: bandwidth ordering"
        );
    }
}

#[test]
fn every_communicating_miss_either_indirects_or_was_predicted() {
    for name in ["x264", "fluidanimate", "dedup"] {
        let sp = run(name, ProtocolKind::Predicted(PredictorKind::sp_default()));
        assert_eq!(
            sp.indirections + sp.pred_sufficient_comm,
            sp.comm_misses,
            "{name}"
        );
    }
}

#[test]
fn protocols_agree_on_workload_classification() {
    // The communicating/non-communicating split is a property of the
    // workload + caches, not of the protocol.
    let dir = run("vips", ProtocolKind::Directory);
    let bc = run("vips", ProtocolKind::Broadcast);
    let sp = run("vips", ProtocolKind::Predicted(PredictorKind::sp_default()));
    assert_eq!(dir.comm_misses, bc.comm_misses);
    assert_eq!(dir.comm_misses, sp.comm_misses);
    assert_eq!(dir.noncomm_misses, sp.noncomm_misses);
}

#[test]
fn oracle_bounds_sp_accuracy_from_above() {
    for name in ["bodytrack", "streamcluster"] {
        let w = suite::by_name(name).unwrap().generate(16, 7);
        let rec = CmpSystem::run_workload(
            &w,
            &RunConfig::new(machine(), ProtocolKind::Directory).recording(),
        );
        let book = OracleBook::from_records(&rec.epoch_records, 0.10);
        let oracle = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine(),
                ProtocolKind::Predicted(PredictorKind::Oracle(book)),
            ),
        );
        let sp = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            ),
        );
        assert!(
            oracle.accuracy() >= sp.accuracy() - 0.05,
            "{name}: oracle {} vs SP {}",
            oracle.accuracy(),
            sp.accuracy()
        );
    }
}

#[test]
fn sp_storage_is_orders_of_magnitude_below_addr() {
    let sp = run("fmm", ProtocolKind::Predicted(PredictorKind::sp_default()));
    let addr = run(
        "fmm",
        ProtocolKind::Predicted(PredictorKind::Addr {
            entries: None,
            macroblock_bytes: 256,
        }),
    );
    assert!(
        sp.predictor_storage_bits * 3 < addr.predictor_storage_bits,
        "SP {} bits !<< ADDR {} bits",
        sp.predictor_storage_bits,
        addr.predictor_storage_bits
    );
}

#[test]
fn high_and_low_sharing_benchmarks_are_ordered() {
    let radix = run("radix", ProtocolKind::Directory);
    let stream = run("streamcluster", ProtocolKind::Directory);
    assert!(radix.comm_ratio() < 0.4, "radix = {}", radix.comm_ratio());
    assert!(
        stream.comm_ratio() > 0.7,
        "streamcluster = {}",
        stream.comm_ratio()
    );
}

#[test]
fn recording_runs_reconcile_with_aggregate_stats() {
    let w = suite::by_name("water-sp").unwrap().generate(16, 7);
    let s = CmpSystem::run_workload(
        &w,
        &RunConfig::new(machine(), ProtocolKind::Directory).recording(),
    );
    let rec_total: u64 = s
        .epoch_records
        .iter()
        .flatten()
        .map(|r| r.total_volume())
        .sum();
    assert_eq!(rec_total, s.comm_matrix.total());
    let targets_total: usize = s
        .epoch_records
        .iter()
        .flatten()
        .map(|r| r.miss_targets.len())
        .sum();
    assert_eq!(targets_total as u64, s.comm_misses);
}

#[test]
fn smaller_machine_configs_also_run() {
    use spcp::noc::NocConfig;
    let mut m = machine();
    m.num_cores = 4;
    m.noc = NocConfig {
        width: 2,
        height: 2,
        ..NocConfig::default()
    };
    let w = suite::x264().generate(4, 7);
    let s = CmpSystem::run_workload_validated(
        &w,
        &RunConfig::new(m, ProtocolKind::Predicted(PredictorKind::sp_default())),
    );
    assert!(s.comm_misses > 0);
    assert!(s.accuracy() > 0.2);
}
