//! Differential (lockstep) harness pinning the structure-of-arrays
//! `SetAssocCache` and the batched `Fabric` reservation path against
//! reference models of the pre-migration implementations:
//!
//! * `RefCache` (`tests/common/mod.rs`) — a verbatim port of the old
//!   array-of-structures cache (`Vec<Vec<Way>>` per set, push-order fill,
//!   `swap_remove` on invalidate, min-stamp eviction). Every demand access, probe, insert
//!   and invalidate is issued to both caches and the outcomes compared
//!   bit for bit: hit/miss, returned payload, victim `(block, payload)`,
//!   occupancy and the hit/miss counters.
//! * `RefFabric` — the naive one-hop-at-a-time reservation model
//!   (`HashMap<Link, Vec<Cycle>>`, slot bases re-derived per hop). Every
//!   send is issued to both fabrics and the arrival cycle and accumulated
//!   contention compared exactly.
//!
//! Each of the four protocols of the comparison study drives its own
//! ≥ 1000 randomized sequences, with the op mix and traffic pattern
//! shaped to the protocol's behaviour (directory: home-node funnel;
//! broadcast: invalidation fan-out; SP-prediction: hot-set locality;
//! unicast prediction: pairwise streams), so the lockstep covers the
//! access/route distributions each engine actually generates. All
//! randomness is `DetRng`-seeded: a failure names the protocol and case
//! to replay. Same pattern as `tests/flat_table_equivalence.rs`, which
//! pinned the FlatMap migration.

use std::collections::HashMap;

use spcp::mem::{BlockAddr, CacheConfig, SetAssocCache, BLOCK_BYTES};
use spcp::noc::{Fabric, Link, Mesh, MsgKind, NocConfig};
use spcp::sim::{CoreId, Cycle, DetRng};
use spcp::system::{PredictorKind, ProtocolKind};

mod common;
use common::RefCache;

/// Randomized sequences per protocol (acceptance floor: 1000).
const SEQUENCES: u64 = 1024;
const SEED: u64 = 0x5_0AE9;

fn case_rng(salt: u64, case: u64) -> DetRng {
    DetRng::seeded(SEED ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case)
}

// ---------------------------------------------------------------------------
// Reference models
// ---------------------------------------------------------------------------

/// The pre-batching reservation semantics: per-link VC vectors in a
/// `HashMap`, slot bases re-derived hop by hop, earliest-free VC (first on
/// ties), lazily initialised to all-free.
struct RefFabric {
    mesh: Mesh,
    cfg: NocConfig,
    link_free: HashMap<Link, Vec<Cycle>>,
    contention_cycles: u64,
}

impl RefFabric {
    fn new(cfg: NocConfig) -> Self {
        RefFabric {
            mesh: Mesh::new(cfg.width, cfg.height),
            cfg,
            link_free: HashMap::new(),
            contention_cycles: 0,
        }
    }

    fn send(&mut self, src: CoreId, dst: CoreId, kind: MsgKind, depart: Cycle) -> Cycle {
        if src == dst {
            return depart;
        }
        let vcs = self.cfg.virtual_channels.max(1);
        let flits = kind.bytes().div_ceil(self.cfg.flit_bytes).max(1);
        let mut head = depart;
        for link in self.mesh.route(src, dst) {
            head += self.cfg.router_cycles;
            let slots = self
                .link_free
                .entry(link)
                .or_insert_with(|| vec![Cycle::ZERO; vcs]);
            let slot = slots
                .iter_mut()
                .min_by_key(|c| **c)
                .expect("at least one VC");
            if *slot > head {
                self.contention_cycles += (*slot - head).as_u64();
                head = *slot;
            }
            *slot = head + flits * self.cfg.link_cycles;
            head += self.cfg.link_cycles;
        }
        head
    }
}

// ---------------------------------------------------------------------------
// Protocol-shaped traffic
// ---------------------------------------------------------------------------

/// Access/traffic distribution for one protocol engine.
struct Mix {
    /// Relative weights of lookup / insert / probe / invalidate.
    ops: [u64; 4],
    /// Chance an access targets the sequence's hot working set.
    hot: f64,
    /// Messages injected per traffic event.
    fanout: usize,
    /// Chance a message funnels into the "home corner" of the mesh.
    funnel: f64,
}

/// What each engine predominantly does to caches and links: the directory
/// funnels requests through home nodes; broadcast invalidates widely;
/// SP-prediction rides hot sharer sets; unicast prediction streams between
/// stable pairs.
fn mix_for(proto: &ProtocolKind) -> Mix {
    match proto {
        ProtocolKind::Directory => Mix {
            ops: [4, 3, 2, 1],
            hot: 0.4,
            fanout: 1,
            funnel: 0.7,
        },
        ProtocolKind::Broadcast => Mix {
            ops: [3, 2, 2, 3],
            hot: 0.3,
            fanout: 3,
            funnel: 0.2,
        },
        ProtocolKind::Predicted(PredictorKind::Uni) => Mix {
            ops: [3, 5, 1, 1],
            hot: 0.2,
            fanout: 1,
            funnel: 0.1,
        },
        // SP default and the rest of the predicted family: locality-heavy.
        _ => Mix {
            ops: [6, 2, 1, 1],
            hot: 0.7,
            fanout: 2,
            funnel: 0.4,
        },
    }
}

fn weighted(rng: &mut DetRng, weights: &[u64; 4]) -> usize {
    let total: u64 = weights.iter().sum();
    let mut roll = rng.range(0, total);
    for (i, &w) in weights.iter().enumerate() {
        if roll < w {
            return i;
        }
        roll -= w;
    }
    unreachable!()
}

/// One lockstep sequence: fresh random cache geometry and mesh, a few
/// hundred interleaved cache ops and sends, outcomes compared op by op and
/// state compared at the end. Returns (evictions, contention) observed so
/// callers can assert the traffic was meaningful in aggregate.
fn lockstep_sequence(rng: &mut DetRng, mix: &Mix, ctx: &str) -> (u64, u64) {
    // Cache geometry: the paper's associativities plus non-power-of-two
    // set counts to exercise the modulo (non-mask) set-index path.
    let assoc = *rng.pick(&[1usize, 2, 4, 8]);
    let sets = *rng.pick(&[2usize, 3, 4, 5, 8, 16]);
    let cfg = CacheConfig {
        size_bytes: (assoc * sets) as u64 * BLOCK_BYTES,
        assoc,
        block_bytes: BLOCK_BYTES,
        tag_cycles: 1,
        data_cycles: 1,
    };
    let mut soa: SetAssocCache<u64> = SetAssocCache::new(cfg);
    let mut aos: RefCache<u64> = RefCache::new(cfg);

    // Mesh geometry: square and rectangular, down to a single node.
    let ncfg = NocConfig {
        width: rng.range(1, 5) as usize,
        height: rng.range(1, 5) as usize,
        virtual_channels: *rng.pick(&[1usize, 2, 4]),
        ..NocConfig::default()
    };
    let nodes = ncfg.nodes();
    let mut fab = Fabric::new(ncfg.clone());
    let mut rfab = RefFabric::new(ncfg);
    let kinds = [
        MsgKind::Request,
        MsgKind::DataResponse,
        MsgKind::Invalidate,
        MsgKind::InvalidateAck,
    ];

    // Block universe 4× capacity; a small hot set supplies locality.
    let universe = (assoc * sets) as u64 * 4;
    let hot: Vec<u64> = (0..4).map(|_| rng.range(0, universe)).collect();
    let mut evictions = 0u64;
    let mut now = Cycle::ZERO;
    let ops = rng.range(60, 200);
    for step in 0..ops {
        let raw = if rng.chance(mix.hot) {
            *rng.pick(&hot)
        } else {
            rng.range(0, universe)
        };
        let b = BlockAddr::from_index(raw);
        match weighted(rng, &mix.ops) {
            0 => {
                let got = soa.lookup(b).map(|p| *p);
                let want = aos.lookup(b).map(|p| *p);
                assert_eq!(got, want, "{ctx} step {step}: lookup {raw}");
            }
            1 => {
                let payload = rng.range(0, 1 << 30);
                let got = soa.insert(b, payload);
                let want = aos.insert(b, payload);
                assert_eq!(got, want, "{ctx} step {step}: insert {raw}");
                if got.is_some_and(|(victim, _)| victim != b) {
                    evictions += 1;
                }
            }
            2 => {
                let got = soa.probe(b).copied();
                let want = aos.probe(b).copied();
                assert_eq!(got, want, "{ctx} step {step}: probe {raw}");
            }
            _ => {
                let got = soa.invalidate(b);
                let want = aos.invalidate(b);
                assert_eq!(got, want, "{ctx} step {step}: invalidate {raw}");
            }
        }
        assert_eq!(soa.len(), aos.len(), "{ctx} step {step}: occupancy");

        // Interleaved route traffic, bursty in time.
        if rng.chance(0.6) {
            if rng.chance(0.4) {
                now += rng.range(0, 5);
            }
            let src = CoreId::new(rng.index(nodes));
            for _ in 0..mix.fanout {
                let dst = if rng.chance(mix.funnel) {
                    CoreId::new(rng.index(2.min(nodes)))
                } else {
                    CoreId::new(rng.index(nodes))
                };
                let kind = *rng.pick(&kinds);
                let got = fab.send(src, dst, kind, now);
                let want = rfab.send(src, dst, kind, now);
                assert_eq!(got, want, "{ctx} step {step}: {src}->{dst} {kind:?}");
            }
        }
    }

    // End-of-sequence state equivalence, both directions.
    assert_eq!(soa.hits(), aos.hits(), "{ctx}: hit counter");
    assert_eq!(soa.misses(), aos.misses(), "{ctx}: miss counter");
    let mut got: Vec<(u64, u64)> = (0..soa.num_sets())
        .flat_map(|s| soa.set_ways(s).collect::<Vec<_>>())
        .map(|(b, stamp)| (b.index(), stamp))
        .collect();
    got.sort_unstable();
    assert_eq!(got, aos.resident(), "{ctx}: resident (block, stamp) pairs");
    soa.audit()
        .unwrap_or_else(|e| panic!("{ctx}: cache audit: {e}"));
    assert_eq!(
        fab.stats().contention_cycles,
        rfab.contention_cycles,
        "{ctx}: contention"
    );
    fab.audit()
        .unwrap_or_else(|e| panic!("{ctx}: fabric audit: {e}"));
    (evictions, fab.stats().contention_cycles)
}

fn lockstep_protocol(proto: ProtocolKind, salt: u64) {
    let mix = mix_for(&proto);
    let (mut evictions, mut contention) = (0u64, 0u64);
    for case in 0..SEQUENCES {
        let mut rng = case_rng(salt, case);
        let ctx = format!("{proto:?} case {case}");
        let (e, c) = lockstep_sequence(&mut rng, &mix, &ctx);
        evictions += e;
        contention += c;
    }
    // The traffic must genuinely evict and contend, or the lockstep is
    // only checking the easy paths.
    assert!(evictions > 0, "{proto:?}: no sequence ever evicted");
    assert!(contention > 0, "{proto:?}: no sequence ever contended");
}

#[test]
fn lockstep_directory_traffic() {
    lockstep_protocol(ProtocolKind::Directory, 1);
}

#[test]
fn lockstep_broadcast_traffic() {
    lockstep_protocol(ProtocolKind::Broadcast, 2);
}

#[test]
fn lockstep_sp_predicted_traffic() {
    lockstep_protocol(ProtocolKind::Predicted(PredictorKind::sp_default()), 3);
}

#[test]
fn lockstep_uni_predicted_traffic() {
    lockstep_protocol(ProtocolKind::Predicted(PredictorKind::Uni), 4);
}

/// The paper-geometry caches (16 KB direct-mapped L1, 1 MB 8-way L2) agree
/// with the reference on a long mixed stream — the exact configurations
/// the machine instantiates per tile.
#[test]
fn paper_geometry_long_stream_agrees() {
    for (salt, cfg) in [(10u64, CacheConfig::l1_16kb()), (11, CacheConfig::l2_1mb())] {
        let mut rng = case_rng(90, salt);
        let mut soa: SetAssocCache<u64> = SetAssocCache::new(cfg);
        let mut aos: RefCache<u64> = RefCache::new(cfg);
        // A universe twice the line count keeps sets churning.
        let universe = cfg.num_lines() as u64 * 2;
        for step in 0..60_000 {
            let b = BlockAddr::from_index(rng.range(0, universe));
            match rng.index(3) {
                0 => {
                    let payload = rng.range(0, 1 << 20);
                    assert_eq!(
                        soa.insert(b, payload),
                        aos.insert(b, payload),
                        "step {step}"
                    );
                }
                1 => {
                    assert_eq!(
                        soa.lookup(b).map(|p| *p),
                        aos.lookup(b).map(|p| *p),
                        "step {step}"
                    );
                }
                _ => {
                    assert_eq!(soa.invalidate(b), aos.invalidate(b), "step {step}");
                }
            }
        }
        assert_eq!(soa.hits(), aos.hits());
        assert_eq!(soa.misses(), aos.misses());
        assert_eq!(soa.len(), aos.len());
        soa.audit().expect("cache audit");
    }
}
