#!/usr/bin/env bash
# Offline CI gate: formatting, lints, tier-1 verify, full workspace
# tests (including the golden regression set). Never touches the
# network; missing optional toolchain components are skipped with a
# notice rather than failing the run.
set -euo pipefail

cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "rustfmt check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all -- --check
else
    echo "rustfmt not installed; skipping"
fi

step "clippy (workspace, -D warnings)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -- -D warnings
    # The coherence substrate must not panic on lookup failures: every
    # unwrap in spcp-mem/spcp-noc library code is a latent protocol bug.
    cargo clippy -p spcp-mem -p spcp-noc --offline -- -D warnings -W clippy::unwrap_used
else
    echo "clippy not installed; skipping"
fi

step "tier-1 verify: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

step "full workspace build + tests (bench binaries, CLI, golden checks)"
cargo build --release --workspace --offline
cargo test -q --workspace --offline

step "golden snapshot verify"
cargo test -q --offline --test golden_regression

step "invariant layer: workspace tests with runtime audits compiled in"
cargo test -q --offline --features invariants
# The SoA/batched-reservation lockstep harness, explicitly, with audits on.
cargo test -q --offline --features invariants --test soa_equivalence

step "lockstep smoke with optimizations on (layout bugs surface in release)"
cargo test -q --release --offline --test soa_equivalence

step "streamed sweep smoke: spool to disk, golden-verify, idle resume"
SPOOL="$(mktemp -d)"
trap 'rm -rf "$SPOOL"' EXIT
cargo run --release --offline -p spcp-cli -- sweep \
    --benches fft,lu --protocols dir,sp --seeds 7 --jobs 2 \
    --out "$SPOOL/sweep" --update-golden --golden "$SPOOL/sweep.golden"
# Resuming a complete spool executes nothing and reproduces the snapshot.
cargo run --release --offline -p spcp-cli -- sweep \
    --benches fft,lu --protocols dir,sp --seeds 7 --jobs 2 \
    --out "$SPOOL/sweep" --resume --golden "$SPOOL/sweep.golden"

step "kill-resume smoke: torn shard tail, --resume refills the matrix"
cargo run --release --offline -p spcp-cli -- sweep \
    --benches fft,lu --protocols dir,sp --seeds 7 --jobs 2 \
    --out "$SPOOL/kill" --update-golden --golden "$SPOOL/kill.golden"
# Simulate a mid-write kill: cut the last shard inside its final record.
SHARD="$(ls "$SPOOL"/kill/shard-*.jsonl | tail -1)"
SIZE="$(wc -c < "$SHARD")"
truncate -s "$((SIZE - 7))" "$SHARD"
cargo run --release --offline -p spcp-cli -- sweep \
    --benches fft,lu --protocols dir,sp --seeds 7 --jobs 2 \
    --out "$SPOOL/kill" --resume --golden "$SPOOL/kill.golden"
cmp "$SPOOL/sweep.golden" "$SPOOL/kill.golden"

step "model checker smoke: exhaustive 2-core x 1-line enumeration"
cargo run --release --offline -p spcp-cli -- check --model --cores 2 --lines 1

echo
echo "CI passed."
