//! Trace-driven characterization (the paper's §3 methodology).

use crate::event::TraceEvent;
use spcp_sim::{CoreId, CoreSet};
use spcp_sync::SyncKind;
use std::collections::HashMap;

/// The communication summary of one dynamic epoch instance, reconstructed
/// from a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSummary {
    /// Core that executed the epoch.
    pub core: CoreId,
    /// Static ID of the sync-point that began the epoch.
    pub static_id: u32,
    /// Kind of the beginning sync-point.
    pub kind: SyncKind,
    /// Dynamic instance number.
    pub instance: u64,
    /// Per-target communication volume.
    pub volumes: Vec<u32>,
}

impl EpochSummary {
    /// Total communication volume.
    pub fn total_volume(&self) -> u64 {
        self.volumes.iter().map(|&v| v as u64).sum()
    }

    /// The hot communication set at `threshold`.
    pub fn hot_set(&self, threshold: f64) -> CoreSet {
        let total = self.total_volume();
        if total == 0 {
            return CoreSet::empty();
        }
        let cutoff = ((total as f64 * threshold).ceil() as u64).max(1);
        self.volumes
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v as u64 >= cutoff)
            .map(|(i, _)| CoreId::new(i))
            .collect()
    }
}

/// Replays a trace and derives the §3 characterization: miss counts,
/// communicating ratio, per-epoch volumes and hot sets, and sync-epoch
/// statistics — all without a timing simulator, exactly as the paper's
/// characterization study does.
///
/// # Examples
///
/// ```
/// use spcp_trace::{TraceAnalyzer, TraceEvent};
/// use spcp_core::AccessKind;
/// use spcp_mem::BlockAddr;
/// use spcp_sim::{CoreId, CoreSet};
/// use spcp_sync::SyncKind;
///
/// let trace = vec![
///     TraceEvent::Sync { core: CoreId::new(0), kind: SyncKind::Barrier, static_id: 1, instance: 0 },
///     TraceEvent::Miss {
///         core: CoreId::new(0),
///         block: BlockAddr::from_index(4),
///         pc: 0,
///         kind: AccessKind::Read,
///         targets: CoreSet::from_bits(0b10),
///     },
/// ];
/// let a = TraceAnalyzer::from_events(16, &trace);
/// assert_eq!(a.comm_misses(), 1);
/// assert_eq!(a.epochs().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceAnalyzer {
    num_cores: usize,
    total_misses: u64,
    comm_misses: u64,
    epochs: Vec<EpochSummary>,
    /// Per-core currently open epoch index into `epochs`.
    open: Vec<Option<usize>>,
    static_epochs: HashMap<(usize, u32, SyncKind), u64>,
}

impl TraceAnalyzer {
    /// Replays `events` for a `num_cores` machine.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or an event references a core beyond
    /// it.
    pub fn from_events(num_cores: usize, events: &[TraceEvent]) -> Self {
        assert!(num_cores > 0);
        let mut a = TraceAnalyzer {
            num_cores,
            total_misses: 0,
            comm_misses: 0,
            epochs: Vec::new(),
            open: vec![None; num_cores],
            static_epochs: HashMap::new(),
        };
        for e in events {
            a.feed(e);
        }
        a
    }

    fn feed(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Sync {
                core,
                kind,
                static_id,
                instance,
            } => {
                assert!(core.index() < self.num_cores, "core out of range");
                *self
                    .static_epochs
                    .entry((core.index(), static_id, kind))
                    .or_insert(0) += 1;
                let summary = EpochSummary {
                    core,
                    static_id,
                    kind,
                    instance,
                    volumes: vec![0; self.num_cores],
                };
                self.epochs.push(summary);
                self.open[core.index()] = Some(self.epochs.len() - 1);
            }
            TraceEvent::Miss { core, targets, .. } => {
                assert!(core.index() < self.num_cores, "core out of range");
                self.total_misses += 1;
                if !targets.is_empty() {
                    self.comm_misses += 1;
                    if let Some(idx) = self.open[core.index()] {
                        for t in targets.iter() {
                            self.epochs[idx].volumes[t.index()] += 1;
                        }
                    }
                }
            }
        }
    }

    /// Total misses in the trace.
    pub fn total_misses(&self) -> u64 {
        self.total_misses
    }

    /// Communicating misses in the trace.
    pub fn comm_misses(&self) -> u64 {
        self.comm_misses
    }

    /// Fraction of misses that communicate (Figure 1, trace-driven).
    pub fn comm_ratio(&self) -> f64 {
        if self.total_misses == 0 {
            0.0
        } else {
            self.comm_misses as f64 / self.total_misses as f64
        }
    }

    /// All reconstructed epoch instances, in trace order.
    pub fn epochs(&self) -> &[EpochSummary] {
        &self.epochs
    }

    /// Distinct static sync-epochs per core (Table 1, trace-driven),
    /// averaged over cores.
    pub fn static_epochs_per_core(&self) -> f64 {
        if self.num_cores == 0 {
            return 0.0;
        }
        self.static_epochs.len() as f64 / self.num_cores as f64
    }

    /// Dynamic epoch instances per core, averaged.
    pub fn dynamic_epochs_per_core(&self) -> f64 {
        self.epochs.len() as f64 / self.num_cores as f64
    }

    /// Distribution of hot-set sizes over active epochs: buckets for sizes
    /// 1, 2, 3, 4 and ≥5 (Figure 5, trace-driven).
    pub fn hot_set_size_distribution(&self, threshold: f64) -> [u64; 5] {
        let mut buckets = [0u64; 5];
        for e in &self.epochs {
            let size = e.hot_set(threshold).len();
            if size > 0 {
                buckets[size.min(5) - 1] += 1;
            }
        }
        buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcp_core::AccessKind;
    use spcp_mem::BlockAddr;

    fn sync(core: usize, id: u32, inst: u64) -> TraceEvent {
        TraceEvent::Sync {
            core: CoreId::new(core),
            kind: SyncKind::Barrier,
            static_id: id,
            instance: inst,
        }
    }

    fn miss(core: usize, targets: u64) -> TraceEvent {
        TraceEvent::Miss {
            core: CoreId::new(core),
            block: BlockAddr::from_index(1),
            pc: 0,
            kind: AccessKind::Read,
            targets: CoreSet::from_bits(targets),
        }
    }

    #[test]
    fn counts_and_ratio() {
        let a = TraceAnalyzer::from_events(
            4,
            &[sync(0, 1, 0), miss(0, 0b10), miss(0, 0), miss(0, 0b10)],
        );
        assert_eq!(a.total_misses(), 3);
        assert_eq!(a.comm_misses(), 2);
        assert!((a.comm_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn volumes_attach_to_the_open_epoch() {
        let a = TraceAnalyzer::from_events(
            4,
            &[
                sync(0, 1, 0),
                miss(0, 0b10),
                sync(0, 2, 0),
                miss(0, 0b100),
                miss(0, 0b100),
            ],
        );
        assert_eq!(a.epochs().len(), 2);
        assert_eq!(a.epochs()[0].total_volume(), 1);
        assert_eq!(a.epochs()[1].total_volume(), 2);
        assert_eq!(a.epochs()[1].hot_set(0.1), CoreSet::from_bits(0b100));
    }

    #[test]
    fn misses_before_any_sync_are_counted_but_unattributed() {
        let a = TraceAnalyzer::from_events(4, &[miss(0, 0b10)]);
        assert_eq!(a.comm_misses(), 1);
        assert!(a.epochs().is_empty());
    }

    #[test]
    fn per_core_epoch_streams_are_independent() {
        let a = TraceAnalyzer::from_events(4, &[sync(0, 1, 0), sync(1, 1, 0), miss(1, 0b1)]);
        assert_eq!(a.epochs().len(), 2);
        assert_eq!(a.epochs()[0].total_volume(), 0);
        assert_eq!(a.epochs()[1].total_volume(), 1);
        assert!((a.dynamic_epochs_per_core() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hot_set_distribution_buckets() {
        let mut events = vec![sync(0, 1, 0)];
        // One epoch with a 2-core hot set.
        events.push(miss(0, 0b011));
        let a = TraceAnalyzer::from_events(4, &events);
        assert_eq!(a.hot_set_size_distribution(0.1), [0, 1, 0, 0, 0]);
    }

    #[test]
    fn static_epoch_counting() {
        let a = TraceAnalyzer::from_events(
            2,
            &[sync(0, 1, 0), sync(0, 1, 1), sync(0, 2, 0), sync(1, 1, 0)],
        );
        // Core 0 saw statics {1,2}; core 1 saw {1} -> 3 total / 2 cores.
        assert!((a.static_epochs_per_core() - 1.5).abs() < 1e-12);
        assert!((a.dynamic_epochs_per_core() - 2.0).abs() < 1e-12);
    }
}
