//! L2-miss and sync-point traces (§3.2 of the paper).
//!
//! The paper's §3 characterization is *trace-driven*: the authors collected
//! L2 miss traces containing "the miss data address, type, PC, and the
//! target set of cores that must communicate with", plus "all sync-points
//! along with their type and static/dynamic IDs". This crate provides that
//! exact artifact:
//!
//! * [`TraceEvent`] — one miss or sync-point record;
//! * [`write_trace`] / [`read_trace`] — a line-oriented text codec over any
//!   `io::Write`/`io::Read` (pass `&mut` references to reuse streams);
//! * [`TraceAnalyzer`] — trace-driven characterization: communicating-miss
//!   ratios, per-epoch communication volumes and hot sets, sync-epoch
//!   statistics — everything §3 derives, computed from the trace alone.
//!
//! # Examples
//!
//! ```
//! use spcp_trace::{read_trace, write_trace, TraceEvent};
//! use spcp_core::AccessKind;
//! use spcp_mem::BlockAddr;
//! use spcp_sim::{CoreId, CoreSet};
//!
//! let events = vec![TraceEvent::Miss {
//!     core: CoreId::new(1),
//!     block: BlockAddr::from_index(0x40),
//!     pc: 0x1000,
//!     kind: AccessKind::Read,
//!     targets: CoreSet::from_bits(0b100),
//! }];
//! let mut buf = Vec::new();
//! write_trace(&mut buf, &events)?;
//! let back = read_trace(&mut buf.as_slice())?;
//! assert_eq!(back, events);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod codec;
pub mod event;

pub use analyze::{EpochSummary, TraceAnalyzer};
pub use codec::{read_trace, write_trace, ParseTraceError};
pub use event::TraceEvent;
