//! Trace record types.

use spcp_core::AccessKind;
use spcp_mem::BlockAddr;
use spcp_sim::{CoreId, CoreSet};
use spcp_sync::SyncKind;
use std::fmt;

/// One trace record: an L2 miss with its communication targets, or a
/// sync-point with its static/dynamic identity — exactly the fields the
/// paper's §3.2 traces carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An L2 miss (including upgrades).
    Miss {
        /// Issuing core.
        core: CoreId,
        /// Missing block.
        block: BlockAddr,
        /// Program counter of the access.
        pc: u32,
        /// Access type.
        kind: AccessKind,
        /// The minimal sufficient target set (empty = memory-serviced).
        targets: CoreSet,
    },
    /// A synchronization point.
    Sync {
        /// Executing core.
        core: CoreId,
        /// Routine kind.
        kind: SyncKind,
        /// Static sync-point ID.
        static_id: u32,
        /// Dynamic occurrence number on this core.
        instance: u64,
    },
}

impl TraceEvent {
    /// The core that produced the event.
    pub fn core(&self) -> CoreId {
        match self {
            TraceEvent::Miss { core, .. } | TraceEvent::Sync { core, .. } => *core,
        }
    }

    /// Whether this is a communicating miss.
    pub fn is_communicating_miss(&self) -> bool {
        matches!(self, TraceEvent::Miss { targets, .. } if !targets.is_empty())
    }
}

impl fmt::Display for TraceEvent {
    /// Writes the on-disk line format (shared with the codec, so the two
    /// cannot drift apart).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::codec::encode_line(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_extraction() {
        let m = TraceEvent::Miss {
            core: CoreId::new(3),
            block: BlockAddr::from_index(1),
            pc: 0,
            kind: AccessKind::Read,
            targets: CoreSet::empty(),
        };
        assert_eq!(m.core(), CoreId::new(3));
        assert!(!m.is_communicating_miss());
        let s = TraceEvent::Sync {
            core: CoreId::new(5),
            kind: SyncKind::Barrier,
            static_id: 1,
            instance: 0,
        };
        assert_eq!(s.core(), CoreId::new(5));
        assert!(!s.is_communicating_miss());
    }

    #[test]
    fn communicating_flag() {
        let m = TraceEvent::Miss {
            core: CoreId::new(0),
            block: BlockAddr::from_index(1),
            pc: 0,
            kind: AccessKind::Write,
            targets: CoreSet::from_bits(0b10),
        };
        assert!(m.is_communicating_miss());
    }
}
