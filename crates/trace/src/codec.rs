//! The line-oriented trace codec.
//!
//! One event per line:
//!
//! ```text
//! M <core> <block-hex> <pc-hex> <R|W|U> <targets-hex>
//! S <core> <barrier|join|wakeup|broadcast|lock|unlock> <static-id> <instance>
//! ```

use crate::event::TraceEvent;
use spcp_core::AccessKind;
use spcp_mem::BlockAddr;
use spcp_sim::{CoreId, CoreSet};
use spcp_sync::SyncKind;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

impl From<ParseTraceError> for io::Error {
    fn from(e: ParseTraceError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

fn kind_code(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "R",
        AccessKind::Write => "W",
        AccessKind::Upgrade => "U",
    }
}

fn sync_code(kind: SyncKind) -> &'static str {
    match kind {
        SyncKind::Barrier => "barrier",
        SyncKind::Join => "join",
        SyncKind::Wakeup => "wakeup",
        SyncKind::Broadcast => "broadcast",
        SyncKind::Lock => "lock",
        SyncKind::Unlock => "unlock",
    }
}

/// Encodes one event as its trace line (without the newline).
pub fn encode_line(event: &TraceEvent) -> String {
    match *event {
        TraceEvent::Miss {
            core,
            block,
            pc,
            kind,
            targets,
        } => format!(
            "M {} {:x} {:x} {} {:x}",
            core.index(),
            block.index(),
            pc,
            kind_code(kind),
            targets.bits()
        ),
        TraceEvent::Sync {
            core,
            kind,
            static_id,
            instance,
        } => format!(
            "S {} {} {} {}",
            core.index(),
            sync_code(kind),
            static_id,
            instance
        ),
    }
}

fn parse_line(line: &str, lineno: usize) -> Result<TraceEvent, ParseTraceError> {
    let err = |message: String| ParseTraceError {
        line: lineno,
        message,
    };
    let fields: Vec<&str> = line.split_whitespace().collect();
    match fields.as_slice() {
        ["M", core, block, pc, kind, targets] => {
            let core = core
                .parse::<usize>()
                .map_err(|_| err(format!("bad core '{core}'")))?;
            let block =
                u64::from_str_radix(block, 16).map_err(|_| err(format!("bad block '{block}'")))?;
            let pc = u32::from_str_radix(pc, 16).map_err(|_| err(format!("bad pc '{pc}'")))?;
            let kind = match *kind {
                "R" => AccessKind::Read,
                "W" => AccessKind::Write,
                "U" => AccessKind::Upgrade,
                other => return Err(err(format!("bad access kind '{other}'"))),
            };
            let targets = u64::from_str_radix(targets, 16)
                .map_err(|_| err(format!("bad target set '{targets}'")))?;
            Ok(TraceEvent::Miss {
                core: CoreId::new(core),
                block: BlockAddr::from_index(block),
                pc,
                kind,
                targets: CoreSet::from_bits(targets),
            })
        }
        ["S", core, kind, static_id, instance] => {
            let core = core
                .parse::<usize>()
                .map_err(|_| err(format!("bad core '{core}'")))?;
            let kind = match *kind {
                "barrier" => SyncKind::Barrier,
                "join" => SyncKind::Join,
                "wakeup" => SyncKind::Wakeup,
                "broadcast" => SyncKind::Broadcast,
                "lock" => SyncKind::Lock,
                "unlock" => SyncKind::Unlock,
                other => return Err(err(format!("bad sync kind '{other}'"))),
            };
            let static_id = static_id
                .parse::<u32>()
                .map_err(|_| err(format!("bad static id '{static_id}'")))?;
            let instance = instance
                .parse::<u64>()
                .map_err(|_| err(format!("bad instance '{instance}'")))?;
            Ok(TraceEvent::Sync {
                core: CoreId::new(core),
                kind,
                static_id,
                instance,
            })
        }
        [] => Err(err("empty line".into())),
        _ => Err(err(format!("unrecognized record '{line}'"))),
    }
}

/// Writes `events` to `w`, one line each.
///
/// A `&mut` reference works wherever a writer is needed.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_trace<W: Write>(mut w: W, events: &[TraceEvent]) -> io::Result<()> {
    for e in events {
        writeln!(w, "{}", encode_line(e))?;
    }
    Ok(())
}

/// Reads a whole trace from `r`.
///
/// A `&mut` reference works wherever a reader is needed. Blank lines and
/// `#` comment lines are skipped.
///
/// # Errors
///
/// Returns an `InvalidData` error wrapping [`ParseTraceError`] for
/// malformed lines, or propagates I/O errors.
pub fn read_trace<R: Read>(r: R) -> io::Result<Vec<TraceEvent>> {
    let mut events = Vec::new();
    for (i, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        events.push(parse_line(trimmed, i + 1)?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(core: usize, block: u64, targets: u64, kind: AccessKind) -> TraceEvent {
        TraceEvent::Miss {
            core: CoreId::new(core),
            block: BlockAddr::from_index(block),
            pc: 0x4a0,
            kind,
            targets: CoreSet::from_bits(targets),
        }
    }

    fn sync(core: usize, kind: SyncKind, id: u32, inst: u64) -> TraceEvent {
        TraceEvent::Sync {
            core: CoreId::new(core),
            kind,
            static_id: id,
            instance: inst,
        }
    }

    #[test]
    fn encode_forms() {
        assert_eq!(
            encode_line(&miss(3, 0x1000, 0b101, AccessKind::Write)),
            "M 3 1000 4a0 W 5"
        );
        assert_eq!(encode_line(&sync(7, SyncKind::Lock, 9, 2)), "S 7 lock 9 2");
    }

    #[test]
    fn round_trip_every_variant() {
        let events = vec![
            miss(0, 1, 0, AccessKind::Read),
            miss(15, 0xdead, 0xffff, AccessKind::Upgrade),
            sync(1, SyncKind::Barrier, 1, 0),
            sync(2, SyncKind::Unlock, 4, 99),
            sync(3, SyncKind::Join, 5, 1),
            sync(4, SyncKind::Wakeup, 6, 2),
            sync(5, SyncKind::Broadcast, 7, 3),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\nM 0 1 0 R 0\n   \n# trailer\n";
        let events = read_trace(text.as_bytes()).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn malformed_lines_report_position() {
        let text = "M 0 1 0 R 0\nM 0 zz 0 R 0\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("bad block"), "{msg}");
    }

    #[test]
    fn unknown_record_rejected() {
        assert!(read_trace("X what is this".as_bytes()).is_err());
        assert!(read_trace("M 0 1 0 Q 0".as_bytes()).is_err());
        assert!(read_trace("S 0 fence 1 0".as_bytes()).is_err());
    }

    #[test]
    fn display_matches_codec() {
        let e = miss(1, 2, 3, AccessKind::Read);
        assert_eq!(e.to_string(), encode_line(&e));
    }
}
