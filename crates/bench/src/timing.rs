//! Minimal wall-clock benchmark runner.
//!
//! A dependency-free replacement for the former criterion harness so the
//! micro/end-to-end benches build fully offline. It auto-calibrates a batch
//! size during a short warm-up, then measures batches until a time budget
//! is spent and reports mean ns/iter. The output is for eyeballing relative
//! costs, not rigorous statistics.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Prints a group header, mirroring the old criterion group names.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

/// Micro-benchmark: auto-calibrated batching, ~200 ms measurement budget.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let warm_until = Instant::now() + Duration::from_millis(30);
    let mut warm_iters: u64 = 0;
    while Instant::now() < warm_until {
        black_box(f());
        warm_iters += 1;
    }
    let batch = warm_iters.max(1);
    let budget = Duration::from_millis(200);
    let mut total = Duration::ZERO;
    let mut count: u64 = 0;
    while total < budget {
        let t0 = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        total += t0.elapsed();
        count += batch;
    }
    let ns = total.as_nanos() as f64 / count as f64;
    println!("  {name:<36} {ns:>14.1} ns/iter   ({count} iters)");
}

/// Macro-benchmark: runs `samples` timed repetitions of an expensive body
/// (a whole simulation) and reports the mean and fastest sample.
pub fn bench_samples<T>(name: &str, samples: u32, mut f: impl FnMut() -> T) {
    assert!(samples > 0, "need at least one sample");
    let mut times = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed());
    }
    let mean_ms = times.iter().map(Duration::as_secs_f64).sum::<f64>() / samples as f64 * 1e3;
    let best_ms = times
        .iter()
        .map(Duration::as_secs_f64)
        .fold(f64::INFINITY, f64::min)
        * 1e3;
    println!("  {name:<36} {mean_ms:>10.2} ms/iter   (best {best_ms:.2} ms, {samples} samples)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_samples_runs_body_exactly_n_times() {
        let mut calls = 0u32;
        bench_samples("noop", 3, || calls += 1);
        assert_eq!(calls, 3);
    }
}
