//! Shared harness for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper.
//! Run them with `cargo run -p spcp-bench --release --bin <name>`:
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1_communicating_misses` | Figure 1 |
//! | `fig2_comm_distribution` | Figure 2 |
//! | `table1_sync_epoch_stats` | Table 1 |
//! | `fig4_comm_locality` | Figure 4 |
//! | `fig5_hot_set_sizes` | Figure 5 |
//! | `fig6_hot_set_patterns` | Figure 6 |
//! | `table4_machine_config` | Table 4 |
//! | `fig7_sp_accuracy` | Figure 7 |
//! | `table5_predicted_set_size` | Table 5 |
//! | `fig8_miss_latency` | Figure 8 |
//! | `fig9_bandwidth` | Figure 9 |
//! | `fig10_execution_time` | Figure 10 |
//! | `fig11_energy` | Figure 11 |
//! | `fig12_tradeoff` | Figure 12 |
//! | `fig13_space_sensitivity` | Figure 13 |
//! | `fig3_sync_epochs` | Figure 3 (rendered from a real trace) |
//! | `ablation_sp` | SP design-choice sweeps (DESIGN.md §5) |
//! | `ablation_policies` | destination-set policies (§5.4 footnote) |
//! | `ext_multicast_snoop` | prediction-driven multicast snooping (§1) |
//! | `ext_snoop_filter` | region snoop filter (§5.3) |
//! | `ext_software_table` | software SP-table cost (§4.6) |
//! | `ext_profile_warmstart` | off-line profiling warm start (§5.2) |
//! | `ext_thread_migration` | thread migration + logical IDs (§5.5) |
//! | `ext_commercial` | commercial-workload projection (§5.5) |
//! | `ext_protocol_variant` | MESIF vs plain MESI (§4.5) |
//! | `ext_cache_sensitivity` | L2-size sensitivity (§5.3) |
//! | `ext_core_count` | 4–64-core scaling |
//! | `ext_input_size` | input-size sensitivity (§5.3) |
//! | `ext_compute_intensity` | instruction-mix sensitivity |
//! | `noc_saturation` | flit-level NoC saturation + cross-validation |
//! | `all_results` | CSV batch of every benchmark × protocol |

#![warn(missing_docs)]

pub mod timing;

use spcp_harness::{RunMatrix, SweepEngine, SweepResult};
use spcp_system::{CmpSystem, MachineConfig, ProtocolKind, RunConfig, RunStats};
use spcp_workloads::{suite, BenchmarkSpec};

/// The fixed workload seed every figure uses (determinism across binaries).
pub const SEED: u64 = 7;
/// Cores in the evaluated machine.
pub const CORES: usize = 16;

/// Runs `spec` under `protocol` on the paper's machine.
pub fn run(spec: &BenchmarkSpec, protocol: ProtocolKind, record: bool) -> RunStats {
    let w = spec.generate(CORES, SEED);
    let mut cfg = RunConfig::new(MachineConfig::paper_16core(), protocol);
    if record {
        cfg = cfg.recording();
    }
    CmpSystem::run_workload(&w, &cfg)
}

/// Parses `--jobs N` (or `--jobs=N`) from the process arguments; defaults
/// to the machine's available parallelism.
pub fn jobs_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    jobs_from(&args)
}

/// [`jobs_arg`] over an explicit argument slice (testable).
pub fn jobs_from(args: &[String]) -> usize {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            if let Some(v) = it.next().and_then(|s| s.parse::<usize>().ok()) {
                return v.max(1);
            }
        } else if let Some(v) = a
            .strip_prefix("--jobs=")
            .and_then(|s| s.parse::<usize>().ok())
        {
            return v.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sweeps the whole suite under the given labelled protocols, fanning the
/// runs across `jobs` workers via `spcp-harness`.
pub fn sweep_suite(protocols: &[(&str, ProtocolKind)], record: bool, jobs: usize) -> SweepResult {
    let mut matrix = RunMatrix::new().benches(suite::all());
    for (label, kind) in protocols {
        matrix = matrix.protocol(*label, kind.clone());
    }
    if record {
        matrix = matrix.recording();
    }
    SweepEngine::new(jobs).run(&matrix)
}

/// Runs the whole suite under one protocol (parallel across `jobs_arg()`
/// workers; results stay in `suite::all()` order).
pub fn run_suite(protocol: ProtocolKind, record: bool) -> Vec<RunStats> {
    let result = sweep_suite(&[("p", protocol)], record, jobs_arg());
    result.runs.into_iter().map(|r| r.stats).collect()
}

/// The directory/broadcast/SP comparison sweep behind Figures 8–11, run as
/// one matrix so all runs share a single worker pool. Prints the harness's
/// timing line to stderr.
pub fn sweep_dir_bc_sp(record: bool) -> SweepResult {
    let result = sweep_suite(
        &[
            ("dir", ProtocolKind::Directory),
            ("bc", ProtocolKind::Broadcast),
            (
                "sp",
                ProtocolKind::Predicted(spcp_system::PredictorKind::sp_default()),
            ),
        ],
        record,
        jobs_arg(),
    );
    eprintln!("[harness] {}", result.timing_line());
    result
}

/// Arithmetic mean of an iterator of f64.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// A crude ASCII bar for terminal "plots": `frac` in `[0, 1]` over `width`
/// characters.
pub fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "█".repeat(filled), "·".repeat(width - filled))
}

/// Prints a standard figure header.
pub fn header(id: &str, caption: &str) {
    println!("================================================================");
    println!("{id}: {caption}");
    println!("(reproduction; shapes comparable to the paper, absolute numbers");
    println!(" depend on the synthetic substrate — see EXPERIMENTS.md)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_renders_extremes() {
        assert_eq!(bar(0.0, 4), "····");
        assert_eq!(bar(1.0, 4), "████");
        assert_eq!(bar(0.5, 4), "██··");
        assert_eq!(bar(7.0, 2), "██", "clamped above 1");
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean([]), 0.0);
    }

    #[test]
    fn run_helper_produces_stats() {
        let s = run(&suite::x264(), ProtocolKind::Directory, false);
        assert_eq!(s.benchmark, "x264");
        assert!(s.l2_misses > 0);
    }

    #[test]
    fn jobs_from_parses_both_forms() {
        let argv = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(jobs_from(&argv(&["prog", "--jobs", "3"])), 3);
        assert_eq!(jobs_from(&argv(&["prog", "--jobs=5"])), 5);
        assert_eq!(jobs_from(&argv(&["prog", "--jobs", "0"])), 1);
        assert!(jobs_from(&argv(&["prog"])) >= 1);
    }

    #[test]
    fn sweep_matches_serial_run() {
        let spec = suite::x264();
        let serial = run(&spec, ProtocolKind::Directory, false);
        let sweep = sweep_suite(&[("dir", ProtocolKind::Directory)], false, 2);
        let swept = sweep.get("x264", "dir", SEED).expect("present");
        assert_eq!(serial.exec_cycles, swept.stats.exec_cycles);
        assert_eq!(serial.noc.byte_hops, swept.stats.noc.byte_hops);
    }
}
