//! Shared harness for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper.
//! Run them with `cargo run -p spcp-bench --release --bin <name>`:
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1_communicating_misses` | Figure 1 |
//! | `fig2_comm_distribution` | Figure 2 |
//! | `table1_sync_epoch_stats` | Table 1 |
//! | `fig4_comm_locality` | Figure 4 |
//! | `fig5_hot_set_sizes` | Figure 5 |
//! | `fig6_hot_set_patterns` | Figure 6 |
//! | `table4_machine_config` | Table 4 |
//! | `fig7_sp_accuracy` | Figure 7 |
//! | `table5_predicted_set_size` | Table 5 |
//! | `fig8_miss_latency` | Figure 8 |
//! | `fig9_bandwidth` | Figure 9 |
//! | `fig10_execution_time` | Figure 10 |
//! | `fig11_energy` | Figure 11 |
//! | `fig12_tradeoff` | Figure 12 |
//! | `fig13_space_sensitivity` | Figure 13 |
//! | `fig3_sync_epochs` | Figure 3 (rendered from a real trace) |
//! | `ablation_sp` | SP design-choice sweeps (DESIGN.md §5) |
//! | `ablation_policies` | destination-set policies (§5.4 footnote) |
//! | `ext_multicast_snoop` | prediction-driven multicast snooping (§1) |
//! | `ext_snoop_filter` | region snoop filter (§5.3) |
//! | `ext_software_table` | software SP-table cost (§4.6) |
//! | `ext_profile_warmstart` | off-line profiling warm start (§5.2) |
//! | `ext_thread_migration` | thread migration + logical IDs (§5.5) |
//! | `ext_commercial` | commercial-workload projection (§5.5) |
//! | `ext_protocol_variant` | MESIF vs plain MESI (§4.5) |
//! | `ext_cache_sensitivity` | L2-size sensitivity (§5.3) |
//! | `ext_core_count` | 4–64-core scaling |
//! | `ext_input_size` | input-size sensitivity (§5.3) |
//! | `ext_compute_intensity` | instruction-mix sensitivity |
//! | `noc_saturation` | flit-level NoC saturation + cross-validation |
//! | `all_results` | CSV batch of every benchmark × protocol |

#![warn(missing_docs)]

pub mod timing;

use std::path::PathBuf;

use spcp_harness::{RunMatrix, SpoolError, StreamConfig, SweepEngine, SweepResult};
use spcp_system::{CmpSystem, MachineConfig, ProtocolKind, RunConfig, RunStats};
use spcp_workloads::{suite, BenchmarkSpec};

/// The fixed workload seed every figure uses (determinism across binaries).
pub const SEED: u64 = 7;
/// Cores in the evaluated machine.
pub const CORES: usize = 16;

/// Runs `spec` under `protocol` on the paper's machine.
pub fn run(spec: &BenchmarkSpec, protocol: ProtocolKind, record: bool) -> RunStats {
    let w = spec.generate(CORES, SEED);
    let mut cfg = RunConfig::new(MachineConfig::paper_16core(), protocol);
    if record {
        cfg = cfg.recording();
    }
    CmpSystem::run_workload(&w, &cfg)
}

/// Parses `--jobs N` (or `--jobs=N`) from the process arguments; defaults
/// to the machine's available parallelism.
pub fn jobs_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    jobs_from(&args)
}

/// [`jobs_arg`] over an explicit argument slice (testable).
pub fn jobs_from(args: &[String]) -> usize {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            if let Some(v) = it.next().and_then(|s| s.parse::<usize>().ok()) {
                return v.max(1);
            }
        } else if let Some(v) = a
            .strip_prefix("--jobs=")
            .and_then(|s| s.parse::<usize>().ok())
        {
            return v.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Streamed-spool options for sweep-style binaries: `--out <dir>`,
/// `--resume` and `--flush-every <n>`, mirroring `spcp sweep`.
///
/// With no `--out` the sweep runs through the in-memory engine exactly as
/// before; with one, results are spooled to shard files so an interrupted
/// figure regeneration can be resumed with `--resume`.
#[derive(Debug, Clone, Default)]
pub struct StreamOpts {
    /// Spool directory (`--out`); `None` selects the in-memory path.
    pub out: Option<PathBuf>,
    /// Continue an interrupted sweep (`--resume`).
    pub resume: bool,
    /// Records between spool fsyncs (`--flush-every`); 0 = default.
    pub flush_every: usize,
}

impl StreamOpts {
    /// Parses the process arguments (the `jobs_arg` idiom).
    pub fn from_env_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_args(&args)
    }

    /// [`Self::from_env_args`] over an explicit argument slice (testable).
    pub fn from_args(args: &[String]) -> Self {
        let mut opts = StreamOpts::default();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--out" => opts.out = it.next().map(PathBuf::from),
                "--resume" => opts.resume = true,
                "--flush-every" => {
                    opts.flush_every = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(opts.flush_every)
                }
                _ => {
                    if let Some(v) = a.strip_prefix("--out=") {
                        opts.out = Some(PathBuf::from(v));
                    } else if let Some(v) = a.strip_prefix("--flush-every=") {
                        opts.flush_every = v.parse().unwrap_or(opts.flush_every);
                    }
                }
            }
        }
        opts
    }

    /// The same options scoped to a subdirectory of `--out` — for binaries
    /// that run several matrices (each matrix needs its own spool).
    pub fn subdir(&self, name: &str) -> Self {
        StreamOpts {
            out: self.out.as_ref().map(|d| d.join(name)),
            ..self.clone()
        }
    }

    fn config(&self) -> Option<StreamConfig> {
        self.out.as_ref().map(|dir| {
            let mut cfg = StreamConfig::new(dir).resume(self.resume);
            if self.flush_every > 0 {
                cfg = cfg.flush_every(self.flush_every);
            }
            cfg
        })
    }
}

/// Runs one matrix through the engine, streamed when `opts` carries an
/// `--out` directory, and prints the harness status line to stderr.
///
/// Recording matrices cannot stream (their per-epoch payloads are not
/// spooled); they fall back to the in-memory engine with a warning. Spool
/// failures abort the binary with a nonzero exit.
pub fn run_matrix(matrix: &RunMatrix, jobs: usize, opts: &StreamOpts) -> SweepResult {
    if let Some(cfg) = opts.config() {
        match SweepEngine::new(jobs).run_streamed(matrix, &cfg) {
            Ok(streamed) => {
                eprintln!("[harness] {}", streamed.status_line());
                return streamed.into_sweep_result().unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                });
            }
            Err(SpoolError::Unsupported(why)) => {
                eprintln!("[harness] --out ignored: {why}");
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    let result = SweepEngine::new(jobs).run(matrix);
    eprintln!("[harness] {}", result.timing_line());
    result
}

/// Sweeps the whole suite under the given labelled protocols, fanning the
/// runs across `jobs` workers via `spcp-harness`. Honors the process-level
/// `--out/--resume/--flush-every` stream options.
pub fn sweep_suite(protocols: &[(&str, ProtocolKind)], record: bool, jobs: usize) -> SweepResult {
    let mut matrix = RunMatrix::new().benches(suite::all());
    for (label, kind) in protocols {
        matrix = matrix.protocol(*label, kind.clone());
    }
    if record {
        matrix = matrix.recording();
    }
    run_matrix(&matrix, jobs, &StreamOpts::from_env_args())
}

/// Runs the whole suite under one protocol (parallel across `jobs_arg()`
/// workers; results stay in `suite::all()` order).
pub fn run_suite(protocol: ProtocolKind, record: bool) -> Vec<RunStats> {
    let result = sweep_suite(&[("p", protocol)], record, jobs_arg());
    result.runs.into_iter().map(|r| r.stats).collect()
}

/// The directory/broadcast/SP comparison sweep behind Figures 8–11, run as
/// one matrix so all runs share a single worker pool. The harness status
/// line goes to stderr; `--out/--resume` stream the results.
pub fn sweep_dir_bc_sp(record: bool) -> SweepResult {
    sweep_suite(
        &[
            ("dir", ProtocolKind::Directory),
            ("bc", ProtocolKind::Broadcast),
            (
                "sp",
                ProtocolKind::Predicted(spcp_system::PredictorKind::sp_default()),
            ),
        ],
        record,
        jobs_arg(),
    )
}

/// Arithmetic mean of an iterator of f64.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// A crude ASCII bar for terminal "plots": `frac` in `[0, 1]` over `width`
/// characters.
pub fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "█".repeat(filled), "·".repeat(width - filled))
}

/// Prints a standard figure header.
pub fn header(id: &str, caption: &str) {
    println!("================================================================");
    println!("{id}: {caption}");
    println!("(reproduction; shapes comparable to the paper, absolute numbers");
    println!(" depend on the synthetic substrate — see EXPERIMENTS.md)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_renders_extremes() {
        assert_eq!(bar(0.0, 4), "····");
        assert_eq!(bar(1.0, 4), "████");
        assert_eq!(bar(0.5, 4), "██··");
        assert_eq!(bar(7.0, 2), "██", "clamped above 1");
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean([]), 0.0);
    }

    #[test]
    fn run_helper_produces_stats() {
        let s = run(&suite::x264(), ProtocolKind::Directory, false);
        assert_eq!(s.benchmark, "x264");
        assert!(s.l2_misses > 0);
    }

    #[test]
    fn jobs_from_parses_both_forms() {
        let argv = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(jobs_from(&argv(&["prog", "--jobs", "3"])), 3);
        assert_eq!(jobs_from(&argv(&["prog", "--jobs=5"])), 5);
        assert_eq!(jobs_from(&argv(&["prog", "--jobs", "0"])), 1);
        assert!(jobs_from(&argv(&["prog"])) >= 1);
    }

    #[test]
    fn sweep_matches_serial_run() {
        let spec = suite::x264();
        let serial = run(&spec, ProtocolKind::Directory, false);
        let sweep = sweep_suite(&[("dir", ProtocolKind::Directory)], false, 2);
        let swept = sweep.get("x264", "dir", SEED).expect("present");
        assert_eq!(serial.exec_cycles, swept.stats.exec_cycles);
        assert_eq!(serial.noc.byte_hops, swept.stats.noc.byte_hops);
    }

    #[test]
    fn stream_opts_parse_and_subdir() {
        let argv = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let o = StreamOpts::from_args(&argv(&["prog", "--out", "/tmp/spool", "--resume"]));
        assert_eq!(o.out.as_deref(), Some(std::path::Path::new("/tmp/spool")));
        assert!(o.resume);
        assert_eq!(o.flush_every, 0);
        let o = StreamOpts::from_args(&argv(&["prog", "--out=/x", "--flush-every=9"]));
        assert_eq!(o.out.as_deref(), Some(std::path::Path::new("/x")));
        assert_eq!(o.flush_every, 9);
        let sub = o.subdir("scale2");
        assert_eq!(sub.out.as_deref(), Some(std::path::Path::new("/x/scale2")));
        let none = StreamOpts::from_args(&argv(&["prog", "--jobs", "2"]));
        assert!(none.out.is_none());
        assert!(none.subdir("s").out.is_none());
    }

    #[test]
    fn run_matrix_streamed_matches_in_memory() {
        let dir = std::env::temp_dir().join(format!("spcp-bench-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let matrix = RunMatrix::new()
            .bench(suite::x264())
            .protocol("dir", ProtocolKind::Directory)
            .protocol(
                "sp",
                ProtocolKind::Predicted(spcp_system::PredictorKind::sp_default()),
            );
        let mem = run_matrix(&matrix, 2, &StreamOpts::default());
        let opts = StreamOpts {
            out: Some(dir.clone()),
            resume: false,
            flush_every: 1,
        };
        let streamed = run_matrix(&matrix, 2, &opts);
        assert_eq!(mem.summary(), streamed.summary());
        // Resume over the finished spool re-runs nothing and agrees.
        let resumed = run_matrix(
            &matrix,
            2,
            &StreamOpts {
                resume: true,
                ..opts
            },
        );
        assert_eq!(mem.summary(), resumed.summary());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_matrix_recording_falls_back_to_memory() {
        let dir = std::env::temp_dir().join(format!("spcp-bench-recfall-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let matrix = RunMatrix::new()
            .bench(suite::x264())
            .protocol("dir", ProtocolKind::Directory)
            .recording();
        let opts = StreamOpts {
            out: Some(dir.clone()),
            resume: false,
            flush_every: 0,
        };
        let result = run_matrix(&matrix, 1, &opts);
        assert_eq!(result.runs.len(), 1);
        assert!(!result.runs[0].stats.epoch_records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
