//! Extension: the §5.3 region snoop filter. The paper argues that most of
//! SP-prediction's bandwidth overhead (predictions on misses that turn out
//! non-communicating) can be filtered by simple region tracking; this
//! harness measures exactly that.

use spcp_bench::{header, mean, run, run_suite, CORES, SEED};
use spcp_system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
use spcp_workloads::suite;

fn main() {
    header(
        "Extension: region snoop filter (§5.3)",
        "SP-prediction with and without region-based prediction filtering",
    );
    let dir = run_suite(ProtocolKind::Directory, false);
    println!(
        "{:<14} {:>9} {:>9} {:>10} {:>10} {:>9}",
        "benchmark", "+bw plain", "+bw filt", "waste cut", "filtered", "accuracy"
    );
    let mut plain_bw = Vec::new();
    let mut filt_bw = Vec::new();
    let mut waste_cut = Vec::new();
    for (spec, d) in suite::all().iter().zip(&dir) {
        let plain = run(
            spec,
            ProtocolKind::Predicted(PredictorKind::sp_default()),
            false,
        );
        let w = spec.generate(CORES, SEED);
        let filtered = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                MachineConfig::paper_16core(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            )
            .with_snoop_filter(),
        );
        let base = d.bandwidth() as f64;
        let p = (plain.bandwidth() as f64 - base) / base * 100.0;
        let f = (filtered.bandwidth() as f64 - base) / base * 100.0;
        let cut = if plain.pred_overhead_noncomm > 0 {
            1.0 - filtered.pred_overhead_noncomm as f64 / plain.pred_overhead_noncomm as f64
        } else {
            0.0
        };
        plain_bw.push(p);
        filt_bw.push(f);
        waste_cut.push(cut);
        println!(
            "{:<14} {:>8.1}% {:>8.1}% {:>9.1}% {:>10} {:>8.1}%",
            d.benchmark,
            p,
            f,
            cut * 100.0,
            filtered.filtered_predictions,
            filtered.accuracy() * 100.0,
        );
    }
    println!("----------------------------------------------------------------");
    println!(
        "the filter removes {:.0}% of the non-communicating prediction waste\n\
         (paper estimates ~75% detectable), cutting SP's bandwidth overhead\n\
         from {:+.1}% to {:+.1}% without touching accuracy.",
        mean(waste_cut) * 100.0,
        mean(plain_bw),
        mean(filt_bw),
    );
}
