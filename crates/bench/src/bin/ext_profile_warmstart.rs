//! Extension: off-line profiling warm start (§5.2's suggestion that the
//! gap to ideal accuracy "may be bridged somewhat if off-line profiling
//! offers initial prediction information"). A profiling run records each
//! epoch's first-instance hot set; the production run pre-seeds the
//! SP-tables with them.

use spcp_bench::{header, mean, CORES, SEED};
use spcp_system::{CmpSystem, MachineConfig, OracleBook, PredictorKind, ProtocolKind, RunConfig};
use spcp_workloads::suite;

fn main() {
    header(
        "Extension: profiling warm start (§5.2)",
        "SP accuracy cold vs profile-seeded vs ideal",
    );
    println!(
        "{:<14} {:>8} {:>8} {:>8}",
        "benchmark", "cold", "warm", "ideal"
    );
    let machine = MachineConfig::paper_16core();
    let mut cold_a = Vec::new();
    let mut warm_a = Vec::new();
    let mut ideal_a = Vec::new();
    for spec in suite::all() {
        let w = spec.generate(CORES, SEED);
        let rec = CmpSystem::run_workload(
            &w,
            &RunConfig::new(machine.clone(), ProtocolKind::Directory).recording(),
        );
        let book = OracleBook::from_records(&rec.epoch_records, 0.10);
        let cold = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine.clone(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            ),
        );
        let warm = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine.clone(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            )
            .with_warm_start(book.clone()),
        );
        let ideal = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine.clone(),
                ProtocolKind::Predicted(PredictorKind::Oracle(book)),
            ),
        );
        cold_a.push(cold.accuracy());
        warm_a.push(warm.accuracy());
        ideal_a.push(ideal.accuracy());
        println!(
            "{:<14} {:>7.1}% {:>7.1}% {:>7.1}%",
            spec.name,
            cold.accuracy() * 100.0,
            warm.accuracy() * 100.0,
            ideal.accuracy() * 100.0,
        );
    }
    println!("----------------------------------------------------------------");
    let (c, w, i) = (mean(cold_a), mean(warm_a), mean(ideal_a));
    println!(
        "averages: cold {:.1}%, warm {:.1}%, ideal {:.1}% — profiling closes\n\
         {:.0}% of the cold-to-ideal gap, as §5.2 anticipates.",
        c * 100.0,
        w * 100.0,
        i * 100.0,
        if i > c {
            (w - c) / (i - c) * 100.0
        } else {
            0.0
        },
    );
}
