//! Figure 1: ratio of communicating vs non-communicating misses.

use spcp_bench::{bar, header, mean, run_suite};
use spcp_system::ProtocolKind;

fn main() {
    header(
        "Figure 1",
        "Ratio of communicating misses (baseline directory protocol)",
    );
    println!(
        "{:<14} {:>10} {:>10}  communicating-miss ratio",
        "benchmark", "measured", "paper"
    );
    let stats = run_suite(ProtocolKind::Directory, false);
    let specs = spcp_workloads::suite::all();
    for (s, spec) in stats.iter().zip(&specs) {
        println!(
            "{:<14} {:>9.1}% {:>9.1}%  {}",
            s.benchmark,
            s.comm_ratio() * 100.0,
            spec.paper_comm_ratio * 100.0,
            bar(s.comm_ratio(), 40)
        );
    }
    let avg = mean(stats.iter().map(|s| s.comm_ratio()));
    println!("----------------------------------------------------------------");
    println!(
        "{:<14} {:>9.1}%      62.0%   (paper reports 62% on average)",
        "average",
        avg * 100.0,
    );
}
