//! Figure 4: average communication locality at three tracking
//! granularities — sync-epoch, whole execution ("single-interval"), and
//! static instruction.

use spcp_bench::{header, run};
use spcp_system::{ProtocolKind, RunStats};
use spcp_workloads::suite;

/// Volume-weighted average cumulative coverage of the top-k targets over a
/// set of distributions.
fn avg_coverage(dists: &[Vec<u64>], k: usize) -> f64 {
    let mut covered = 0u64;
    let mut total = 0u64;
    for d in dists {
        let mut v = d.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        covered += v.iter().take(k).sum::<u64>();
        total += v.iter().sum::<u64>();
    }
    if total == 0 {
        0.0
    } else {
        covered as f64 / total as f64
    }
}

/// Per-granularity target-volume distributions: one `Vec<u64>` per tracked
/// entity (epoch instance / core / static pc).
type Distributions = Vec<Vec<u64>>;

fn granularity_distributions(stats: &RunStats) -> (Distributions, Distributions, Distributions) {
    // Sync-epoch granularity: one distribution per (core, epoch instance).
    let epoch: Vec<Vec<u64>> = stats
        .epoch_records
        .iter()
        .flatten()
        .filter(|r| r.total_volume() > 0)
        .map(|r| r.volumes.iter().map(|&x| x as u64).collect())
        .collect();
    // Single-interval granularity: one distribution per core (whole run).
    let whole: Vec<Vec<u64>> = stats.comm_matrix.rows().map(|r| r.to_vec()).collect();
    // Static-instruction granularity: one distribution per load/store PC.
    let inst: Vec<Vec<u64>> = stats.pc_volumes.values().cloned().collect();
    (epoch, whole, inst)
}

fn main() {
    header(
        "Figure 4",
        "Cumulative communication locality: sync-epoch vs whole-interval vs static-instruction granularity",
    );
    for name in ["bodytrack", "fmm", "water-ns"] {
        let spec = suite::by_name(name).expect("known benchmark");
        let stats = run(&spec, ProtocolKind::Directory, true);
        let (epoch, whole, inst) = granularity_distributions(&stats);
        println!("\n{name}: % of communication volume covered by k cores");
        println!(
            "{:>4} {:>12} {:>16} {:>14}",
            "k", "sync-epoch", "single-interval", "static-instr"
        );
        for k in 1..=16 {
            println!(
                "{:>4} {:>11.1}% {:>15.1}% {:>13.1}%",
                k,
                avg_coverage(&epoch, k) * 100.0,
                avg_coverage(&whole, k) * 100.0,
                avg_coverage(&inst, k) * 100.0,
            );
        }
        let e1 = avg_coverage(&epoch, 2);
        let w1 = avg_coverage(&whole, 2);
        println!(
            "shape check: sync-epoch coverage at k=2 ({:.1}%) should exceed single-interval ({:.1}%): {}",
            e1 * 100.0,
            w1 * 100.0,
            if e1 > w1 { "OK" } else { "MISMATCH" }
        );
    }
}
