//! Extension: MESIF vs plain MESI. §4.5 claims the prediction engine
//! integrates into any directory protocol; this harness runs the study on
//! plain MESI (no clean cache-to-cache forwarding) and quantifies how much
//! of the opportunity the F state creates.

use spcp_bench::{header, mean, CORES, SEED};
use spcp_system::{
    CmpSystem, CoherenceVariant, MachineConfig, PredictorKind, ProtocolKind, RunConfig,
};
use spcp_workloads::suite;

fn main() {
    header(
        "Extension: protocol variant (MESIF vs plain MESI)",
        "Communicating-miss opportunity and SP's gain without clean forwarding",
    );
    println!(
        "{:<9} {:>11} {:>12} {:>13} {:>13}",
        "variant", "comm ratio", "SP accuracy", "latency gain", "exec gain"
    );
    for (label, variant) in [
        ("MESIF", CoherenceVariant::Mesif),
        ("MESI", CoherenceVariant::Mesi),
    ] {
        let mut machine = MachineConfig::paper_16core();
        machine.variant = variant;
        let mut ratios = Vec::new();
        let mut accs = Vec::new();
        let mut lat = Vec::new();
        let mut exec = Vec::new();
        for spec in suite::all() {
            let w = spec.generate(CORES, SEED);
            let dir = CmpSystem::run_workload(
                &w,
                &RunConfig::new(machine.clone(), ProtocolKind::Directory),
            );
            let sp = CmpSystem::run_workload(
                &w,
                &RunConfig::new(
                    machine.clone(),
                    ProtocolKind::Predicted(PredictorKind::sp_default()),
                ),
            );
            ratios.push(dir.comm_ratio());
            accs.push(sp.accuracy());
            lat.push(1.0 - sp.miss_latency.mean() / dir.miss_latency.mean());
            exec.push(1.0 - sp.exec_cycles as f64 / dir.exec_cycles as f64);
        }
        println!(
            "{:<9} {:>10.1}% {:>11.1}% {:>12.1}% {:>12.1}%",
            label,
            mean(ratios) * 100.0,
            mean(accs) * 100.0,
            mean(lat) * 100.0,
            mean(exec) * 100.0,
        );
    }
    println!("----------------------------------------------------------------");
    println!("Expected: MESI turns clean cache-to-cache reads into memory");
    println!("accesses, shrinking the communicating fraction and with it the");
    println!("prediction opportunity — quantifying why the paper's baseline");
    println!("is MESIF. SP still works unchanged on the MESI machine.");
}
