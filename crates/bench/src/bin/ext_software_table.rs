//! Extension: hardware vs software SP-table (§4.6). A software table traps
//! to the OS on every sync-point; the paper argues the choice "has no
//! significant performance implications" for coarse-grain synchronization
//! but that hardware is preferable when epochs are short (fine-grain
//! locking). This harness sweeps the per-sync trap cost.

use spcp_bench::{header, CORES, SEED};
use spcp_system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
use spcp_workloads::suite;

fn main() {
    header(
        "Extension: software SP-table (§4.6)",
        "Execution-time cost of trapping on every sync-point",
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12}   (exec time vs hardware table)",
        "benchmark", "trap=100", "trap=300", "trap=1000"
    );
    for name in ["facesim", "fft", "water-ns", "fluidanimate", "radiosity"] {
        let spec = suite::by_name(name).expect("known benchmark");
        let w = spec.generate(CORES, SEED);
        let base = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                MachineConfig::paper_16core(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            ),
        );
        let mut row = format!("{name:<14}");
        for trap in [100u64, 300, 1000] {
            let mut machine = MachineConfig::paper_16core();
            machine.sync_trap_cost = trap;
            let s = CmpSystem::run_workload(
                &w,
                &RunConfig::new(
                    machine,
                    ProtocolKind::Predicted(PredictorKind::sp_default()),
                ),
            );
            row.push_str(&format!(
                " {:>11.1}%",
                (s.exec_cycles as f64 / base.exec_cycles as f64 - 1.0) * 100.0
            ));
        }
        println!("{row}");
    }
    println!("----------------------------------------------------------------");
    println!("Fine-grain-locking benchmarks (water-ns, fluidanimate, radiosity)");
    println!("pay the most — matching §4.6's guidance that a hardware table is");
    println!("appropriate when sync-epochs are short.");
}
