//! Figure 3: static and dynamic sync-points and sync-epochs.
//!
//! The paper's Figure 3 is a diagram of how a program's sync-point sequence
//! produces dynamic IDs and sync-epochs. This harness reproduces it from
//! *data*: it traces one thread of a real workload and renders its sync
//! stream with static IDs, dynamic instance numbers, and the epochs they
//! delimit.

use spcp_bench::{header, CORES, SEED};
use spcp_system::{CmpSystem, MachineConfig, ProtocolKind, RunConfig};
use spcp_trace::TraceEvent;
use spcp_workloads::suite;

fn main() {
    header(
        "Figure 3",
        "Static and dynamic sync-points and sync-epochs (rendered from a bodytrack trace, core 0)",
    );
    let w = suite::bodytrack().generate(CORES, SEED);
    let stats = CmpSystem::run_workload(
        &w,
        &RunConfig::new(MachineConfig::paper_16core(), ProtocolKind::Directory).tracing(),
    );

    println!(
        "{:<28} {:>10}   epoch it begins",
        "sync-point (kind, static)", "dyn inst"
    );
    let mut shown = 0;
    let mut misses_since = 0u64;
    for e in &stats.trace {
        match e {
            TraceEvent::Miss { core, .. } if core.index() == 0 => misses_since += 1,
            TraceEvent::Sync {
                core,
                kind,
                static_id,
                instance,
            } if core.index() == 0 => {
                if shown > 0 {
                    println!(
                        "{:<28} {:>10}   | epoch body: {misses_since} misses",
                        "", ""
                    );
                }
                println!(
                    "{:<28} {:>10}   +-- sync-epoch ({kind}@{static_id}, {instance}) begins",
                    format!("{kind}(sp#{static_id})"),
                    format!("({static_id},{instance})"),
                );
                misses_since = 0;
                shown += 1;
                if shown > 18 {
                    break;
                }
            }
            _ => {}
        }
    }
    println!("...");
    println!("\nReading guide (matches the paper's Figure 3): each sync-point");
    println!("carries a static ID (its call site / lock) and a dynamic ID (its");
    println!("occurrence count); the interval between two consecutive points is");
    println!("a sync-epoch named by its beginning point; a lock...unlock pair");
    println!("brackets a critical-section epoch.");
}
