//! Table 1: sync-epoch statistics of the benchmarks (per-core average).

use spcp_bench::{header, run};
use spcp_system::ProtocolKind;
use spcp_workloads::suite;

/// The paper's Table 1 values for reference: (name, static critical
/// sections, static sync-epochs, total dynamic sync-epochs per core).
const PAPER: [(&str, usize, usize, u64); 18] = [
    ("fmm", 30, 20, 2789),
    ("lu", 7, 5, 185),
    ("ocean", 28, 20, 2685),
    ("radiosity", 34, 12, 17637),
    ("raytrace", 25, 10, 4478),
    ("water-ns", 20, 8, 1224),
    ("cholesky", 28, 27, 1998),
    ("fft", 8, 8, 22),
    ("radix", 8, 4, 35),
    ("water-sp", 17, 1, 83),
    ("bodytrack", 16, 20, 456),
    ("fluidanimate", 11, 20, 8991),
    ("streamcluster", 1, 24, 11454),
    ("vips", 14, 8, 419),
    ("facesim", 2, 3, 3826),
    ("ferret", 4, 6, 25),
    ("dedup", 3, 4, 508),
    ("x264", 2, 3, 56),
];

fn main() {
    header("Table 1", "Sync-epoch statistics (per-core average)");
    println!(
        "{:<14} {:>8} {:>8} | {:>8} {:>8} | {:>10} {:>10}",
        "benchmark", "statCS", "paper", "statEp", "paper", "dynEp/core", "paper(raw)"
    );
    for (name, p_cs, p_se, p_dyn) in PAPER {
        let spec = suite::by_name(name).expect("suite covers Table 1");
        // Measure the dynamic counts from an actual recorded run.
        let stats = run(&spec, ProtocolKind::Directory, true);
        let dyn_per_core = stats
            .epoch_records
            .iter()
            .map(|r| r.len() as u64)
            .sum::<u64>()
            / stats.epoch_records.len().max(1) as u64;
        println!(
            "{:<14} {:>8} {:>8} | {:>8} {:>8} | {:>10} {:>10}",
            name,
            spec.static_critical_sections(),
            p_cs,
            spec.static_epochs(),
            p_se,
            dyn_per_core,
            p_dyn,
        );
    }
    println!("----------------------------------------------------------------");
    println!("dynamic instance counts are intentionally scaled down (~50x,");
    println!("capped ~120/core) to keep runs fast; statics match Table 1.");
}
