//! Figure 9: additional bandwidth demands of SP-prediction relative to the
//! base directory protocol, split by communicating vs non-communicating
//! misses.
//!
//! Runs the whole three-protocol matrix through the `spcp-harness` sweep
//! engine; pass `--jobs N` to bound the worker count.

use spcp_bench::{header, mean, sweep_dir_bc_sp};

fn main() {
    header(
        "Figure 9",
        "Additional NoC bandwidth of SP-prediction vs base directory (byte-hops)",
    );
    let result = sweep_dir_bc_sp(false);
    let dir = result.by_protocol("dir");
    let sp = result.by_protocol("sp");
    let bc = result.by_protocol("bc");
    println!(
        "{:<14} {:>8} {:>9} {:>9} {:>12}",
        "benchmark", "total", "comm", "non-comm", "(broadcast)"
    );
    let mut totals = Vec::new();
    let mut noncomm_share = Vec::new();
    let mut vs_broadcast = Vec::new();
    for ((d, s), b) in dir.iter().zip(&sp).zip(&bc) {
        let base = d.stats.bandwidth() as f64;
        let add = (s.stats.bandwidth() as f64 - base) / base * 100.0;
        let oc = s.stats.pred_overhead_comm as f64 / base * 100.0;
        let on = s.stats.pred_overhead_noncomm as f64 / base * 100.0;
        let bc_add = (b.stats.bandwidth() as f64 - base) / base * 100.0;
        totals.push(add);
        if oc + on > 0.0 {
            noncomm_share.push(on / (oc + on));
        }
        // The broadcast comparison is on *request* (control) traffic, which
        // is what snoop probes multiply; data responses flow either way.
        let ctrl_base = d.stats.noc.ctrl_byte_hops as f64;
        let sp_ctrl_add = s.stats.noc.ctrl_byte_hops as f64 - ctrl_base;
        let bc_ctrl_add = b.stats.noc.ctrl_byte_hops as f64 - ctrl_base;
        if bc_ctrl_add > 0.0 {
            vs_broadcast.push((sp_ctrl_add / bc_ctrl_add).max(0.0));
        }
        println!(
            "{:<14} {:>7.1}% {:>8.1}% {:>8.1}% {:>11.1}%",
            d.stats.benchmark, add, oc, on, bc_add
        );
    }
    println!("----------------------------------------------------------------");
    println!(
        "average additional bandwidth: {:+.1}% (paper: +18%); non-communicating\n\
         attempts cause {:.0}% of the prediction overhead (paper: ~70%);\n\
         SP adds {:.0}% of the extra *request* traffic broadcasting would add\n\
         (paper: <10%)",
        mean(totals),
        mean(noncomm_share) * 100.0,
        mean(vs_broadcast) * 100.0,
    );
}
