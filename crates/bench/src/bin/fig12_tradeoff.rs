//! Figure 12: the latency/bandwidth trade-off plane — % of misses
//! incurring indirection (y) vs % additional request bandwidth per miss
//! (x) — for SP, ADDR, INST and UNI with unlimited tables.

use spcp_bench::{header, run};
use spcp_system::{PredictorKind, ProtocolKind, RunStats};
use spcp_workloads::suite;

fn predictors() -> Vec<(&'static str, PredictorKind)> {
    vec![
        ("SP", PredictorKind::sp_default()),
        (
            "ADDR",
            PredictorKind::Addr {
                entries: None,
                macroblock_bytes: 256,
            },
        ),
        ("INST", PredictorKind::Inst { entries: None }),
        ("UNI", PredictorKind::Uni),
    ]
}

fn point(s: &RunStats, base_bw: f64) -> (f64, f64) {
    let x = (s.bandwidth() as f64 - base_bw) / base_bw * 100.0;
    let y = s.indirection_ratio() * 100.0;
    (x, y)
}

fn main() {
    header(
        "Figure 12",
        "Latency/bandwidth trade-off (lower-left corner is best)",
    );
    for name in ["fmm", "ocean", "fluidanimate", "dedup"] {
        let spec = suite::by_name(name).expect("known benchmark");
        let dir = run(&spec, ProtocolKind::Directory, false);
        let base_bw = dir.bandwidth() as f64;
        println!(
            "\n{name}:  ({:.1}% of misses communicate)",
            dir.comm_ratio() * 100.0
        );
        println!(
            "{:<10} {:>14} {:>18} {:>12}",
            "scheme", "+bandwidth", "% indirections", "storage(KB)"
        );
        println!(
            "{:<10} {:>13.1}% {:>17.1}% {:>12}",
            "Directory",
            0.0,
            dir.indirection_ratio() * 100.0,
            0
        );
        for (label, kind) in predictors() {
            let s = run(&spec, ProtocolKind::Predicted(kind), false);
            let (x, y) = point(&s, base_bw);
            println!(
                "{:<10} {:>13.1}% {:>17.1}% {:>12.2}",
                label,
                x,
                y,
                s.predictor_storage_bits as f64 / 8.0 / 1024.0
            );
        }
    }
    println!("\nExpected shape (paper): all predictors land far below the");
    println!("directory point; SP is comparable to ADDR/INST at far lower");
    println!("storage; UNI is cheapest but least accurate.");
}
