//! Extension: compute intensity. The synthetic models pack memory
//! accesses back to back, which maximizes NoC pressure; real programs put
//! tens of non-memory instructions between accesses. This harness sweeps
//! the work-per-access knob to show how the protocol gaps respond to
//! offered load.

use spcp_bench::{header, mean, CORES, SEED};
use spcp_system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
use spcp_workloads::suite;

fn main() {
    header(
        "Extension: compute intensity",
        "Protocol gaps vs non-memory work between accesses (suite subset)",
    );
    println!(
        "{:<14} {:>12} {:>12} {:>14}",
        "work/access", "NoC queuing", "SP lat gain", "SP exec gain"
    );
    for work in [0u32, 8, 32] {
        let mut queuing = Vec::new();
        let mut lat = Vec::new();
        let mut exec = Vec::new();
        for name in ["x264", "ocean", "water-ns"] {
            let mut spec = suite::by_name(name).expect("known");
            for phase in &mut spec.phases {
                for e in &mut phase.epochs {
                    e.work_per_access = work;
                }
            }
            let w = spec.generate(CORES, SEED);
            let machine = MachineConfig::paper_16core();
            let dir = CmpSystem::run_workload(
                &w,
                &RunConfig::new(machine.clone(), ProtocolKind::Directory),
            );
            let sp = CmpSystem::run_workload(
                &w,
                &RunConfig::new(
                    machine,
                    ProtocolKind::Predicted(PredictorKind::sp_default()),
                ),
            );
            queuing.push(dir.noc.contention_cycles as f64 / dir.l2_misses.max(1) as f64);
            lat.push(1.0 - sp.miss_latency.mean() / dir.miss_latency.mean());
            exec.push(1.0 - sp.exec_cycles as f64 / dir.exec_cycles as f64);
        }
        println!(
            "{:<14} {:>10.1}c/m {:>11.1}% {:>13.1}%",
            work,
            mean(queuing),
            mean(lat) * 100.0,
            mean(exec) * 100.0,
        );
    }
    println!("----------------------------------------------------------------");
    println!("Expected: more compute between accesses thins the offered load,");
    println!("shrinking queuing; SP's latency gain persists (it removes");
    println!("indirection hops, not queuing), while its execution-time gain");
    println!("dilutes as memory time becomes a smaller share of the run.");
}
