//! Figure 7: SP-prediction accuracy — the percentage of communicating
//! misses that avoid indirection to the directory, broken down by the
//! policy that produced the prediction, plus the ideal (a priori hot set)
//! marker.

use spcp_bench::{header, mean, run, CORES, SEED};
use spcp_system::{CmpSystem, MachineConfig, OracleBook, PredictorKind, ProtocolKind, RunConfig};
use spcp_workloads::suite;

fn main() {
    header(
        "Figure 7",
        "SP-prediction accuracy (% of communicating misses avoiding indirection)",
    );
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} | {:>7} {:>7}",
        "benchmark", "d=0", "hist", "lock", "recov", "total", "ideal"
    );
    let mut totals = Vec::new();
    let mut ideals = Vec::new();
    for spec in suite::all() {
        // SP run.
        let sp = run(
            &spec,
            ProtocolKind::Predicted(PredictorKind::sp_default()),
            false,
        );
        let comm = sp.comm_misses.max(1) as f64;
        let s = sp.sp.expect("SP run aggregates SpStats");
        let pct = |x: u64| x as f64 / comm * 100.0;

        // Ideal: oracle replay of the recorded per-instance hot sets.
        let w = spec.generate(CORES, SEED);
        let rec = CmpSystem::run_workload(
            &w,
            &RunConfig::new(MachineConfig::paper_16core(), ProtocolKind::Directory).recording(),
        );
        let book = OracleBook::from_records(&rec.epoch_records, 0.10);
        let oracle = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                MachineConfig::paper_16core(),
                ProtocolKind::Predicted(PredictorKind::Oracle(book)),
            ),
        );

        println!(
            "{:<14} {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% | {:>6.1}% {:>6.1}%",
            sp.benchmark,
            pct(s.correct_d0),
            pct(s.correct_history),
            pct(s.correct_lock),
            pct(s.correct_recovery),
            sp.accuracy() * 100.0,
            oracle.accuracy() * 100.0,
        );
        totals.push(sp.accuracy());
        ideals.push(oracle.accuracy());
    }
    println!("----------------------------------------------------------------");
    println!(
        "{:<14} {:>34} {:>6.1}% {:>6.1}%",
        "average",
        "",
        mean(totals) * 100.0,
        mean(ideals) * 100.0
    );
    println!("(paper: 77% average; best x264 ~98%, worst radiosity ~59%;");
    println!(" history-based stacks ~40%, recovery ~9% on average)");
}
