//! Extension: the §5.5 thread-migration scenario. When threads move
//! between cores, physical-target signatures go stale; tracking logical
//! thread IDs and translating through the current mapping recovers the
//! accuracy.
//!
//! Runs as one harness matrix (benchmarks × one SP protocol × three
//! migration variants) fanned across `--jobs` workers.

use spcp_bench::{header, jobs_arg, mean, run_matrix, StreamOpts, SEED};
use spcp_harness::RunMatrix;
use spcp_system::{PredictorKind, ProtocolKind};
use spcp_workloads::suite;

const BENCHES: [&str; 5] = ["facesim", "water-sp", "x264", "ocean", "fluidanimate"];

fn main() {
    header(
        "Extension: thread migration (§5.5)",
        "SP accuracy pinned vs migrating (physical-ID vs logical-ID signatures)",
    );
    let mut matrix = RunMatrix::new()
        .protocol("sp", ProtocolKind::Predicted(PredictorKind::sp_default()))
        .variant("pinned", 0, 0, false)
        .variant("migr-phys", 10, 1, false)
        .variant("migr-log", 10, 1, true);
    for name in BENCHES {
        matrix = matrix.bench(suite::by_name(name).expect("known benchmark"));
    }
    let result = run_matrix(&matrix, jobs_arg(), &StreamOpts::from_env_args());

    println!(
        "{:<14} {:>9} {:>13} {:>13}",
        "benchmark", "pinned", "migr+physID", "migr+logID"
    );
    let mut pinned_a = Vec::new();
    let mut phys_a = Vec::new();
    let mut log_a = Vec::new();
    for name in BENCHES {
        let get = |variant: &str| {
            &result
                .get_variant(name, "sp", SEED, variant)
                .expect("run present in matrix")
                .stats
        };
        let pinned = get("pinned");
        let physical = get("migr-phys");
        let logical = get("migr-log");
        pinned_a.push(pinned.accuracy());
        phys_a.push(physical.accuracy());
        log_a.push(logical.accuracy());
        println!(
            "{:<14} {:>8.1}% {:>12.1}% {:>12.1}%   ({} migrations)",
            name,
            pinned.accuracy() * 100.0,
            physical.accuracy() * 100.0,
            logical.accuracy() * 100.0,
            physical.migrations,
        );
    }
    println!("----------------------------------------------------------------");
    println!(
        "averages: pinned {:.1}%, migrating w/ physical IDs {:.1}%, migrating\n\
         w/ logical IDs {:.1}% — logical tracking recovers {:.0}% of the loss.",
        mean(pinned_a.clone()) * 100.0,
        mean(phys_a.clone()) * 100.0,
        mean(log_a.clone()) * 100.0,
        {
            let lost = mean(pinned_a.clone()) - mean(phys_a.clone());
            let regained = mean(log_a) - mean(phys_a);
            if lost > 0.0 {
                regained / lost * 100.0
            } else {
                100.0
            }
        },
    );
}
