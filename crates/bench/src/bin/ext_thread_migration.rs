//! Extension: the §5.5 thread-migration scenario. When threads move
//! between cores, physical-target signatures go stale; tracking logical
//! thread IDs and translating through the current mapping recovers the
//! accuracy.

use spcp_bench::{header, mean, CORES, SEED};
use spcp_system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
use spcp_workloads::suite;

fn main() {
    header(
        "Extension: thread migration (§5.5)",
        "SP accuracy pinned vs migrating (physical-ID vs logical-ID signatures)",
    );
    println!(
        "{:<14} {:>9} {:>13} {:>13}",
        "benchmark", "pinned", "migr+physID", "migr+logID"
    );
    let mut pinned_a = Vec::new();
    let mut phys_a = Vec::new();
    let mut log_a = Vec::new();
    for name in ["facesim", "water-sp", "x264", "ocean", "fluidanimate"] {
        let spec = suite::by_name(name).expect("known benchmark");
        let w = spec.generate(CORES, SEED);
        let machine = MachineConfig::paper_16core();
        let base = RunConfig::new(
            machine,
            ProtocolKind::Predicted(PredictorKind::sp_default()),
        );
        let pinned = CmpSystem::run_workload(&w, &base);
        let physical = CmpSystem::run_workload(&w, &base.clone().with_migration(10, 1, false));
        let logical = CmpSystem::run_workload(&w, &base.clone().with_migration(10, 1, true));
        pinned_a.push(pinned.accuracy());
        phys_a.push(physical.accuracy());
        log_a.push(logical.accuracy());
        println!(
            "{:<14} {:>8.1}% {:>12.1}% {:>12.1}%   ({} migrations)",
            name,
            pinned.accuracy() * 100.0,
            physical.accuracy() * 100.0,
            logical.accuracy() * 100.0,
            physical.migrations,
        );
    }
    println!("----------------------------------------------------------------");
    println!(
        "averages: pinned {:.1}%, migrating w/ physical IDs {:.1}%, migrating\n\
         w/ logical IDs {:.1}% — logical tracking recovers {:.0}% of the loss.",
        mean(pinned_a.clone()) * 100.0,
        mean(phys_a.clone()) * 100.0,
        mean(log_a.clone()) * 100.0,
        {
            let lost = mean(pinned_a.clone()) - mean(phys_a.clone());
            let regained = mean(log_a) - mean(phys_a);
            if lost > 0.0 {
                regained / lost * 100.0
            } else {
                100.0
            }
        },
    );
}
