//! Ablation: destination-set policies (group vs owner vs group/owner, the
//! §5.4 footnote) for the comparison predictors, plus SP's hot-set size
//! bound as its equivalent knob.

use spcp_baselines::SetPolicy;
use spcp_bench::{header, mean, CORES, SEED};
use spcp_core::SpConfig;
use spcp_system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
use spcp_workloads::suite;

const BENCHES: [&str; 4] = ["fmm", "ocean", "water-ns", "dedup"];

fn sweep(label: &str, kind: PredictorKind, policy: SetPolicy) {
    let mut accs = Vec::new();
    let mut bws = Vec::new();
    for name in BENCHES {
        let spec = suite::by_name(name).expect("known benchmark");
        let w = spec.generate(CORES, SEED);
        let machine = MachineConfig::paper_16core();
        let dir = CmpSystem::run_workload(
            &w,
            &RunConfig::new(machine.clone(), ProtocolKind::Directory),
        );
        let s = CmpSystem::run_workload(
            &w,
            &RunConfig::new(machine, ProtocolKind::Predicted(kind.clone())).with_set_policy(policy),
        );
        accs.push(s.accuracy() * 100.0);
        bws.push((s.bandwidth() as f64 - dir.bandwidth() as f64) / dir.bandwidth() as f64 * 100.0);
    }
    println!(
        "{:<30} accuracy {:>5.1}%   +bandwidth {:>5.1}%",
        label,
        mean(accs),
        mean(bws)
    );
}

fn main() {
    header(
        "Ablation: destination-set policies (§5.4 footnote)",
        "group vs owner vs group/owner, 4-benchmark averages",
    );
    let addr = PredictorKind::Addr {
        entries: None,
        macroblock_bytes: 256,
    };
    let inst = PredictorKind::Inst { entries: None };

    for (name, kind) in [("ADDR", addr), ("INST", inst), ("UNI", PredictorKind::Uni)] {
        println!("\n{name}:");
        for (plabel, policy) in [
            ("group", SetPolicy::Group),
            ("owner", SetPolicy::Owner),
            ("group/owner", SetPolicy::GroupOwner),
        ] {
            sweep(&format!("  {plabel}"), kind.clone(), policy);
        }
    }

    println!("\nSP (hot-set size bound as the equivalent knob):");
    for (label, cap) in [("group (unbounded)", None), ("owner-like (cap 1)", Some(1))] {
        sweep(
            &format!("  {label}"),
            PredictorKind::Sp(SpConfig {
                max_hot_set: cap,
                ..SpConfig::default()
            }),
            SetPolicy::Group,
        );
    }

    println!("----------------------------------------------------------------");
    println!("Expected (Martin et al. / §5.4): owner policies trade accuracy on");
    println!("multi-target writes for lower bandwidth; group/owner recovers most");
    println!("accuracy at intermediate cost.");
}
