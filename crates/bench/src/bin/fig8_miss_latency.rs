//! Figure 8: average miss latency of directory, broadcast and
//! SP-prediction, normalized to the directory protocol.

use spcp_bench::{header, mean, run_suite};
use spcp_system::{PredictorKind, ProtocolKind};

fn main() {
    header("Figure 8", "Average miss latency (normalized to base directory)");
    let dir = run_suite(ProtocolKind::Directory, false);
    let bc = run_suite(ProtocolKind::Broadcast, false);
    let sp = run_suite(ProtocolKind::Predicted(PredictorKind::sp_default()), false);
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "benchmark", "directory", "broadcast", "SP"
    );
    let mut bc_n = Vec::new();
    let mut sp_n = Vec::new();
    for ((d, b), s) in dir.iter().zip(&bc).zip(&sp) {
        let base = d.miss_latency.mean();
        let nb = b.miss_latency.mean() / base;
        let ns = s.miss_latency.mean() / base;
        bc_n.push(nb);
        sp_n.push(ns);
        println!("{:<14} {:>10.3} {:>10.3} {:>10.3}", d.benchmark, 1.0, nb, ns);
    }
    println!("----------------------------------------------------------------");
    println!(
        "{:<14} {:>10.3} {:>10.3} {:>10.3}",
        "average",
        1.0,
        mean(bc_n.clone()),
        mean(sp_n.clone())
    );
    let sp_gain = 1.0 - mean(sp_n);
    let bc_gain = 1.0 - mean(bc_n);
    println!(
        "SP reduces miss latency by {:.1}% (paper: 13%), attaining {:.0}% of the broadcast gain (paper: up to 75%)",
        sp_gain * 100.0,
        if bc_gain > 0.0 { sp_gain / bc_gain * 100.0 } else { 0.0 }
    );
}
