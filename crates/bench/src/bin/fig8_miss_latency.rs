//! Figure 8: average miss latency of directory, broadcast and
//! SP-prediction, normalized to the directory protocol.
//!
//! Runs the whole three-protocol matrix through the `spcp-harness` sweep
//! engine; pass `--jobs N` to bound the worker count.

use spcp_bench::{header, mean, sweep_dir_bc_sp};

fn main() {
    header(
        "Figure 8",
        "Average miss latency (normalized to base directory)",
    );
    let result = sweep_dir_bc_sp(false);
    let dir = result.by_protocol("dir");
    let bc = result.by_protocol("bc");
    let sp = result.by_protocol("sp");
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "benchmark", "directory", "broadcast", "SP"
    );
    let mut bc_n = Vec::new();
    let mut sp_n = Vec::new();
    for ((d, b), s) in dir.iter().zip(&bc).zip(&sp) {
        let base = d.stats.miss_latency.mean();
        let nb = b.stats.miss_latency.mean() / base;
        let ns = s.stats.miss_latency.mean() / base;
        bc_n.push(nb);
        sp_n.push(ns);
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>10.3}",
            d.stats.benchmark, 1.0, nb, ns
        );
    }
    println!("----------------------------------------------------------------");
    println!(
        "{:<14} {:>10.3} {:>10.3} {:>10.3}",
        "average",
        1.0,
        mean(bc_n.clone()),
        mean(sp_n.clone())
    );
    let sp_gain = 1.0 - mean(sp_n);
    let bc_gain = 1.0 - mean(bc_n);
    println!(
        "SP reduces miss latency by {:.1}% (paper: 13%), attaining {:.0}% of the broadcast gain (paper: up to 75%)",
        sp_gain * 100.0,
        if bc_gain > 0.0 { sp_gain / bc_gain * 100.0 } else { 0.0 }
    );
}
