//! Table 5: average actual vs predicted target-set size per request.

use spcp_bench::{header, mean, run_suite};
use spcp_system::{PredictorKind, ProtocolKind};

fn main() {
    header("Table 5", "Average actual and predicted target set size");
    println!(
        "{:<14} {:>10} {:>12} {:>8}",
        "benchmark", "actual/req", "predicted/req", "ratio"
    );
    let all = run_suite(ProtocolKind::Predicted(PredictorKind::sp_default()), false);
    let mut ratios = Vec::new();
    for s in &all {
        let actual = s.mean_actual_set().max(1.0); // reads dominate: >= 1
        let predicted = s.mean_predicted_set();
        let ratio = if actual > 0.0 {
            predicted / actual
        } else {
            0.0
        };
        ratios.push(ratio);
        println!(
            "{:<14} {:>10.2} {:>12.2} {:>8.2}",
            s.benchmark,
            s.mean_actual_set(),
            predicted,
            ratio
        );
    }
    println!("----------------------------------------------------------------");
    println!(
        "mean predicted/actual ratio: {:.2}  (paper: 1.13–3.71 per benchmark,",
        mean(ratios)
    );
    println!(" actual close to 1 because reads dominate)");
}
