//! Extension: workload input-size sensitivity. The paper states (end of
//! §5.3) that "sensitivity analysis of cache parameters and workload input
//! sizes (not reported in this work) have shown expected observations and
//! trends"; this harness regenerates the input-size half: larger inputs
//! mean more dynamic instances per epoch, so history-based prediction
//! amortizes its warm-up and accuracy rises toward the ideal.
//!
//! Each scale factor is one `spcp-harness` matrix (scaled specs keep
//! their benchmark name, so factors cannot share one); pass `--jobs N`
//! to bound the worker pool.

use spcp_bench::{header, jobs_arg, mean, run_matrix, StreamOpts, SEED};
use spcp_harness::RunMatrix;
use spcp_system::{PredictorKind, ProtocolKind};
use spcp_workloads::suite;

// Benchmarks with modest repetition, where more instances help.
const BENCHES: [&str; 3] = ["bodytrack", "vips", "cholesky"];

fn main() {
    header(
        "Extension: input-size sensitivity",
        "SP accuracy and gains vs input scale (dynamic instances per epoch)",
    );
    println!(
        "{:<8} {:>12} {:>12} {:>14}",
        "scale", "dyn ep/core", "SP accuracy", "SP lat gain"
    );
    let jobs = jobs_arg();
    // Each scale factor is its own matrix, so each gets its own spool
    // subdirectory under --out.
    let opts = StreamOpts::from_env_args();
    for factor in [1u32, 2, 4] {
        let specs: Vec<_> = BENCHES
            .iter()
            .map(|n| suite::scaled(suite::by_name(n).expect("known"), factor))
            .collect();
        let dyns: Vec<f64> = specs
            .iter()
            .map(|s| s.dynamic_epochs_per_core() as f64)
            .collect();
        let matrix = RunMatrix::new()
            .benches(specs)
            .protocol("dir", ProtocolKind::Directory)
            .protocol("sp", ProtocolKind::Predicted(PredictorKind::sp_default()));
        let result = run_matrix(&matrix, jobs, &opts.subdir(&format!("scale{factor}")));
        let mut accs = Vec::new();
        let mut gains = Vec::new();
        for name in BENCHES {
            let dir = &result.get(name, "dir", SEED).expect("dir run").stats;
            let sp = &result.get(name, "sp", SEED).expect("sp run").stats;
            accs.push(sp.accuracy());
            gains.push(1.0 - sp.miss_latency.mean() / dir.miss_latency.mean());
        }
        println!(
            "{:<8} {:>12.0} {:>11.1}% {:>13.1}%",
            format!("{factor}x"),
            mean(dyns),
            mean(accs) * 100.0,
            mean(gains) * 100.0,
        );
    }
    println!("----------------------------------------------------------------");
    println!("Expected: accuracy rises with input scale as every static epoch");
    println!("accumulates history (the first instance of each epoch is the");
    println!("unavoidable warm-up cost, amortized over more instances).");
}
