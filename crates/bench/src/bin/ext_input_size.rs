//! Extension: workload input-size sensitivity. The paper states (end of
//! §5.3) that "sensitivity analysis of cache parameters and workload input
//! sizes (not reported in this work) have shown expected observations and
//! trends"; this harness regenerates the input-size half: larger inputs
//! mean more dynamic instances per epoch, so history-based prediction
//! amortizes its warm-up and accuracy rises toward the ideal.

use spcp_bench::{header, mean, CORES, SEED};
use spcp_system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
use spcp_workloads::suite;

fn main() {
    header(
        "Extension: input-size sensitivity",
        "SP accuracy and gains vs input scale (dynamic instances per epoch)",
    );
    println!(
        "{:<8} {:>12} {:>12} {:>14}",
        "scale", "dyn ep/core", "SP accuracy", "SP lat gain"
    );
    for factor in [1u32, 2, 4] {
        let mut accs = Vec::new();
        let mut gains = Vec::new();
        let mut dyns = Vec::new();
        for name in ["bodytrack", "vips", "cholesky"] {
            // Benchmarks with modest repetition, where more instances help.
            let spec = suite::scaled(suite::by_name(name).expect("known"), factor);
            dyns.push(spec.dynamic_epochs_per_core() as f64);
            let w = spec.generate(CORES, SEED);
            let machine = MachineConfig::paper_16core();
            let dir = CmpSystem::run_workload(
                &w,
                &RunConfig::new(machine.clone(), ProtocolKind::Directory),
            );
            let sp = CmpSystem::run_workload(
                &w,
                &RunConfig::new(
                    machine,
                    ProtocolKind::Predicted(PredictorKind::sp_default()),
                ),
            );
            accs.push(sp.accuracy());
            gains.push(1.0 - sp.miss_latency.mean() / dir.miss_latency.mean());
        }
        println!(
            "{:<8} {:>12.0} {:>11.1}% {:>13.1}%",
            format!("{factor}x"),
            mean(dyns),
            mean(accs) * 100.0,
            mean(gains) * 100.0,
        );
    }
    println!("----------------------------------------------------------------");
    println!("Expected: accuracy rises with input scale as every static epoch");
    println!("accumulates history (the first instance of each epoch is the");
    println!("unavoidable warm-up cost, amortized over more instances).");
}
