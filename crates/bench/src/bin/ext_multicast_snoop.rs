//! Extension: prediction-driven multicast snooping (the paper's second use
//! case — "in snooping protocols, prediction relaxes the high bandwidth
//! requirements by replacing broadcast with multicast").

use spcp_bench::{header, mean, run_suite};
use spcp_system::{PredictorKind, ProtocolKind};

fn main() {
    header(
        "Extension: multicast snooping",
        "SP-guided multicast vs full broadcast (bandwidth ↓, latency ≈)",
    );
    let bc = run_suite(ProtocolKind::Broadcast, false);
    let mc = run_suite(
        ProtocolKind::MulticastSnoop(PredictorKind::sp_default()),
        false,
    );
    println!(
        "{:<14} {:>10} {:>10} {:>9} {:>10} {:>9}",
        "benchmark", "probes/bc", "probes/mc", "bw save", "lat ratio", "accuracy"
    );
    let mut bw_save = Vec::new();
    let mut lat_ratio = Vec::new();
    let mut probe_save = Vec::new();
    for (b, m) in bc.iter().zip(&mc) {
        let save = 1.0 - m.bandwidth() as f64 / b.bandwidth() as f64;
        let lat = m.miss_latency.mean() / b.miss_latency.mean();
        bw_save.push(save);
        lat_ratio.push(lat);
        probe_save.push(1.0 - m.snoop_probes as f64 / b.snoop_probes as f64);
        println!(
            "{:<14} {:>10} {:>10} {:>8.1}% {:>10.3} {:>8.1}%",
            b.benchmark,
            b.snoop_probes,
            m.snoop_probes,
            save * 100.0,
            lat,
            m.accuracy() * 100.0,
        );
    }
    println!("----------------------------------------------------------------");
    println!(
        "multicast removes {:.1}% of snoop probes and {:.1}% of NoC bandwidth\n\
         on average, at a {:.1}% average miss-latency cost (second-phase\n\
         broadcasts repair insufficient multicasts).",
        mean(probe_save) * 100.0,
        mean(bw_save) * 100.0,
        (mean(lat_ratio) - 1.0) * 100.0,
    );
}
