//! Extension: core-count scaling. The paper's machine is fixed at 16
//! cores; this harness sweeps 4–64 cores (2×2 to 8×8 meshes) to show that
//! SP-prediction's premise — small hot sets bounded by the algorithm, not
//! the machine — scales, while broadcast bandwidth grows with N.
//!
//! All four machine sizes run as one `spcp-harness` matrix; pass
//! `--jobs N` to bound the worker pool.

use spcp_bench::{header, jobs_arg, mean, run_matrix, StreamOpts, SEED};
use spcp_harness::RunMatrix;
use spcp_noc::NocConfig;
use spcp_system::{MachineConfig, PredictorKind, ProtocolKind};
use spcp_workloads::suite;

const MESHES: [(usize, usize, usize); 4] = [(4, 2, 2), (16, 4, 4), (36, 6, 6), (64, 8, 8)];
// Three representative benchmarks across pattern classes.
const BENCHES: [&str; 3] = ["x264", "ocean", "fluidanimate"];

fn main() {
    header(
        "Extension: core-count scaling",
        "SP accuracy, predicted-set size and broadcast cost vs machine size",
    );
    let mut matrix = RunMatrix::new()
        .benches(BENCHES.iter().map(|n| suite::by_name(n).expect("known")))
        .protocol("dir", ProtocolKind::Directory)
        .protocol("sp", ProtocolKind::Predicted(PredictorKind::sp_default()))
        .protocol("bc", ProtocolKind::Broadcast);
    for (n, w, h) in MESHES {
        let mut machine = MachineConfig::paper_16core();
        machine.num_cores = n;
        machine.noc = NocConfig {
            width: w,
            height: h,
            ..NocConfig::default()
        };
        matrix = matrix.machine(format!("{n}c"), machine);
    }
    let result = run_matrix(&matrix, jobs_arg(), &StreamOpts::from_env_args());

    println!(
        "{:<7} {:>10} {:>11} {:>12} {:>16}",
        "cores", "comm ratio", "SP accuracy", "pred targets", "broadcast bw/SP"
    );
    for (n, _, _) in MESHES {
        let label = format!("{n}c");
        let mut ratios = Vec::new();
        let mut accs = Vec::new();
        let mut psizes = Vec::new();
        let mut bc_over_sp = Vec::new();
        for name in BENCHES {
            let dir = &result
                .get_on(name, "dir", SEED, &label)
                .expect("dir run")
                .stats;
            let sp = &result
                .get_on(name, "sp", SEED, &label)
                .expect("sp run")
                .stats;
            let bc = &result
                .get_on(name, "bc", SEED, &label)
                .expect("bc run")
                .stats;
            ratios.push(dir.comm_ratio());
            accs.push(sp.accuracy());
            psizes.push(sp.mean_predicted_set());
            bc_over_sp.push(bc.bandwidth() as f64 / sp.bandwidth() as f64);
        }
        println!(
            "{:<7} {:>9.1}% {:>10.1}% {:>12.2} {:>15.2}x",
            n,
            mean(ratios) * 100.0,
            mean(accs) * 100.0,
            mean(psizes),
            mean(bc_over_sp),
        );
    }
    println!("----------------------------------------------------------------");
    println!("Expected: accuracy and predicted-set size stay roughly flat (hot");
    println!("sets are an algorithm property), while broadcast's bandwidth");
    println!("disadvantage grows with the core count — the paper's motivation");
    println!("for multicast/prediction at scale.");
}
