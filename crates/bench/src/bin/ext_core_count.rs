//! Extension: core-count scaling. The paper's machine is fixed at 16
//! cores; this harness sweeps 4–64 cores (2×2 to 8×8 meshes) to show that
//! SP-prediction's premise — small hot sets bounded by the algorithm, not
//! the machine — scales, while broadcast bandwidth grows with N.

use spcp_bench::{header, mean, SEED};
use spcp_noc::NocConfig;
use spcp_system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
use spcp_workloads::suite;

fn main() {
    header(
        "Extension: core-count scaling",
        "SP accuracy, predicted-set size and broadcast cost vs machine size",
    );
    println!(
        "{:<7} {:>10} {:>11} {:>12} {:>16}",
        "cores", "comm ratio", "SP accuracy", "pred targets", "broadcast bw/SP"
    );
    for (n, w, h) in [(4usize, 2usize, 2usize), (16, 4, 4), (36, 6, 6), (64, 8, 8)] {
        let mut machine = MachineConfig::paper_16core();
        machine.num_cores = n;
        machine.noc = NocConfig {
            width: w,
            height: h,
            ..NocConfig::default()
        };
        let mut ratios = Vec::new();
        let mut accs = Vec::new();
        let mut psizes = Vec::new();
        let mut bc_over_sp = Vec::new();
        // Three representative benchmarks across pattern classes.
        for name in ["x264", "ocean", "fluidanimate"] {
            let spec = suite::by_name(name).expect("known");
            let workload = spec.generate(n, SEED);
            let dir = CmpSystem::run_workload(
                &workload,
                &RunConfig::new(machine.clone(), ProtocolKind::Directory),
            );
            let sp = CmpSystem::run_workload(
                &workload,
                &RunConfig::new(
                    machine.clone(),
                    ProtocolKind::Predicted(PredictorKind::sp_default()),
                ),
            );
            let bc = CmpSystem::run_workload(
                &workload,
                &RunConfig::new(machine.clone(), ProtocolKind::Broadcast),
            );
            ratios.push(dir.comm_ratio());
            accs.push(sp.accuracy());
            psizes.push(sp.mean_predicted_set());
            bc_over_sp.push(bc.bandwidth() as f64 / sp.bandwidth() as f64);
        }
        println!(
            "{:<7} {:>9.1}% {:>10.1}% {:>12.2} {:>15.2}x",
            n,
            mean(ratios) * 100.0,
            mean(accs) * 100.0,
            mean(psizes),
            mean(bc_over_sp),
        );
    }
    println!("----------------------------------------------------------------");
    println!("Expected: accuracy and predicted-set size stay roughly flat (hot");
    println!("sets are an algorithm property), while broadcast's bandwidth");
    println!("disadvantage grows with the core count — the paper's motivation");
    println!("for multicast/prediction at scale.");
}
