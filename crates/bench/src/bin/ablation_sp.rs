//! Ablation sweeps for SP-prediction's design choices (DESIGN.md §5):
//! hot-set threshold, history depth, stride-2 detection, confidence width,
//! lock-entry sharing, and ADDR macroblock size.
//!
//! All (config × benchmark) cells plus the shared directory baseline run
//! as one harness matrix fanned across `--jobs` workers; rows are then
//! printed from the collected results in the original order.

use spcp_bench::{header, jobs_arg, mean, run_matrix, StreamOpts, SEED};
use spcp_core::SpConfig;
use spcp_harness::{RunMatrix, SweepResult};
use spcp_system::{PredictorKind, ProtocolKind};
use spcp_workloads::suite;

/// A representative subset covering stable, repetitive, lock-heavy and
/// random behaviours.
const BENCHES: [&str; 5] = ["fmm", "ocean", "water-ns", "streamcluster", "dedup"];

/// One output section: a header plus its rows (row label, SP config).
struct Section {
    title: &'static str,
    rows: Vec<(String, SpConfig)>,
}

fn sections() -> Vec<Section> {
    let mut out = Vec::new();
    let cfg = SpConfig::default;

    out.push(Section {
        title: "hot-set extraction threshold:",
        rows: [0.05, 0.10, 0.20]
            .map(|th| {
                (
                    format!("  threshold = {th:.2}"),
                    SpConfig {
                        hot_threshold: th,
                        ..cfg()
                    },
                )
            })
            .into(),
    });
    out.push(Section {
        title: "hot-set size bound:",
        rows: [None, Some(4), Some(2), Some(1)]
            .map(|cap| {
                (
                    format!("  max hot set = {cap:?}"),
                    SpConfig {
                        max_hot_set: cap,
                        ..cfg()
                    },
                )
            })
            .into(),
    });
    out.push(Section {
        title: "history depth d:",
        rows: [1usize, 2, 4]
            .map(|d| {
                (
                    format!("  d = {d}"),
                    SpConfig {
                        history_depth: d,
                        ..cfg()
                    },
                )
            })
            .into(),
    });
    out.push(Section {
        title: "stride-2 pattern detection:",
        rows: [true, false]
            .map(|on| {
                (
                    format!("  stride2 = {on}"),
                    SpConfig {
                        stride2_detection: on,
                        ..cfg()
                    },
                )
            })
            .into(),
    });
    out.push(Section {
        title: "confidence counter width:",
        rows: [2, 4, 6]
            .map(|bits| {
                (
                    format!("  confidence bits = {bits}"),
                    SpConfig {
                        confidence_bits: bits,
                        ..cfg()
                    },
                )
            })
            .into(),
    });
    out.push(Section {
        title: "warm-up misses before d=0 extraction:",
        rows: [10, 30, 100]
            .map(|w| {
                (
                    format!("  warmup = {w}"),
                    SpConfig {
                        warmup_misses: w,
                        ..cfg()
                    },
                )
            })
            .into(),
    });
    out.push(Section {
        title: "SP-table organization (§4.6: fully- vs set-associative):",
        rows: [
            ("fully associative", None),
            ("16 sets x 2 ways", Some((16usize, 2usize))),
            ("8 sets x 2 ways", Some((8, 2))),
            ("4 sets x 1 way", Some((4, 1))),
        ]
        .map(|(label, geom)| {
            (
                format!("  {label}"),
                SpConfig {
                    table_sets_ways: geom,
                    ..cfg()
                },
            )
        })
        .into(),
    });
    out.push(Section {
        title: "lock prediction unions the preceding epoch's signature:",
        rows: [false, true]
            .map(|on| {
                (
                    format!("  lock_union_preceding = {on}"),
                    SpConfig {
                        lock_union_preceding: on,
                        ..cfg()
                    },
                )
            })
            .into(),
    });
    out
}

/// Prints one result row: 5-benchmark mean accuracy and bandwidth overhead
/// of `label`'s runs relative to the shared directory baseline.
fn report(result: &SweepResult, row: &str, label: &str) {
    let mut accs = Vec::new();
    let mut bws = Vec::new();
    for name in BENCHES {
        let dir = &result.get(name, "dir", SEED).expect("baseline run").stats;
        let s = &result.get(name, label, SEED).expect("ablation run").stats;
        accs.push(s.accuracy() * 100.0);
        bws.push((s.bandwidth() as f64 - dir.bandwidth() as f64) / dir.bandwidth() as f64 * 100.0);
    }
    println!(
        "{:<44} accuracy {:>5.1}%   +bandwidth {:>5.1}%",
        row,
        mean(accs),
        mean(bws)
    );
}

fn main() {
    header(
        "Ablations",
        "SP-prediction design-choice sweeps (5-benchmark averages)",
    );

    let sections = sections();
    let mut matrix = RunMatrix::new().protocol("dir", ProtocolKind::Directory);
    for name in BENCHES {
        matrix = matrix.bench(suite::by_name(name).expect("known benchmark"));
    }
    for (si, sec) in sections.iter().enumerate() {
        for (ri, (_, cfg)) in sec.rows.iter().enumerate() {
            matrix = matrix.protocol(
                format!("cfg{si}-{ri}"),
                ProtocolKind::Predicted(PredictorKind::Sp(cfg.clone())),
            );
        }
    }
    let result = run_matrix(&matrix, jobs_arg(), &StreamOpts::from_env_args());

    for (si, sec) in sections.iter().enumerate() {
        println!("\n{}", sec.title);
        for (ri, (row, _)) in sec.rows.iter().enumerate() {
            report(&result, row, &format!("cfg{si}-{ri}"));
        }
    }
}
