//! Ablation sweeps for SP-prediction's design choices (DESIGN.md §5):
//! hot-set threshold, history depth, stride-2 detection, confidence width,
//! lock-entry sharing, and ADDR macroblock size.

use spcp_bench::{header, mean, run};
use spcp_core::SpConfig;
use spcp_system::{PredictorKind, ProtocolKind, RunStats};
use spcp_workloads::suite;

/// A representative subset covering stable, repetitive, lock-heavy and
/// random behaviours.
const BENCHES: [&str; 5] = ["fmm", "ocean", "water-ns", "streamcluster", "dedup"];

fn sweep(label: &str, cfg: SpConfig) {
    let mut accs = Vec::new();
    let mut bws = Vec::new();
    for name in BENCHES {
        let spec = suite::by_name(name).expect("known benchmark");
        let dir = run(&spec, ProtocolKind::Directory, false);
        let s: RunStats = run(
            &spec,
            ProtocolKind::Predicted(PredictorKind::Sp(cfg.clone())),
            false,
        );
        accs.push(s.accuracy() * 100.0);
        bws.push((s.bandwidth() as f64 - dir.bandwidth() as f64) / dir.bandwidth() as f64 * 100.0);
    }
    println!(
        "{:<44} accuracy {:>5.1}%   +bandwidth {:>5.1}%",
        label,
        mean(accs),
        mean(bws)
    );
}

fn main() {
    header(
        "Ablations",
        "SP-prediction design-choice sweeps (5-benchmark averages)",
    );

    println!("\nhot-set extraction threshold:");
    for th in [0.05, 0.10, 0.20] {
        sweep(
            &format!("  threshold = {th:.2}"),
            SpConfig {
                hot_threshold: th,
                ..SpConfig::default()
            },
        );
    }

    println!("\nhot-set size bound:");
    for cap in [None, Some(4), Some(2), Some(1)] {
        sweep(
            &format!("  max hot set = {cap:?}"),
            SpConfig {
                max_hot_set: cap,
                ..SpConfig::default()
            },
        );
    }

    println!("\nhistory depth d:");
    for d in [1usize, 2, 4] {
        sweep(
            &format!("  d = {d}"),
            SpConfig {
                history_depth: d,
                ..SpConfig::default()
            },
        );
    }

    println!("\nstride-2 pattern detection:");
    for on in [true, false] {
        sweep(
            &format!("  stride2 = {on}"),
            SpConfig {
                stride2_detection: on,
                ..SpConfig::default()
            },
        );
    }

    println!("\nconfidence counter width:");
    for bits in [2, 4, 6] {
        sweep(
            &format!("  confidence bits = {bits}"),
            SpConfig {
                confidence_bits: bits,
                ..SpConfig::default()
            },
        );
    }

    println!("\nwarm-up misses before d=0 extraction:");
    for w in [10, 30, 100] {
        sweep(
            &format!("  warmup = {w}"),
            SpConfig {
                warmup_misses: w,
                ..SpConfig::default()
            },
        );
    }

    println!("\nSP-table organization (§4.6: fully- vs set-associative):");
    for (label, geom) in [
        ("fully associative", None),
        ("16 sets x 2 ways", Some((16usize, 2usize))),
        ("8 sets x 2 ways", Some((8, 2))),
        ("4 sets x 1 way", Some((4, 1))),
    ] {
        sweep(
            &format!("  {label}"),
            SpConfig {
                table_sets_ways: geom,
                ..SpConfig::default()
            },
        );
    }

    println!("\nlock prediction unions the preceding epoch's signature:");
    for on in [false, true] {
        sweep(
            &format!("  lock_union_preceding = {on}"),
            SpConfig {
                lock_union_preceding: on,
                ..SpConfig::default()
            },
        );
    }
}
