//! Figure 6: example hot-communication-set patterns across dynamic
//! instances of a sync-epoch.
//!
//! Five purpose-built miniature workloads exercise each §3.4 pattern; the
//! harness prints the hot set of every dynamic instance of the epoch as a
//! bit vector, reproducing the panels of Figure 6.

use spcp_bench::{header, CORES, SEED};
use spcp_system::{CmpSystem, MachineConfig, ProtocolKind, RunConfig, RunStats};
use spcp_workloads::{BenchmarkSpec, CsSpec, EpochSpec, Phase, SharingPattern};

fn mini(name: &'static str, epoch: EpochSpec, iterations: u32) -> BenchmarkSpec {
    BenchmarkSpec {
        name,
        phases: vec![Phase::new(vec![epoch], iterations)],
        seed_salt: 99,
        paper_comm_ratio: 0.5,
    }
}

fn run(spec: &BenchmarkSpec) -> RunStats {
    let w = spec.generate(CORES, SEED);
    CmpSystem::run_workload(
        &w,
        &RunConfig::new(MachineConfig::paper_16core(), ProtocolKind::Directory).recording(),
    )
}

fn show(panel: &str, spec: &BenchmarkSpec, instances: usize) {
    show_filtered(panel, spec, instances, false)
}

/// `cs_only` selects critical-section epochs instead of the main barrier
/// epoch (for the random-pattern panel).
fn show_filtered(panel: &str, spec: &BenchmarkSpec, instances: usize, cs_only: bool) {
    let stats = run(spec);
    println!("\n({panel})");
    println!(
        "{:<10} 0123456789012345   (core 0's hot set per instance)",
        "instance"
    );
    let records = &stats.epoch_records[0];
    for r in records
        .iter()
        .filter(|r| {
            if cs_only {
                r.id.is_critical_section()
            } else {
                r.id.static_id.raw() == 1 && !r.id.is_critical_section()
            }
        })
        .filter(|r| r.total_volume() > 0)
        .take(instances)
    {
        let hot = r.hot_set(0.10);
        let bits: String = (0..16)
            .map(|i| {
                if hot.contains(spcp_sim::CoreId::new(i)) {
                    'X'
                } else {
                    '.'
                }
            })
            .collect();
        println!("{:<10} {}", r.instance, bits);
    }
}

fn main() {
    header(
        "Figure 6",
        "Hot communication set patterns across dynamic instances",
    );

    show(
        "a: stable pattern",
        &mini(
            "stable",
            EpochSpec::new(1, SharingPattern::Stable { offset: 5 }).traffic(32, 32),
            5,
        ),
        5,
    );
    show(
        "b: change between stable patterns",
        &mini(
            "switch",
            EpochSpec::new(
                1,
                SharingPattern::StableSwitch {
                    first: 2,
                    second: 9,
                    switch_at: 3,
                },
            )
            .traffic(32, 32),
            6,
        ),
        6,
    );
    show(
        "c: repetitive pattern (stride 3)",
        &mini(
            "stride3",
            EpochSpec::new(
                1,
                SharingPattern::Repetitive {
                    stride: 3,
                    period: 3,
                },
            )
            .traffic(32, 32),
            9,
        ),
        9,
    );
    show_filtered(
        "d: random pattern (critical section)",
        &mini(
            "random-cs",
            EpochSpec::new(1, SharingPattern::PrivateOnly)
                .traffic(0, 0)
                .private(2)
                .critical_sections(CsSpec {
                    lock_base: 0,
                    num_locks: 1,
                    sections: 1,
                    accesses: 12,
                }),
            8,
        ),
        8,
        true,
    );
    show(
        "e: stable + random mix",
        &mini(
            "mixed",
            EpochSpec::new(1, SharingPattern::Mixed { offset: 4 }).traffic(32, 32),
            8,
        ),
        8,
    );
    println!("\nExpected shapes (paper): (a) one fixed bit; (b) the bit moves");
    println!("once; (c) bits cycle with period 3; (d) bits wander randomly;");
    println!("(e) one fixed bit plus wandering extras.");
}
