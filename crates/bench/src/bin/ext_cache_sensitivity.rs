//! Extension: cache-size sensitivity. The paper notes (end of §5.3) that a
//! larger cache elevates the fraction of communicating misses for
//! memory-bound applications and hence the predictor's impact; this
//! harness sweeps the private L2 from 256 KB to 4 MB.

use spcp_bench::{header, mean, CORES, SEED};
use spcp_mem::CacheConfig;
use spcp_system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
use spcp_workloads::suite;

fn main() {
    header(
        "Extension: L2 size sensitivity",
        "Communicating-miss fraction and SP's latency gain vs private L2 size",
    );
    println!(
        "{:<10} {:>12} {:>14} {:>14}",
        "L2 size", "comm ratio", "SP accuracy", "SP latency gain"
    );
    // The synthetic working sets are scaled down with the dynamic epoch
    // counts, so the binding sizes are proportionally smaller than the
    // paper's: 32 KB here stresses capacity the way a small L2 would.
    for (label, size) in [("4KB", 4u64 << 10), ("16KB", 16 << 10), ("1MB", 1 << 20)] {
        let mut machine = MachineConfig::paper_16core();
        machine.l2 = CacheConfig {
            size_bytes: size,
            ..CacheConfig::l2_1mb()
        };
        let mut ratios = Vec::new();
        let mut accs = Vec::new();
        let mut gains = Vec::new();
        for spec in suite::all() {
            let w = spec.generate(CORES, SEED);
            let dir = CmpSystem::run_workload(
                &w,
                &RunConfig::new(machine.clone(), ProtocolKind::Directory),
            );
            let sp = CmpSystem::run_workload(
                &w,
                &RunConfig::new(
                    machine.clone(),
                    ProtocolKind::Predicted(PredictorKind::sp_default()),
                ),
            );
            ratios.push(dir.comm_ratio());
            accs.push(sp.accuracy());
            gains.push(1.0 - sp.miss_latency.mean() / dir.miss_latency.mean());
        }
        println!(
            "{:<10} {:>11.1}% {:>13.1}% {:>13.1}%",
            label,
            mean(ratios) * 100.0,
            mean(accs) * 100.0,
            mean(gains) * 100.0,
        );
    }
    println!("----------------------------------------------------------------");
    println!("Expected trend (paper): larger caches keep more shared data");
    println!("resident, raising the communicating fraction and SP's impact;");
    println!("a small L2 turns shared re-reads into capacity misses to memory.");
}
