//! Batch runner: every benchmark × every protocol, emitted as CSV for
//! downstream plotting (`cargo run -p spcp-bench --release --bin
//! all_results > results.csv`).

use spcp_bench::{run, CORES, SEED};
use spcp_system::{PredictorKind, ProtocolKind};
use spcp_workloads::suite;

fn protocols() -> Vec<(&'static str, ProtocolKind)> {
    vec![
        ("directory", ProtocolKind::Directory),
        ("broadcast", ProtocolKind::Broadcast),
        ("sp", ProtocolKind::Predicted(PredictorKind::sp_default())),
        (
            "addr",
            ProtocolKind::Predicted(PredictorKind::Addr {
                entries: None,
                macroblock_bytes: 256,
            }),
        ),
        ("inst", ProtocolKind::Predicted(PredictorKind::Inst { entries: None })),
        ("uni", ProtocolKind::Predicted(PredictorKind::Uni)),
        (
            "multicast",
            ProtocolKind::MulticastSnoop(PredictorKind::sp_default()),
        ),
    ]
}

fn main() {
    println!(
        "benchmark,protocol,seed,cores,exec_cycles,l2_misses,comm_misses,noncomm_misses,\
         miss_latency_mean,comm_miss_latency_mean,byte_hops,ctrl_byte_hops,energy,\
         snoop_probes,predictions,pred_sufficient_comm,indirections,accuracy,\
         mean_predicted_set,predictor_storage_bits"
    );
    for spec in suite::all() {
        for (label, proto) in protocols() {
            let s = run(&spec, proto, false);
            println!(
                "{},{},{},{},{},{},{},{},{:.3},{:.3},{},{},{:.3},{},{},{},{},{:.6},{:.3},{}",
                s.benchmark,
                label,
                SEED,
                CORES,
                s.exec_cycles,
                s.l2_misses,
                s.comm_misses,
                s.noncomm_misses,
                s.miss_latency.mean(),
                s.comm_miss_latency.mean(),
                s.noc.byte_hops,
                s.noc.ctrl_byte_hops,
                s.energy(),
                s.snoop_probes,
                s.predictions,
                s.pred_sufficient_comm,
                s.indirections,
                s.accuracy(),
                s.mean_predicted_set(),
                s.predictor_storage_bits,
            );
        }
    }
}
