//! Batch runner: every benchmark × every protocol, emitted as CSV for
//! downstream plotting (`cargo run -p spcp-bench --release --bin
//! all_results > results.csv`).
//!
//! The full matrix fans out across a `spcp-harness` worker pool; pass
//! `--jobs N` to bound it. Row order is the canonical matrix order
//! (benchmark-major, protocols inner) regardless of worker scheduling.

use spcp_bench::{jobs_arg, run_matrix, StreamOpts, CORES, SEED};
use spcp_harness::RunMatrix;
use spcp_system::{PredictorKind, ProtocolKind};
use spcp_workloads::suite;

fn protocols() -> Vec<(&'static str, ProtocolKind)> {
    vec![
        ("directory", ProtocolKind::Directory),
        ("broadcast", ProtocolKind::Broadcast),
        ("sp", ProtocolKind::Predicted(PredictorKind::sp_default())),
        (
            "addr",
            ProtocolKind::Predicted(PredictorKind::Addr {
                entries: None,
                macroblock_bytes: 256,
            }),
        ),
        (
            "inst",
            ProtocolKind::Predicted(PredictorKind::Inst { entries: None }),
        ),
        ("uni", ProtocolKind::Predicted(PredictorKind::Uni)),
        (
            "multicast",
            ProtocolKind::MulticastSnoop(PredictorKind::sp_default()),
        ),
    ]
}

fn main() {
    let mut matrix = RunMatrix::new().benches(suite::all());
    for (label, proto) in protocols() {
        matrix = matrix.protocol(label, proto);
    }
    let result = run_matrix(&matrix, jobs_arg(), &StreamOpts::from_env_args());

    println!(
        "benchmark,protocol,seed,cores,exec_cycles,l2_misses,comm_misses,noncomm_misses,\
         miss_latency_mean,comm_miss_latency_mean,byte_hops,ctrl_byte_hops,energy,\
         snoop_probes,predictions,pred_sufficient_comm,indirections,accuracy,\
         mean_predicted_set,predictor_storage_bits"
    );
    for r in &result.runs {
        let s = &r.stats;
        println!(
            "{},{},{},{},{},{},{},{},{:.3},{:.3},{},{},{:.3},{},{},{},{},{:.6},{:.3},{}",
            s.benchmark,
            r.spec.protocol_label,
            SEED,
            CORES,
            s.exec_cycles,
            s.l2_misses,
            s.comm_misses,
            s.noncomm_misses,
            s.miss_latency.mean(),
            s.comm_miss_latency.mean(),
            s.noc.byte_hops,
            s.noc.ctrl_byte_hops,
            s.energy(),
            s.snoop_probes,
            s.predictions,
            s.pred_sufficient_comm,
            s.indirections,
            s.accuracy(),
            s.mean_predicted_set(),
            s.predictor_storage_bits,
        );
    }
}
