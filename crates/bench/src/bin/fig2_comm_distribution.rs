//! Figure 2: communication distribution of core 0 in bodytrack, at three
//! granularities: whole execution, consecutive sync-epochs, and dynamic
//! instances of one sync-epoch.

use spcp_bench::{bar, header, run};
use spcp_system::ProtocolKind;
use spcp_workloads::suite;

fn print_volumes(label: &str, volumes: &[u64]) {
    let max = volumes.iter().copied().max().unwrap_or(1).max(1);
    print!("{label:<24}");
    for v in volumes {
        print!(" {v:>6}");
    }
    println!();
    print!("{:<24}", "");
    for v in volumes {
        print!(" {:>6}", bar(*v as f64 / max as f64, 5));
    }
    println!();
}

fn main() {
    header(
        "Figure 2",
        "Communication distribution of core 0 in bodytrack",
    );
    let stats = run(&suite::bodytrack(), ProtocolKind::Directory, true);

    print!("{:<24}", "target core:");
    for i in 0..16 {
        print!(" {i:>6}");
    }
    println!();

    // (a) the whole execution.
    println!("\n(a) whole execution:");
    print_volumes("core 0 volume", stats.comm_matrix.row(0));

    // (b) four consecutive sync-epoch instances with real activity.
    println!("\n(b) four consecutive sync-epochs:");
    let records = &stats.epoch_records[0];
    let active: Vec<_> = records.iter().filter(|r| r.total_volume() > 10).collect();
    let start = active.len().saturating_sub(8).min(4);
    for (i, r) in active.iter().skip(start).take(4).enumerate() {
        let v: Vec<u64> = r.volumes.iter().map(|&x| x as u64).collect();
        print_volumes(&format!("epoch {} ({})", i + 1, r.id), &v);
    }

    // (c) five dynamic instances of the same static epoch.
    println!("\n(c) five dynamic instances of one sync-epoch:");
    let chosen = records
        .iter()
        .filter(|r| r.total_volume() > 10)
        .map(|r| r.id)
        .find(|id| records.iter().filter(|r| r.id == *id).count() >= 5)
        .expect("bodytrack repeats epochs");
    for r in records.iter().filter(|r| r.id == chosen).take(5) {
        let v: Vec<u64> = r.volumes.iter().map(|&x| x as u64).collect();
        print_volumes(&format!("({}, inst {})", r.id, r.instance), &v);
    }
    println!("\nExpected shape (paper): whole-run volume is spread, while");
    println!("individual epochs concentrate on a few hot targets that repeat");
    println!("across instances of the same epoch.");
}
