//! Figure 13: effect of predictor space limits — average trade-off points
//! for each scheme with unlimited tables vs 512-entry (~4 KB) tables.

use spcp_bench::{header, mean, run_suite};
use spcp_system::{PredictorKind, ProtocolKind, RunStats};

// The paper limits tables to 512 entries (~4 KB). Our synthetic workloads
// have a ~16x smaller predictor-entry footprint (scaled-down dynamic
// instance counts and working sets), so the equivalent binding limit is 32
// entries per table.
const FINITE_ENTRIES: usize = 32;

fn schemes(entries: Option<usize>) -> Vec<(&'static str, PredictorKind)> {
    let sp_cfg = spcp_core::SpConfig {
        table_capacity: entries,
        ..spcp_core::SpConfig::default()
    };
    vec![
        ("SP", PredictorKind::Sp(sp_cfg)),
        (
            "ADDR",
            PredictorKind::Addr {
                entries,
                macroblock_bytes: 256,
            },
        ),
        ("INST", PredictorKind::Inst { entries }),
        ("UNI", PredictorKind::Uni),
    ]
}

fn averages(all: &[RunStats], base: &[RunStats]) -> (f64, f64, f64) {
    let bw = mean(all.iter().zip(base).map(|(s, d)| {
        (s.bandwidth() as f64 - d.bandwidth() as f64) / d.bandwidth() as f64 * 100.0
    }));
    let ind = mean(all.iter().map(|s| s.indirection_ratio() * 100.0));
    let kb = mean(
        all.iter()
            .map(|s| s.predictor_storage_bits as f64 / 8.0 / 1024.0),
    );
    (bw, ind, kb)
}

fn main() {
    header(
        "Figure 13",
        "Space sensitivity: unlimited vs finite predictor tables (suite averages; 32 entries ~ the paper's 512 at our footprint scale)",
    );
    let dir = run_suite(ProtocolKind::Directory, false);
    let base_ind = mean(dir.iter().map(|s| s.indirection_ratio() * 100.0));
    println!(
        "{:<10} {:<10} {:>12} {:>16} {:>14}",
        "scheme", "capacity", "+bandwidth", "% indirections", "storage (KB)"
    );
    println!(
        "{:<10} {:<10} {:>11.1}% {:>15.1}% {:>14}",
        "Directory", "-", 0.0, base_ind, "-"
    );
    for (cap_label, entries) in [("unlimited", None), ("finite-32", Some(FINITE_ENTRIES))] {
        for (label, kind) in schemes(entries) {
            let all = run_suite(ProtocolKind::Predicted(kind), false);
            let (bw, ind, kb) = averages(&all, &dir);
            println!(
                "{:<10} {:<10} {:>11.1}% {:>15.1}% {:>14.2}",
                label, cap_label, bw, ind, kb
            );
        }
    }
    println!("----------------------------------------------------------------");
    println!("Expected shape (paper): the capacity limit degrades ADDR/INST");
    println!("accuracy (more indirections, correspondingly less bandwidth),");
    println!("while SP and UNI are unaffected — SP's table is inherently");
    println!("bounded by the static sync-point count (<= ~35 entries).");
}
