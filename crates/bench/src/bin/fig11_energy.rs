//! Figure 11: dynamic energy consumed on the NoC and L2 snoop lookups,
//! normalized to the directory protocol.

use spcp_bench::{header, mean, run_suite};
use spcp_system::{PredictorKind, ProtocolKind};

fn main() {
    header("Figure 11", "Energy on NoC + cache snoops (normalized to base directory)");
    let dir = run_suite(ProtocolKind::Directory, false);
    let bc = run_suite(ProtocolKind::Broadcast, false);
    let sp = run_suite(ProtocolKind::Predicted(PredictorKind::sp_default()), false);
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "benchmark", "directory", "broadcast", "SP"
    );
    let mut bc_n = Vec::new();
    let mut sp_n = Vec::new();
    for ((d, b), s) in dir.iter().zip(&bc).zip(&sp) {
        let base = d.energy();
        let nb = b.energy() / base;
        let ns = s.energy() / base;
        bc_n.push(nb);
        sp_n.push(ns);
        println!("{:<14} {:>10.2} {:>10.2} {:>10.2}", d.benchmark, 1.0, nb, ns);
    }
    println!("----------------------------------------------------------------");
    println!(
        "{:<14} {:>10.2} {:>10.2} {:>10.2}",
        "average", 1.0, mean(bc_n.clone()), mean(sp_n.clone())
    );
    println!(
        "SP adds {:.0}% energy (paper: +25%), broadcast {:.1}x (paper: 2.4x)",
        (mean(sp_n) - 1.0) * 100.0,
        mean(bc_n)
    );
}
