//! Figure 11: dynamic energy consumed on the NoC and L2 snoop lookups,
//! normalized to the directory protocol.
//!
//! Runs the whole three-protocol matrix through the `spcp-harness` sweep
//! engine; pass `--jobs N` to bound the worker count.

use spcp_bench::{header, mean, sweep_dir_bc_sp};

fn main() {
    header(
        "Figure 11",
        "Energy on NoC + cache snoops (normalized to base directory)",
    );
    let result = sweep_dir_bc_sp(false);
    let dir = result.by_protocol("dir");
    let bc = result.by_protocol("bc");
    let sp = result.by_protocol("sp");
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "benchmark", "directory", "broadcast", "SP"
    );
    let mut bc_n = Vec::new();
    let mut sp_n = Vec::new();
    for ((d, b), s) in dir.iter().zip(&bc).zip(&sp) {
        let base = d.stats.energy();
        let nb = b.stats.energy() / base;
        let ns = s.stats.energy() / base;
        bc_n.push(nb);
        sp_n.push(ns);
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>10.2}",
            d.stats.benchmark, 1.0, nb, ns
        );
    }
    println!("----------------------------------------------------------------");
    println!(
        "{:<14} {:>10.2} {:>10.2} {:>10.2}",
        "average",
        1.0,
        mean(bc_n.clone()),
        mean(sp_n.clone())
    );
    println!(
        "SP adds {:.0}% energy (paper: +25%), broadcast {:.1}x (paper: 2.4x)",
        (mean(sp_n) - 1.0) * 100.0,
        mean(bc_n)
    );
}
