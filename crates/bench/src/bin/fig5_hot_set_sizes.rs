//! Figure 5: distribution of sync-epoch intervals by hot-communication-set
//! size (10% threshold).

use spcp_bench::{header, run_suite};
use spcp_system::ProtocolKind;

fn main() {
    header(
        "Figure 5",
        "Distribution of intervals by hot communication set size (threshold 10%)",
    );
    println!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>7}   (fraction of communicating epochs)",
        "benchmark", "1", "2", "3", "4", ">=5"
    );
    let all = run_suite(ProtocolKind::Directory, true);
    let mut totals = [0u64; 5];
    let mut grand = 0u64;
    for s in &all {
        let mut buckets = [0u64; 5];
        let mut n = 0u64;
        for r in s.epoch_records.iter().flatten() {
            if r.total_volume() == 0 {
                continue; // quiet epochs have no hot set to size
            }
            let size = r.hot_set(0.10).len();
            if size == 0 {
                continue;
            }
            let idx = size.min(5) - 1;
            buckets[idx] += 1;
            n += 1;
        }
        grand += n;
        for (t, b) in totals.iter_mut().zip(buckets.iter()) {
            *t += b;
        }
        print!("{:<14}", s.benchmark);
        for b in buckets {
            print!(
                " {:>6.1}%",
                if n > 0 {
                    b as f64 / n as f64 * 100.0
                } else {
                    0.0
                }
            );
        }
        println!();
    }
    println!("----------------------------------------------------------------");
    let le4: u64 = totals[..4].iter().sum();
    println!(
        "overall: {:.1}% of intervals have a hot set of size <= 4 (paper: >78%)",
        if grand > 0 {
            le4 as f64 / grand as f64 * 100.0
        } else {
            0.0
        }
    );
}
