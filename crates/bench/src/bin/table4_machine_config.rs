//! Table 4: the simulated machine configuration.

use spcp_bench::header;
use spcp_system::MachineConfig;

fn main() {
    header("Table 4", "Simulated machine architecture configuration");
    let m = MachineConfig::paper_16core();
    println!("Processor model        in-order (blocking misses)");
    println!("Cores                  {}", m.num_cores);
    println!(
        "L1 I/D cache           {} KB, {}-way, {} B lines, {}-cycle load-to-use",
        m.l1.size_bytes >> 10,
        m.l1.assoc,
        m.l1.block_bytes,
        m.l1.tag_cycles + m.l1.data_cycles
    );
    println!(
        "L2 cache (private)     {} MB, {}-way, {} B lines, tag {} cyc, data {} cyc, LRU",
        m.l2.size_bytes >> 20,
        m.l2.assoc,
        m.l2.block_bytes,
        m.l2.tag_cycles,
        m.l2.data_cycles
    );
    println!(
        "Coherence              distributed directory MESIF ({} cyc directory access)",
        m.dir_latency
    );
    println!(
        "NoC topology           {}x{} 2D mesh, X-Y routing",
        m.noc.width, m.noc.height
    );
    println!(
        "Router                 {}-stage pipeline, {}-cycle links, {} B flits, {} VCs",
        m.noc.router_cycles, m.noc.link_cycles, m.noc.flit_bytes, m.noc.virtual_channels
    );
    println!("Main memory latency    {} cycles", m.mem_latency);
    println!(
        "Energy model           NoC: energy ∝ bytes, router = 4x link; snoop probe {} units",
        m.snoop_probe_energy
    );
}
