//! Figure 10: execution time of directory, broadcast and SP-prediction,
//! normalized to the directory protocol.
//!
//! Runs the whole three-protocol matrix through the `spcp-harness` sweep
//! engine; pass `--jobs N` to bound the worker count.

use spcp_bench::{header, mean, sweep_dir_bc_sp};

fn main() {
    header("Figure 10", "Execution time (normalized to base directory)");
    let result = sweep_dir_bc_sp(false);
    let dir = result.by_protocol("dir");
    let bc = result.by_protocol("bc");
    let sp = result.by_protocol("sp");
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "benchmark", "directory", "broadcast", "SP"
    );
    let mut bc_n = Vec::new();
    let mut sp_n = Vec::new();
    let mut best = (String::new(), 1.0f64);
    for ((d, b), s) in dir.iter().zip(&bc).zip(&sp) {
        let base = d.stats.exec_cycles as f64;
        let nb = b.stats.exec_cycles as f64 / base;
        let ns = s.stats.exec_cycles as f64 / base;
        bc_n.push(nb);
        sp_n.push(ns);
        if ns < best.1 {
            best = (d.stats.benchmark.clone(), ns);
        }
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>10.3}",
            d.stats.benchmark, 1.0, nb, ns
        );
    }
    println!("----------------------------------------------------------------");
    println!(
        "{:<14} {:>10.3} {:>10.3} {:>10.3}",
        "average",
        1.0,
        mean(bc_n),
        mean(sp_n.clone())
    );
    println!(
        "SP improves execution time by {:.1}% on average (paper: 7%);\n\
         best case {} at {:.1}% (paper: x264 at 14%)",
        (1.0 - mean(sp_n)) * 100.0,
        best.0,
        (1.0 - best.1) * 100.0
    );
}
