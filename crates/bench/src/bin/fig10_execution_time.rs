//! Figure 10: execution time of directory, broadcast and SP-prediction,
//! normalized to the directory protocol.

use spcp_bench::{header, mean, run_suite};
use spcp_system::{PredictorKind, ProtocolKind};

fn main() {
    header("Figure 10", "Execution time (normalized to base directory)");
    let dir = run_suite(ProtocolKind::Directory, false);
    let bc = run_suite(ProtocolKind::Broadcast, false);
    let sp = run_suite(ProtocolKind::Predicted(PredictorKind::sp_default()), false);
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "benchmark", "directory", "broadcast", "SP"
    );
    let mut bc_n = Vec::new();
    let mut sp_n = Vec::new();
    let mut best = ("", 1.0f64);
    for ((d, b), s) in dir.iter().zip(&bc).zip(&sp) {
        let base = d.exec_cycles as f64;
        let nb = b.exec_cycles as f64 / base;
        let ns = s.exec_cycles as f64 / base;
        bc_n.push(nb);
        sp_n.push(ns);
        if ns < best.1 {
            best = (&d.benchmark, ns);
        }
        println!("{:<14} {:>10.3} {:>10.3} {:>10.3}", d.benchmark, 1.0, nb, ns);
    }
    println!("----------------------------------------------------------------");
    println!(
        "{:<14} {:>10.3} {:>10.3} {:>10.3}",
        "average", 1.0, mean(bc_n), mean(sp_n.clone())
    );
    println!(
        "SP improves execution time by {:.1}% on average (paper: 7%);\n\
         best case {} at {:.1}% (paper: x264 at 14%)",
        (1.0 - mean(sp_n)) * 100.0,
        best.0,
        (1.0 - best.1) * 100.0
    );
}
