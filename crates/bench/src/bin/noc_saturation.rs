//! NoC characterization: offered-load vs latency saturation curve from the
//! flit-level router model, plus cross-validation of the transaction-level
//! fabric used by the main simulator.

use spcp_bench::header;
use spcp_noc::flit::FlitNetwork;
use spcp_noc::{Fabric, MsgKind, NocConfig};
use spcp_sim::{CoreId, Cycle, DetRng};

/// Runs uniform-random traffic at `load` packets/node/cycle and returns the
/// mean packet latency.
fn run_load(load: f64, flits: u64, cycles: u64, seed: u64) -> (f64, u64) {
    let mut net = FlitNetwork::new(&NocConfig::default());
    let mut rng = DetRng::seeded(seed);
    let mut delivered = Vec::new();
    let mut id = 0u64;
    for _ in 0..cycles {
        for src in 0..16 {
            if rng.chance(load) {
                let mut dst = rng.index(16);
                if dst == src {
                    dst = (dst + 1) % 16;
                }
                if net
                    .inject(CoreId::new(src), CoreId::new(dst), flits, id)
                    .is_some()
                {
                    id += 1;
                }
            }
        }
        net.step(&mut delivered);
    }
    delivered.extend(net.drain(1_000_000));
    let mean = if delivered.is_empty() {
        0.0
    } else {
        delivered.iter().map(|d| d.latency()).sum::<u64>() as f64 / delivered.len() as f64
    };
    (mean, id)
}

fn main() {
    header(
        "NoC saturation study",
        "Flit-level router model: offered load vs mean packet latency (2-flit packets)",
    );
    println!(
        "{:>14} {:>12} {:>12}",
        "load (pkt/n/c)", "packets", "latency"
    );
    let mut prev = 0.0;
    for &load in &[0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50] {
        let (lat, pkts) = run_load(load, 2, 20_000, 7);
        println!("{load:>14.2} {pkts:>12} {lat:>11.1}c");
        assert!(lat >= prev * 0.8, "latency must not collapse as load rises");
        prev = lat;
    }

    println!("\nCross-validation against the transaction-level fabric (light load):");
    let mut fabric = Fabric::new(NocConfig {
        model_contention: false,
        ..NocConfig::default()
    });
    let mut worst: f64 = 0.0;
    for (src, dst) in [(0usize, 1usize), (0, 3), (0, 15), (5, 10)] {
        // Analytic: hops * (router 2 + link 1); flit model charges 1
        // cycle/hop + serialization, so compare normalized per-hop slopes.
        let t = fabric
            .send(
                CoreId::new(src),
                CoreId::new(dst),
                MsgKind::Request,
                Cycle::ZERO,
            )
            .as_u64();
        let mut net = FlitNetwork::new(&NocConfig::default());
        net.inject(CoreId::new(src), CoreId::new(dst), 1, 0);
        let flit_lat = net.drain(1000)[0].latency();
        let hops = fabric.mesh().hops(CoreId::new(src), CoreId::new(dst)) as f64;
        let analytic_per_hop = t as f64 / hops;
        let flit_per_hop = flit_lat as f64 / hops;
        worst = worst.max((analytic_per_hop - 3.0).abs());
        println!(
            "  {src:>2} -> {dst:<2}: analytic {t:>3}c ({analytic_per_hop:.1}/hop), flit {flit_lat:>3}c ({flit_per_hop:.1}/hop)"
        );
    }
    println!(
        "\nanalytic model charges 3 cycles/hop (2-stage router + link); the\n\
         flit model's single-cycle routers give 1 cycle/hop + serialization —\n\
         both scale linearly in distance (max per-hop deviation of the\n\
         analytic model from its 3c/hop spec: {worst:.2}c)."
    );
}
