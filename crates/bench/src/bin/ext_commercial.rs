//! Extension: the §5.5 commercial-workload projection. Database/server/OS
//! workloads are dominated by lock synchronization with irregular
//! communication; the paper projects SP-prediction still works because the
//! lock entries retrieve the recent-holder sequence. This harness builds a
//! lock-dominated "transaction processing" model and measures exactly the
//! critical-section prediction behaviour.

use spcp_bench::{header, CORES, SEED};
use spcp_system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
use spcp_workloads::{BenchmarkSpec, CsSpec, EpochSpec, Phase, SharingPattern};

/// A lock-heavy OLTP-like model: almost all sharing happens inside
/// critical sections on contended row/page locks; barriers are rare
/// (checkpoint boundaries); partners are irregular.
fn oltp() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "oltp-proj",
        phases: vec![Phase::new(
            vec![
                // "Transactions": many short critical sections over a pool
                // of hot locks, a little random read sharing, lots of
                // private buffer traffic.
                EpochSpec::new(1, SharingPattern::Random)
                    .traffic(8, 8)
                    .private(40)
                    .critical_sections(CsSpec {
                        lock_base: 0,
                        num_locks: 12,
                        sections: 6,
                        accesses: 8,
                    }),
                // "Log flush": one global lock everyone contends on.
                EpochSpec::new(2, SharingPattern::PrivateOnly)
                    .traffic(0, 0)
                    .private(16)
                    .critical_sections(CsSpec {
                        lock_base: 12,
                        num_locks: 1,
                        sections: 2,
                        accesses: 10,
                    }),
            ],
            12,
        )],
        seed_salt: 0x01fb,
        paper_comm_ratio: 0.55,
    }
}

fn main() {
    header(
        "Extension: commercial-workload projection (§5.5)",
        "SP-prediction on a lock-dominated OLTP-like model",
    );
    let spec = oltp();
    let w = spec.generate(CORES, SEED);
    let machine = MachineConfig::paper_16core();
    let dir = CmpSystem::run_workload(
        &w,
        &RunConfig::new(machine.clone(), ProtocolKind::Directory),
    );
    let sp = CmpSystem::run_workload(
        &w,
        &RunConfig::new(
            machine,
            ProtocolKind::Predicted(PredictorKind::sp_default()),
        ),
    );
    let s = sp.sp.expect("SP stats");
    let comm = sp.comm_misses.max(1) as f64;
    println!(
        "communicating misses:        {:.1}%",
        dir.comm_ratio() * 100.0
    );
    println!("overall SP accuracy:         {:.1}%", sp.accuracy() * 100.0);
    println!(
        "  via lock-holder history:   {:.1}% of communicating misses",
        s.correct_lock as f64 / comm * 100.0
    );
    println!(
        "  via epoch history:         {:.1}%",
        s.correct_history as f64 / comm * 100.0
    );
    println!(
        "  via recovery:              {:.1}%",
        s.correct_recovery as f64 / comm * 100.0
    );
    println!(
        "miss latency vs directory:   {:+.1}%",
        (sp.miss_latency.mean() / dir.miss_latency.mean() - 1.0) * 100.0
    );
    println!("----------------------------------------------------------------");
    println!("The paper's projection: lock-point signatures (the sequence of");
    println!("recent holders) keep prediction effective even when the");
    println!("communication pattern itself is irregular. A substantial");
    println!("lock-history stack above confirms the mechanism.");
}
