//! End-to-end benchmarks: whole-machine simulation throughput per protocol,
//! plus the ablation sweeps of DESIGN.md §5 measured as accuracy-vs-time
//! trade-offs.
//!
//! Uses the dependency-free `spcp_bench::timing` runner so the workspace
//! builds offline. Run with `cargo bench -p spcp-bench --bench simulation`.

use std::hint::black_box;

use spcp_bench::timing;
use spcp_core::SpConfig;
use spcp_system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
use spcp_workloads::suite;

const SAMPLES: u32 = 5;

fn bench_protocols() {
    let workload = suite::x264().generate(16, 7);
    let machine = MachineConfig::paper_16core();
    timing::group("full_run_x264");
    for (label, proto) in [
        ("directory", ProtocolKind::Directory),
        ("broadcast", ProtocolKind::Broadcast),
        ("sp", ProtocolKind::Predicted(PredictorKind::sp_default())),
        (
            "addr",
            ProtocolKind::Predicted(PredictorKind::Addr {
                entries: None,
                macroblock_bytes: 256,
            }),
        ),
    ] {
        timing::bench_samples(label, SAMPLES, || {
            black_box(CmpSystem::run_workload(
                &workload,
                &RunConfig::new(machine.clone(), proto.clone()),
            ))
        });
    }
}

fn bench_sp_ablations() {
    let workload = suite::ferret().generate(16, 7);
    let machine = MachineConfig::paper_16core();
    timing::group("ablation_ferret");
    let configs = [
        ("default", SpConfig::default()),
        (
            "d1",
            SpConfig {
                history_depth: 1,
                ..SpConfig::default()
            },
        ),
        (
            "no_stride2",
            SpConfig {
                stride2_detection: false,
                ..SpConfig::default()
            },
        ),
        (
            "th20",
            SpConfig {
                hot_threshold: 0.20,
                ..SpConfig::default()
            },
        ),
        (
            "capped_hot4",
            SpConfig {
                max_hot_set: Some(4),
                ..SpConfig::default()
            },
        ),
    ];
    for (label, cfg) in configs {
        timing::bench_samples(label, SAMPLES, || {
            black_box(CmpSystem::run_workload(
                &workload,
                &RunConfig::new(
                    machine.clone(),
                    ProtocolKind::Predicted(PredictorKind::Sp(cfg.clone())),
                ),
            ))
        });
    }
}

fn bench_workload_generation() {
    timing::group("workload_generation");
    for name in ["x264", "radiosity"] {
        let spec = suite::by_name(name).expect("known");
        timing::bench_samples(name, SAMPLES * 4, || black_box(spec.generate(16, 7)));
    }
}

fn main() {
    bench_protocols();
    bench_sp_ablations();
    bench_workload_generation();
}
