//! Criterion end-to-end benchmarks: whole-machine simulation throughput
//! per protocol, plus the ablation sweeps of DESIGN.md §5 measured as
//! accuracy-vs-time trade-offs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use spcp_core::SpConfig;
use spcp_system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
use spcp_workloads::suite;

fn bench_protocols(c: &mut Criterion) {
    let workload = suite::x264().generate(16, 7);
    let machine = MachineConfig::paper_16core();
    let mut g = c.benchmark_group("full_run_x264");
    g.sample_size(10);
    for (label, proto) in [
        ("directory", ProtocolKind::Directory),
        ("broadcast", ProtocolKind::Broadcast),
        ("sp", ProtocolKind::Predicted(PredictorKind::sp_default())),
        (
            "addr",
            ProtocolKind::Predicted(PredictorKind::Addr {
                entries: None,
                macroblock_bytes: 256,
            }),
        ),
    ] {
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                black_box(CmpSystem::run_workload(
                    &workload,
                    &RunConfig::new(machine.clone(), proto.clone()),
                ))
            })
        });
    }
    g.finish();
}

fn bench_sp_ablations(c: &mut Criterion) {
    let workload = suite::ferret().generate(16, 7);
    let machine = MachineConfig::paper_16core();
    let mut g = c.benchmark_group("ablation_ferret");
    g.sample_size(10);
    let configs = [
        ("default", SpConfig::default()),
        ("d1", SpConfig { history_depth: 1, ..SpConfig::default() }),
        ("no_stride2", SpConfig { stride2_detection: false, ..SpConfig::default() }),
        ("th20", SpConfig { hot_threshold: 0.20, ..SpConfig::default() }),
        ("capped_hot4", SpConfig { max_hot_set: Some(4), ..SpConfig::default() }),
    ];
    for (label, cfg) in configs {
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                black_box(CmpSystem::run_workload(
                    &workload,
                    &RunConfig::new(
                        machine.clone(),
                        ProtocolKind::Predicted(PredictorKind::Sp(cfg.clone())),
                    ),
                ))
            })
        });
    }
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_generation");
    g.sample_size(20);
    for name in ["x264", "radiosity"] {
        let spec = suite::by_name(name).expect("known");
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(spec.generate(16, 7)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_protocols, bench_sp_ablations, bench_workload_generation);
criterion_main!(benches);
