//! Criterion micro-benchmarks of the core data structures: predictor
//! operations (the per-miss and per-sync-point costs the paper's §5.5 power
//! argument rests on), cache lookups, and NoC routing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spcp_baselines::{AddrPredictor, GroupEntry, InstPredictor, UniPredictor};
use spcp_core::{
    AccessKind, CommCounters, MissInfo, PredictionOutcome, SpConfig, SpPredictor, SpTable,
    TargetPredictor,
};
use spcp_mem::{BlockAddr, CacheConfig, SetAssocCache};
use spcp_noc::{Fabric, Mesh, MsgKind, NocConfig};
use spcp_sim::{CoreId, CoreSet, Cycle};
use spcp_sync::{EpochId, StaticSyncId, SyncKind, SyncPoint};

fn miss(i: u64) -> MissInfo {
    MissInfo::new(BlockAddr::from_index(i), (i as u32 % 64) * 4, AccessKind::Read)
}

fn bench_sp_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("sp_predictor");
    // The SP-table is touched only on sync-points; misses hit a register.
    g.bench_function("predict_per_miss", |b| {
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        p.on_sync_point(SyncPoint::barrier(StaticSyncId::new(1)), None);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(p.predict(&miss(i)))
        });
    });
    g.bench_function("train_per_miss", |b| {
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        p.on_sync_point(SyncPoint::barrier(StaticSyncId::new(1)), None);
        let outcome = PredictionOutcome {
            actual: CoreSet::from_bits(0b10),
            predicted: CoreSet::from_bits(0b10),
            sufficient: true,
        };
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            p.train(&miss(i), black_box(outcome));
        });
    });
    g.bench_function("sync_point_transition", |b| {
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 30;
            p.on_sync_point(SyncPoint::barrier(StaticSyncId::new(i)), None);
        });
    });
    g.finish();
}

fn bench_sp_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("sp_table");
    let id = |i: u32| EpochId {
        kind: SyncKind::Barrier,
        static_id: StaticSyncId::new(i),
    };
    g.bench_function("store", |b| {
        let mut t = SpTable::new(2, None);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 30;
            t.store(id(i), CoreSet::from_bits(i as u64));
        });
    });
    g.bench_function("history_lookup", |b| {
        let mut t = SpTable::new(2, None);
        for i in 0..30 {
            t.store(id(i), CoreSet::from_bits(i as u64));
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 30;
            black_box(t.history(id(i)).is_some())
        });
    });
    g.finish();
}

fn bench_comm_counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("comm_counters");
    g.bench_function("record", |b| {
        let mut counters = CommCounters::new(16);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 16;
            counters.record(CoreId::new(i));
        });
    });
    g.bench_function("hot_set_extraction", |b| {
        let mut counters = CommCounters::new(16);
        for i in 0..16 {
            for _ in 0..(i * 7 % 40) {
                counters.record(CoreId::new(i));
            }
        }
        b.iter(|| black_box(counters.hot_set(0.10, None)));
    });
    g.finish();
}

fn bench_comparison_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_predictors");
    let outcome = PredictionOutcome {
        actual: CoreSet::from_bits(0b100),
        predicted: CoreSet::empty(),
        sufficient: false,
    };
    g.bench_function("addr_predict_and_train", |b| {
        let mut p = AddrPredictor::unlimited(CoreId::new(0), 16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let m = miss(i % 4096);
            black_box(p.predict(&m));
            p.train(&m, outcome);
        });
    });
    g.bench_function("inst_predict_and_train", |b| {
        let mut p = InstPredictor::unlimited(CoreId::new(0), 16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let m = miss(i % 4096);
            black_box(p.predict(&m));
            p.train(&m, outcome);
        });
    });
    g.bench_function("uni_predict_and_train", |b| {
        let mut p = UniPredictor::new(CoreId::new(0), 16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let m = miss(i);
            black_box(p.predict(&m));
            p.train(&m, outcome);
        });
    });
    g.bench_function("group_entry_train_up", |b| {
        let mut e = GroupEntry::new(16);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 16;
            e.train_up(CoreId::new(i));
        });
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("l2_cache");
    g.bench_function("hit_lookup", |b| {
        let mut l2: SetAssocCache<u8> = SetAssocCache::new(CacheConfig::l2_1mb());
        for i in 0..4096 {
            l2.insert(BlockAddr::from_index(i), 0);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            black_box(l2.lookup(BlockAddr::from_index(i)).is_some())
        });
    });
    g.bench_function("insert_with_eviction", |b| {
        let mut l2: SetAssocCache<u8> = SetAssocCache::new(CacheConfig::l1_16kb());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(l2.insert(BlockAddr::from_index(i), 0))
        });
    });
    g.finish();
}

fn bench_noc(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc");
    g.bench_function("route_computation", |b| {
        let mesh = Mesh::new(4, 4);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 256;
            black_box(mesh.route(CoreId::new(i / 16), CoreId::new(i % 16)))
        });
    });
    g.bench_function("timed_send", |b| {
        let mut fabric = Fabric::new(NocConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(fabric.send(
                CoreId::new((i % 16) as usize),
                CoreId::new(((i * 7) % 16) as usize),
                MsgKind::DataResponse,
                Cycle::new(i),
            ))
        });
    });
    g.finish();
}

fn bench_trace_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_codec");
    let events: Vec<spcp_trace::TraceEvent> = (0..1000)
        .map(|i| spcp_trace::TraceEvent::Miss {
            core: CoreId::new(i % 16),
            block: spcp_mem::BlockAddr::from_index(i as u64 * 7),
            pc: (i as u32) * 4,
            kind: AccessKind::Read,
            targets: CoreSet::from_bits((i as u64) % 65536),
        })
        .collect();
    g.bench_function("write_1k_events", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(32 * 1024);
            spcp_trace::write_trace(&mut buf, &events).expect("in-memory write");
            black_box(buf)
        })
    });
    let mut encoded = Vec::new();
    spcp_trace::write_trace(&mut encoded, &events).unwrap();
    g.bench_function("read_1k_events", |b| {
        b.iter(|| black_box(spcp_trace::read_trace(encoded.as_slice()).expect("parse")))
    });
    g.finish();
}

fn bench_workload_tools(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_tools");
    const SPEC: &str = "benchmark bench
phase 4
  epoch 1 stable 2
    traffic 32 32
    private 8
  epoch 2 random
    cs 0 2 1 4
end
";
    g.bench_function("textspec_parse", |b| {
        b.iter(|| black_box(spcp_workloads::textspec::parse_spec(SPEC).expect("valid")))
    });
    g.finish();
}

fn bench_flit_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("flit_network");
    g.bench_function("step_under_load", |b| {
        let mut net = spcp_noc::flit::FlitNetwork::new(&spcp_noc::NocConfig::default());
        let mut delivered = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let src = (i % 16) as usize;
            let dst = ((i * 7) % 16) as usize;
            if src != dst {
                net.inject(CoreId::new(src), CoreId::new(dst), 2, i);
            }
            net.step(&mut delivered);
            delivered.clear();
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sp_predictor,
    bench_sp_table,
    bench_comm_counters,
    bench_comparison_predictors,
    bench_cache,
    bench_noc,
    bench_trace_codec,
    bench_workload_tools,
    bench_flit_network
);
criterion_main!(benches);
