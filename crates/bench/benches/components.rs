//! Micro-benchmarks of the core data structures: predictor operations (the
//! per-miss and per-sync-point costs the paper's §5.5 power argument rests
//! on), cache lookups, and NoC routing.
//!
//! Uses the dependency-free `spcp_bench::timing` runner so the workspace
//! builds offline. Run with `cargo bench -p spcp-bench --bench components`.

use std::hint::black_box;

use spcp_baselines::{AddrPredictor, GroupEntry, InstPredictor, UniPredictor};
use spcp_bench::timing;
use spcp_core::{
    AccessKind, CommCounters, MissInfo, PredictionOutcome, SpConfig, SpPredictor, SpTable,
    TargetPredictor,
};
use spcp_mem::{BlockAddr, CacheConfig, SetAssocCache};
use spcp_noc::{Fabric, Mesh, MsgKind, NocConfig};
use spcp_sim::{CoreId, CoreSet, Cycle};
use spcp_sync::{EpochId, StaticSyncId, SyncKind, SyncPoint};

fn miss(i: u64) -> MissInfo {
    MissInfo::new(
        BlockAddr::from_index(i),
        (i as u32 % 64) * 4,
        AccessKind::Read,
    )
}

fn bench_sp_predictor() {
    timing::group("sp_predictor");
    // The SP-table is touched only on sync-points; misses hit a register.
    {
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        p.on_sync_point(SyncPoint::barrier(StaticSyncId::new(1)), None);
        let mut i = 0u64;
        timing::bench("predict_per_miss", || {
            i += 1;
            black_box(p.predict(&miss(i)))
        });
    }
    {
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        p.on_sync_point(SyncPoint::barrier(StaticSyncId::new(1)), None);
        let outcome = PredictionOutcome {
            actual: CoreSet::from_bits(0b10),
            predicted: CoreSet::from_bits(0b10),
            sufficient: true,
        };
        let mut i = 0u64;
        timing::bench("train_per_miss", || {
            i += 1;
            p.train(&miss(i), black_box(outcome));
        });
    }
    {
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        let mut i = 0u32;
        timing::bench("sync_point_transition", || {
            i = (i + 1) % 30;
            p.on_sync_point(SyncPoint::barrier(StaticSyncId::new(i)), None);
        });
    }
}

fn bench_sp_table() {
    timing::group("sp_table");
    let id = |i: u32| EpochId {
        kind: SyncKind::Barrier,
        static_id: StaticSyncId::new(i),
    };
    {
        let mut t = SpTable::new(2, None);
        let mut i = 0u32;
        timing::bench("store", || {
            i = (i + 1) % 30;
            t.store(id(i), CoreSet::from_bits(i as u64));
        });
    }
    {
        let mut t = SpTable::new(2, None);
        for i in 0..30 {
            t.store(id(i), CoreSet::from_bits(i as u64));
        }
        let mut i = 0u32;
        timing::bench("history_lookup", || {
            i = (i + 1) % 30;
            black_box(t.history(id(i)).is_some())
        });
    }
}

fn bench_comm_counters() {
    timing::group("comm_counters");
    {
        let mut counters = CommCounters::new(16);
        let mut i = 0usize;
        timing::bench("record", || {
            i = (i + 1) % 16;
            counters.record(CoreId::new(i));
        });
    }
    {
        let mut counters = CommCounters::new(16);
        for i in 0..16 {
            for _ in 0..(i * 7 % 40) {
                counters.record(CoreId::new(i));
            }
        }
        timing::bench("hot_set_extraction", || {
            black_box(counters.hot_set(0.10, None))
        });
    }
}

fn bench_comparison_predictors() {
    timing::group("baseline_predictors");
    let outcome = PredictionOutcome {
        actual: CoreSet::from_bits(0b100),
        predicted: CoreSet::empty(),
        sufficient: false,
    };
    {
        let mut p = AddrPredictor::unlimited(CoreId::new(0), 16);
        let mut i = 0u64;
        timing::bench("addr_predict_and_train", || {
            i += 1;
            let m = miss(i % 4096);
            black_box(p.predict(&m));
            p.train(&m, outcome);
        });
    }
    {
        let mut p = InstPredictor::unlimited(CoreId::new(0), 16);
        let mut i = 0u64;
        timing::bench("inst_predict_and_train", || {
            i += 1;
            let m = miss(i % 4096);
            black_box(p.predict(&m));
            p.train(&m, outcome);
        });
    }
    {
        let mut p = UniPredictor::new(CoreId::new(0), 16);
        let mut i = 0u64;
        timing::bench("uni_predict_and_train", || {
            i += 1;
            let m = miss(i);
            black_box(p.predict(&m));
            p.train(&m, outcome);
        });
    }
    {
        let mut e = GroupEntry::new(16);
        let mut i = 0usize;
        timing::bench("group_entry_train_up", || {
            i = (i + 1) % 16;
            e.train_up(CoreId::new(i));
        });
    }
}

fn bench_cache() {
    timing::group("l2_cache");
    {
        let mut l2: SetAssocCache<u8> = SetAssocCache::new(CacheConfig::l2_1mb());
        for i in 0..4096 {
            l2.insert(BlockAddr::from_index(i), 0);
        }
        let mut i = 0u64;
        timing::bench("hit_lookup", || {
            i = (i + 1) % 4096;
            black_box(l2.lookup(BlockAddr::from_index(i)).is_some())
        });
    }
    {
        let mut l2: SetAssocCache<u8> = SetAssocCache::new(CacheConfig::l1_16kb());
        let mut i = 0u64;
        timing::bench("insert_with_eviction", || {
            i += 1;
            black_box(l2.insert(BlockAddr::from_index(i), 0))
        });
    }
}

fn bench_noc() {
    timing::group("noc");
    {
        let mesh = Mesh::new(4, 4);
        let mut i = 0usize;
        timing::bench("route_computation", || {
            i = (i + 1) % 256;
            black_box(mesh.route(CoreId::new(i / 16), CoreId::new(i % 16)))
        });
    }
    {
        let mut fabric = Fabric::new(NocConfig::default());
        let mut i = 0u64;
        timing::bench("timed_send", || {
            i += 1;
            black_box(fabric.send(
                CoreId::new((i % 16) as usize),
                CoreId::new(((i * 7) % 16) as usize),
                MsgKind::DataResponse,
                Cycle::new(i),
            ))
        });
    }
}

fn bench_trace_codec() {
    timing::group("trace_codec");
    let events: Vec<spcp_trace::TraceEvent> = (0..1000)
        .map(|i| spcp_trace::TraceEvent::Miss {
            core: CoreId::new(i % 16),
            block: spcp_mem::BlockAddr::from_index(i as u64 * 7),
            pc: (i as u32) * 4,
            kind: AccessKind::Read,
            targets: CoreSet::from_bits((i as u64) % 65536),
        })
        .collect();
    timing::bench("write_1k_events", || {
        let mut buf = Vec::with_capacity(32 * 1024);
        spcp_trace::write_trace(&mut buf, &events).expect("in-memory write");
        black_box(buf)
    });
    let mut encoded = Vec::new();
    spcp_trace::write_trace(&mut encoded, &events).unwrap();
    timing::bench("read_1k_events", || {
        black_box(spcp_trace::read_trace(encoded.as_slice()).expect("parse"))
    });
}

fn bench_workload_tools() {
    timing::group("workload_tools");
    const SPEC: &str = "benchmark bench
phase 4
  epoch 1 stable 2
    traffic 32 32
    private 8
  epoch 2 random
    cs 0 2 1 4
end
";
    timing::bench("textspec_parse", || {
        black_box(spcp_workloads::textspec::parse_spec(SPEC).expect("valid"))
    });
}

fn bench_flit_network() {
    timing::group("flit_network");
    let mut net = spcp_noc::flit::FlitNetwork::new(&spcp_noc::NocConfig::default());
    let mut delivered = Vec::new();
    let mut i = 0u64;
    timing::bench("step_under_load", || {
        i += 1;
        let src = (i % 16) as usize;
        let dst = ((i * 7) % 16) as usize;
        if src != dst {
            net.inject(CoreId::new(src), CoreId::new(dst), 2, i);
        }
        net.step(&mut delivered);
        delivered.clear();
    });
}

fn main() {
    bench_sp_predictor();
    bench_sp_table();
    bench_comm_counters();
    bench_comparison_predictors();
    bench_cache();
    bench_noc();
    bench_trace_codec();
    bench_workload_tools();
    bench_flit_network();
}
