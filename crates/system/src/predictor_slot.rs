//! The per-tile predictor socket.

use crate::config::PredictorKind;
use crate::oracle::OracleBook;
use spcp_baselines::{AddrPredictor, InstPredictor, UniPredictor};
use spcp_core::{
    MissInfo, PredictionOutcome, SharedLockTable, SpPredictor, SpStats, TargetPredictor,
};
use spcp_sim::{CoreId, CoreSet};
use spcp_sync::{EpochId, EpochTracker, SyncPoint};

/// A concrete predictor plugged into one tile's L2 controller.
///
/// An enum (rather than a trait object) so the machine can reach
/// scheme-specific state — notably [`SpStats`] for the Figure 7 breakdown
/// and the per-instance bookkeeping of the oracle.
// One slot exists per core for the lifetime of a run; the size spread
// between variants is irrelevant at that population.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum PredictorSlot {
    /// No prediction: baseline directory behaviour.
    None,
    /// SP-prediction (the paper's scheme).
    Sp(SpPredictor),
    /// Address-based group predictor.
    Addr(AddrPredictor),
    /// Instruction-based group predictor.
    Inst(InstPredictor),
    /// Single-entry locality predictor.
    Uni(UniPredictor),
    /// A priori hot sets from a recording run.
    Oracle {
        /// The recorded book (shared clone per tile).
        book: OracleBook,
        /// This tile's core.
        me: CoreId,
        /// Epoch tracking to know the current instance.
        tracker: EpochTracker,
        /// Currently active hot set.
        active: CoreSet,
    },
}

impl PredictorSlot {
    /// Instantiates the predictor `kind` for core `me` with the group
    /// policy.
    pub fn build(
        kind: &PredictorKind,
        me: CoreId,
        num_cores: usize,
        locks: &SharedLockTable,
    ) -> Self {
        Self::build_with_policy(kind, me, num_cores, locks, spcp_baselines::SetPolicy::Group)
    }

    /// Instantiates the predictor `kind` for core `me` under the given
    /// destination-set policy (applies to the comparison predictors; SP and
    /// the oracle are unaffected).
    pub fn build_with_policy(
        kind: &PredictorKind,
        me: CoreId,
        num_cores: usize,
        locks: &SharedLockTable,
        policy: spcp_baselines::SetPolicy,
    ) -> Self {
        match kind {
            PredictorKind::Sp(cfg) => PredictorSlot::Sp(SpPredictor::with_lock_table(
                me,
                num_cores,
                cfg.clone(),
                std::rc::Rc::clone(locks),
            )),
            PredictorKind::Addr {
                entries,
                macroblock_bytes,
            } => PredictorSlot::Addr(
                AddrPredictor::with_capacity(me, num_cores, *entries, *macroblock_bytes)
                    .set_policy(policy),
            ),
            PredictorKind::Inst { entries } => PredictorSlot::Inst(
                InstPredictor::with_capacity(me, num_cores, *entries).set_policy(policy),
            ),
            PredictorKind::Uni => {
                PredictorSlot::Uni(UniPredictor::new(me, num_cores).set_policy(policy))
            }
            PredictorKind::Oracle(book) => PredictorSlot::Oracle {
                book: book.clone(),
                me,
                tracker: EpochTracker::new(),
                active: CoreSet::empty(),
            },
        }
    }

    /// Whether any prediction scheme is active.
    pub fn is_some(&self) -> bool {
        !matches!(self, PredictorSlot::None)
    }

    /// Predicts targets for a miss.
    pub fn predict(&mut self, miss: &MissInfo) -> CoreSet {
        match self {
            PredictorSlot::None => CoreSet::empty(),
            PredictorSlot::Sp(p) => p.predict(miss),
            PredictorSlot::Addr(p) => p.predict(miss),
            PredictorSlot::Inst(p) => p.predict(miss),
            PredictorSlot::Uni(p) => p.predict(miss),
            PredictorSlot::Oracle { active, me, .. } => {
                let mut s = *active;
                s.remove(*me);
                s
            }
        }
    }

    /// Trains on a completed miss.
    pub fn train(&mut self, miss: &MissInfo, outcome: PredictionOutcome) {
        match self {
            PredictorSlot::None | PredictorSlot::Oracle { .. } => {}
            PredictorSlot::Sp(p) => p.train(miss, outcome),
            PredictorSlot::Addr(p) => p.train(miss, outcome),
            PredictorSlot::Inst(p) => p.train(miss, outcome),
            PredictorSlot::Uni(p) => p.train(miss, outcome),
        }
    }

    /// Sync-point notification.
    pub fn on_sync_point(&mut self, point: SyncPoint, prev_lock_holder: Option<CoreId>) {
        match self {
            PredictorSlot::None => {}
            PredictorSlot::Sp(p) => p.on_sync_point(point, prev_lock_holder),
            PredictorSlot::Addr(p) => p.on_sync_point(point, prev_lock_holder),
            PredictorSlot::Inst(p) => p.on_sync_point(point, prev_lock_holder),
            PredictorSlot::Uni(p) => p.on_sync_point(point, prev_lock_holder),
            PredictorSlot::Oracle {
                book,
                me,
                tracker,
                active,
            } => {
                let tr = tracker.observe(point);
                let id: EpochId = tr.started.id;
                *active = book
                    .hot_set(*me, id, tr.started.instance)
                    .unwrap_or(CoreSet::empty());
            }
        }
    }

    /// Remote-request observation (ADDR/INST training stream).
    pub fn observe_remote_request(&mut self, miss: &MissInfo, requester: CoreId) {
        match self {
            PredictorSlot::Addr(p) => p.observe_remote_request(miss, requester),
            PredictorSlot::Inst(p) => p.observe_remote_request(miss, requester),
            _ => {}
        }
    }

    /// Current storage occupancy in bits.
    pub fn storage_bits(&self) -> u64 {
        match self {
            PredictorSlot::None | PredictorSlot::Oracle { .. } => 0,
            PredictorSlot::Sp(p) => p.storage_bits(),
            PredictorSlot::Addr(p) => p.storage_bits(),
            PredictorSlot::Inst(p) => p.storage_bits(),
            PredictorSlot::Uni(p) => p.storage_bits(),
        }
    }

    /// SP statistics, when this slot is an SP-predictor.
    pub fn sp_stats(&self) -> Option<SpStats> {
        match self {
            PredictorSlot::Sp(p) => Some(*p.stats()),
            _ => None,
        }
    }

    /// Pre-seeds an SP-table entry (no-op for other schemes).
    pub fn preload(&mut self, id: EpochId, signature: CoreSet) {
        if let PredictorSlot::Sp(p) = self {
            p.preload(id, signature);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcp_core::{shared_lock_table, AccessKind, SpConfig};
    use spcp_mem::BlockAddr;
    use spcp_sync::StaticSyncId;

    fn miss() -> MissInfo {
        MissInfo::new(BlockAddr::from_index(1), 0x4, AccessKind::Read)
    }

    #[test]
    fn none_slot_never_predicts() {
        let mut s = PredictorSlot::None;
        assert!(!s.is_some());
        assert!(s.predict(&miss()).is_empty());
        assert_eq!(s.storage_bits(), 0);
        assert!(s.sp_stats().is_none());
    }

    #[test]
    fn build_dispatches_kinds() {
        let locks = shared_lock_table(2);
        let me = CoreId::new(0);
        let kinds = [
            PredictorKind::Sp(SpConfig::default()),
            PredictorKind::Addr {
                entries: None,
                macroblock_bytes: 256,
            },
            PredictorKind::Inst { entries: Some(8) },
            PredictorKind::Uni,
        ];
        for k in kinds {
            let slot = PredictorSlot::build(&k, me, 16, &locks);
            assert!(slot.is_some(), "{}", k.name());
        }
    }

    #[test]
    fn oracle_replays_recorded_hot_sets() {
        use crate::metrics::EpochRecord;
        use spcp_sync::SyncKind;
        let mut volumes = vec![0u32; 16];
        volumes[9] = 50;
        let records = vec![vec![EpochRecord {
            id: EpochId {
                kind: SyncKind::Barrier,
                static_id: StaticSyncId::new(1),
            },
            instance: 0,
            volumes,
            miss_targets: Vec::new(),
        }]];
        let book = OracleBook::from_records(&records, 0.1);
        let locks = shared_lock_table(2);
        let mut slot =
            PredictorSlot::build(&PredictorKind::Oracle(book), CoreId::new(0), 16, &locks);
        slot.on_sync_point(SyncPoint::barrier(StaticSyncId::new(1)), None);
        assert_eq!(slot.predict(&miss()), CoreSet::single(CoreId::new(9)));
        // Second instance was never recorded -> empty prediction.
        slot.on_sync_point(SyncPoint::barrier(StaticSyncId::new(1)), None);
        assert!(slot.predict(&miss()).is_empty());
    }

    #[test]
    fn sp_slot_exposes_stats() {
        let locks = shared_lock_table(2);
        let slot = PredictorSlot::build(&PredictorKind::sp_default(), CoreId::new(0), 16, &locks);
        assert!(slot.sp_stats().is_some());
    }
}
