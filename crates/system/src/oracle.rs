//! The oracle predictor: replays a priori known per-instance hot sets.
//!
//! Figure 7 marks, per benchmark, the accuracy SP-prediction *could* reach
//! "if the hot communication set for each sync-epoch was known a priori".
//! We realize that bound with a two-pass methodology: a recording run
//! captures every epoch instance's communication distribution (see
//! [`crate::EpochRecord`]); the oracle run then predicts each instance with
//! its own eventual hot set.

use crate::metrics::EpochRecord;
use spcp_sim::{CoreId, CoreSet};
use spcp_sync::EpochId;
use std::collections::HashMap;

/// A priori hot sets: `(core, static epoch, instance) → hot set`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OracleBook {
    hot_sets: HashMap<(usize, EpochId, u64), CoreSet>,
}

impl OracleBook {
    /// Builds the book from a recording run's epoch records, extracting hot
    /// sets at `threshold`.
    pub fn from_records(records: &[Vec<EpochRecord>], threshold: f64) -> Self {
        let mut hot_sets = HashMap::new();
        for (core, recs) in records.iter().enumerate() {
            for r in recs {
                hot_sets.insert((core, r.id, r.instance), r.hot_set(threshold));
            }
        }
        OracleBook { hot_sets }
    }

    /// The a priori hot set for an instance, if recorded.
    pub fn hot_set(&self, core: CoreId, id: EpochId, instance: u64) -> Option<CoreSet> {
        self.hot_sets.get(&(core.index(), id, instance)).copied()
    }

    /// Iterates over every recorded `(core, epoch, instance, hot set)`.
    pub fn iter(&self) -> impl Iterator<Item = (CoreId, EpochId, u64, CoreSet)> + '_ {
        self.hot_sets
            .iter()
            .map(|(&(c, id, i), &s)| (CoreId::new(c), id, i, s))
    }

    /// Number of recorded instances.
    pub fn len(&self) -> usize {
        self.hot_sets.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.hot_sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcp_sync::{StaticSyncId, SyncKind};

    fn eid(raw: u32) -> EpochId {
        EpochId {
            kind: SyncKind::Barrier,
            static_id: StaticSyncId::new(raw),
        }
    }

    #[test]
    fn builds_from_records() {
        let mut volumes = vec![0u32; 16];
        volumes[3] = 100;
        let records = vec![vec![EpochRecord {
            id: eid(1),
            instance: 2,
            volumes,
            miss_targets: Vec::new(),
        }]];
        let book = OracleBook::from_records(&records, 0.10);
        assert_eq!(book.len(), 1);
        let hot = book.hot_set(CoreId::new(0), eid(1), 2).unwrap();
        assert_eq!(hot, CoreSet::single(CoreId::new(3)));
        assert!(book.hot_set(CoreId::new(1), eid(1), 2).is_none());
        assert!(book.hot_set(CoreId::new(0), eid(1), 3).is_none());
    }

    #[test]
    fn empty_book() {
        let book = OracleBook::default();
        assert!(book.is_empty());
        assert!(book.hot_set(CoreId::new(0), eid(1), 0).is_none());
    }
}
