//! The synchronization runtime: global barriers and queued locks.

use spcp_sim::{CoreId, Cycle};
use spcp_sync::LockId;
use std::collections::{HashMap, VecDeque};

/// A rendezvous barrier over `n` cores.
///
/// All threads of a generated workload execute the same barrier sequence,
/// so one shared arrival counter per "current" barrier suffices: a core
/// arrives, and once all `n` have arrived everybody is released at the
/// latest arrival time plus a fixed release cost.
#[derive(Debug)]
pub struct BarrierState {
    arrived: Vec<Option<Cycle>>,
    release_cost: u64,
}

impl BarrierState {
    /// Creates the barrier runtime for `n` cores.
    pub fn new(n: usize, release_cost: u64) -> Self {
        BarrierState {
            arrived: vec![None; n],
            release_cost,
        }
    }

    /// Records `core` arriving at the current barrier at `time`.
    ///
    /// Returns `Some(release_time)` when this arrival completes the
    /// rendezvous (the caller then wakes every participant and the barrier
    /// resets); `None` while others are still running.
    ///
    /// # Panics
    ///
    /// Panics if the core arrives twice at the same barrier generation.
    pub fn arrive(&mut self, core: CoreId, time: Cycle) -> Option<Cycle> {
        assert!(
            self.arrived[core.index()].is_none(),
            "{core} arrived twice at one barrier generation"
        );
        self.arrived[core.index()] = Some(time);
        if self.arrived.iter().all(|a| a.is_some()) {
            let latest = self
                .arrived
                .iter()
                .map(|a| a.expect("all arrived"))
                .max()
                .expect("n > 0");
            // Reset in place: barrier generations must not allocate.
            self.arrived.fill(None);
            Some(latest + self.release_cost)
        } else {
            None
        }
    }

    /// Number of cores currently waiting.
    pub fn waiting(&self) -> usize {
        self.arrived.iter().filter(|a| a.is_some()).count()
    }
}

/// The machine's lock runtime: FIFO-queued mutexes with holder tracking.
#[derive(Debug, Default)]
pub struct LockRuntime {
    /// `lock -> (current holder, release time if released)`.
    holder: HashMap<LockId, CoreId>,
    /// Pending acquirers in arrival order.
    queue: HashMap<LockId, VecDeque<(CoreId, Cycle)>>,
    /// Most recent releaser of each lock.
    last_holder: HashMap<LockId, CoreId>,
    /// Time at which each lock was last released.
    free_at: HashMap<LockId, Cycle>,
    transfer_cost: u64,
}

/// The outcome of an acquire attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// The lock was granted at the given time.
    Granted {
        /// When the core owns the lock.
        at: Cycle,
        /// Who held the lock before (None for first acquisition).
        prev_holder: Option<CoreId>,
    },
    /// The lock is held; the core is queued and will be woken on release.
    Queued,
}

impl LockRuntime {
    /// Creates the runtime with the machine's lock-transfer cost.
    pub fn new(transfer_cost: u64) -> Self {
        LockRuntime {
            transfer_cost,
            ..LockRuntime::default()
        }
    }

    /// `core` attempts to acquire `lock` at `time`.
    pub fn acquire(&mut self, lock: LockId, core: CoreId, time: Cycle) -> Acquire {
        if self.holder.contains_key(&lock) {
            self.queue.entry(lock).or_default().push_back((core, time));
            return Acquire::Queued;
        }
        self.holder.insert(lock, core);
        let free_at = self.free_at.get(&lock).copied().unwrap_or(Cycle::ZERO);
        let prev = self.last_holder.get(&lock).copied();
        let cost = if prev.is_some() {
            self.transfer_cost
        } else {
            0
        };
        Acquire::Granted {
            at: time.max(free_at) + cost,
            prev_holder: prev,
        }
    }

    /// `core` releases `lock` at `time`.
    ///
    /// Returns the next grant `(core, grant_time, prev_holder)` when a
    /// waiter was queued; the caller wakes that core.
    ///
    /// # Panics
    ///
    /// Panics if `core` does not hold `lock`.
    pub fn release(
        &mut self,
        lock: LockId,
        core: CoreId,
        time: Cycle,
    ) -> Option<(CoreId, Cycle, CoreId)> {
        let h = self.holder.remove(&lock);
        assert_eq!(h, Some(core), "release by non-holder");
        self.last_holder.insert(lock, core);
        self.free_at.insert(lock, time);
        let (next, arrived) = self.queue.get_mut(&lock).and_then(|q| q.pop_front())?;
        self.holder.insert(lock, next);
        let grant = time.max(arrived) + self.transfer_cost;
        Some((next, grant, core))
    }

    /// The previous holder of `lock`, if any.
    pub fn last_holder(&self, lock: LockId) -> Option<CoreId> {
        self.last_holder.get(&lock).copied()
    }

    /// Whether `lock` is currently held.
    pub fn is_held(&self, lock: LockId) -> bool {
        self.holder.contains_key(&lock)
    }

    /// Number of cores waiting on `lock`.
    pub fn waiters(&self, lock: LockId) -> usize {
        self.queue.get(&lock).map(|q| q.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn barrier_releases_at_latest_arrival() {
        let mut b = BarrierState::new(3, 10);
        assert_eq!(b.arrive(core(0), Cycle::new(5)), None);
        assert_eq!(b.arrive(core(2), Cycle::new(50)), None);
        assert_eq!(b.waiting(), 2);
        let rel = b.arrive(core(1), Cycle::new(20)).unwrap();
        assert_eq!(rel, Cycle::new(60));
        assert_eq!(b.waiting(), 0, "barrier resets for the next generation");
    }

    #[test]
    fn barrier_reusable_across_generations() {
        let mut b = BarrierState::new(2, 0);
        assert!(b.arrive(core(0), Cycle::new(1)).is_none());
        assert!(b.arrive(core(1), Cycle::new(2)).is_some());
        assert!(b.arrive(core(1), Cycle::new(3)).is_none());
        assert!(b.arrive(core(0), Cycle::new(9)).is_some());
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_panics() {
        let mut b = BarrierState::new(2, 0);
        b.arrive(core(0), Cycle::new(1));
        b.arrive(core(0), Cycle::new(2));
    }

    #[test]
    fn first_acquire_is_free_and_untransferred() {
        let mut l = LockRuntime::new(20);
        let lock = LockId::new(1);
        match l.acquire(lock, core(0), Cycle::new(100)) {
            Acquire::Granted { at, prev_holder } => {
                assert_eq!(at, Cycle::new(100), "no transfer cost on first touch");
                assert_eq!(prev_holder, None);
            }
            Acquire::Queued => panic!("free lock must grant"),
        }
        assert!(l.is_held(lock));
    }

    #[test]
    fn contended_lock_queues_and_grants_fifo() {
        let mut l = LockRuntime::new(20);
        let lock = LockId::new(1);
        l.acquire(lock, core(0), Cycle::new(0));
        assert_eq!(l.acquire(lock, core(1), Cycle::new(5)), Acquire::Queued);
        assert_eq!(l.acquire(lock, core(2), Cycle::new(6)), Acquire::Queued);
        assert_eq!(l.waiters(lock), 2);
        let (next, grant, prev) = l.release(lock, core(0), Cycle::new(50)).unwrap();
        assert_eq!(next, core(1));
        assert_eq!(grant, Cycle::new(70)); // release + transfer
        assert_eq!(prev, core(0));
        assert_eq!(l.waiters(lock), 1);
        let (next, _, prev) = l.release(lock, core(1), Cycle::new(90)).unwrap();
        assert_eq!(next, core(2));
        assert_eq!(prev, core(1));
    }

    #[test]
    fn reacquire_after_release_pays_transfer() {
        let mut l = LockRuntime::new(20);
        let lock = LockId::new(2);
        l.acquire(lock, core(0), Cycle::new(0));
        assert!(l.release(lock, core(0), Cycle::new(30)).is_none());
        assert_eq!(l.last_holder(lock), Some(core(0)));
        match l.acquire(lock, core(1), Cycle::new(40)) {
            Acquire::Granted { at, prev_holder } => {
                assert_eq!(at, Cycle::new(60));
                assert_eq!(prev_holder, Some(core(0)));
            }
            Acquire::Queued => panic!("released lock must grant"),
        }
    }

    #[test]
    fn grant_waits_for_release_time() {
        let mut l = LockRuntime::new(10);
        let lock = LockId::new(3);
        l.acquire(lock, core(0), Cycle::new(0));
        l.release(lock, core(0), Cycle::new(100));
        // Acquirer shows up "earlier" than the release became visible.
        match l.acquire(lock, core(1), Cycle::new(50)) {
            Acquire::Granted { at, .. } => assert_eq!(at, Cycle::new(110)),
            Acquire::Queued => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn release_by_non_holder_panics() {
        let mut l = LockRuntime::new(0);
        l.acquire(LockId::new(1), core(0), Cycle::ZERO);
        l.release(LockId::new(1), core(1), Cycle::new(5));
    }
}
