//! Pure MESIF/MESI protocol transition functions.
//!
//! [`CmpSystem`](crate::CmpSystem) used to decide supplier selection,
//! target computation, and the post-transaction state/directory commit
//! inline in its timing code. Those decisions are side-effect free, so they
//! live here as pure functions of the directory entry and the requesting
//! access: the machine applies the returned [`CommitPlan`] to real caches
//! and the NoC, while `spcp-verify`'s model checker applies the *same*
//! functions to an abstract state space. Anything the checker proves (or
//! refutes) is therefore a statement about the code the simulator actually
//! runs, not about a parallel re-implementation.

use spcp_core::AccessKind;
use spcp_mem::{DirEntry, LineState};
use spcp_sim::{CoreId, CoreSet};

/// Which cache (if any) supplies data for the next request to a block.
///
/// Under MESIF the directory's recorded owner always supplies (the F state
/// forwards clean data). Under plain MESI a stale owner whose line degraded
/// to Shared cannot supply, so the owner only counts if its line is still
/// in a supplying state — `owner_state` reports the owner's current cached
/// state (`None` when the line is no longer resident).
pub fn supplier_of(
    entry: &DirEntry,
    mesif: bool,
    owner_state: impl FnOnce(CoreId) -> Option<LineState>,
) -> Option<CoreId> {
    entry
        .owner
        .filter(|&o| mesif || owner_state(o).map(|s| s.can_supply_data()).unwrap_or(false))
}

/// The cores a transaction must communicate with: the remote supplier for a
/// read, every other valid copy for a write or upgrade.
pub fn transaction_targets(
    kind: AccessKind,
    requester: CoreId,
    entry: &DirEntry,
    supplier: Option<CoreId>,
) -> CoreSet {
    match kind {
        AccessKind::Read => match supplier {
            Some(o) if o != requester => CoreSet::single(o),
            _ => CoreSet::empty(),
        },
        AccessKind::Write | AccessKind::Upgrade => entry.write_targets(requester),
    }
}

/// How the directory entry changes when a transaction commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirUpdate {
    /// Requester becomes owner and sole sharer (write/upgrade, or a read
    /// that found the block uncached).
    Exclusive,
    /// Requester joins the sharers and becomes the Forward-state owner
    /// (MESIF read of a cached block).
    Shared,
    /// Requester joins the sharers; no cache supplies afterwards (plain
    /// MESI read of a cached block).
    SharedNoForward,
}

/// The state changes a coherence transaction commits, as pure data.
///
/// Produced by [`commit_plan`]; applied to real caches by the machine and
/// to abstract states by the model checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitPlan {
    /// The requester's line state after the transaction.
    pub requester_state: LineState,
    /// Whether the line is newly installed in the requester's cache
    /// (`false` for upgrades, which mutate a resident line in place).
    pub installs_line: bool,
    /// A previous owner that degrades to a plain sharer, writing back first
    /// if dirty (read path only).
    pub downgraded_owner: Option<CoreId>,
    /// Remote copies that must be invalidated (write/upgrade path only).
    pub invalidated: CoreSet,
    /// The directory-side record of the transaction.
    pub dir_update: DirUpdate,
}

/// Signature of [`commit_plan`], so the model checker can be pointed at a
/// deliberately broken transition table in regression tests.
pub type CommitFn = fn(AccessKind, CoreId, &DirEntry, bool, CoreSet) -> CommitPlan;

/// Computes the commit-time state transition for one coherence transaction.
///
/// `entry` is the directory's view *before* the transaction, `targets` the
/// set from [`transaction_targets`], and `mesif` selects clean forwarding.
///
/// # Examples
///
/// ```
/// use spcp_core::AccessKind;
/// use spcp_mem::{DirEntry, LineState};
/// use spcp_sim::{CoreId, CoreSet};
/// use spcp_system::protocol::{commit_plan, DirUpdate};
///
/// // First read of an uncached block: requester gets it exclusively.
/// let plan = commit_plan(
///     AccessKind::Read,
///     CoreId::new(0),
///     &DirEntry::default(),
///     true,
///     CoreSet::empty(),
/// );
/// assert_eq!(plan.requester_state, LineState::Exclusive);
/// assert_eq!(plan.dir_update, DirUpdate::Exclusive);
/// ```
pub fn commit_plan(
    kind: AccessKind,
    requester: CoreId,
    entry: &DirEntry,
    mesif: bool,
    targets: CoreSet,
) -> CommitPlan {
    match kind {
        AccessKind::Read => {
            let alone = entry.sharers.is_empty();
            CommitPlan {
                requester_state: if alone {
                    LineState::Exclusive
                } else if mesif {
                    LineState::Forward
                } else {
                    LineState::Shared
                },
                installs_line: true,
                downgraded_owner: entry.owner.filter(|&o| o != requester),
                invalidated: CoreSet::empty(),
                dir_update: if alone {
                    DirUpdate::Exclusive
                } else if mesif {
                    DirUpdate::Shared
                } else {
                    DirUpdate::SharedNoForward
                },
            }
        }
        AccessKind::Write | AccessKind::Upgrade => CommitPlan {
            requester_state: LineState::Modified,
            installs_line: kind == AccessKind::Write,
            downgraded_owner: None,
            invalidated: targets,
            dir_update: DirUpdate::Exclusive,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(i: usize) -> CoreId {
        CoreId::new(i)
    }

    fn entry(owner: Option<usize>, sharers: &[usize]) -> DirEntry {
        DirEntry {
            owner: owner.map(CoreId::new),
            sharers: sharers.iter().map(|&i| CoreId::new(i)).collect(),
        }
    }

    #[test]
    fn mesif_owner_always_supplies() {
        let e = entry(Some(3), &[3, 5]);
        assert_eq!(supplier_of(&e, true, |_| None), Some(core(3)));
    }

    #[test]
    fn mesi_owner_supplies_only_from_supplying_state() {
        let e = entry(Some(3), &[3, 5]);
        assert_eq!(
            supplier_of(&e, false, |_| Some(LineState::Modified)),
            Some(core(3))
        );
        assert_eq!(supplier_of(&e, false, |_| Some(LineState::Shared)), None);
        assert_eq!(supplier_of(&e, false, |_| None), None);
    }

    #[test]
    fn read_targets_remote_supplier_only() {
        let e = entry(Some(2), &[2]);
        assert_eq!(
            transaction_targets(AccessKind::Read, core(0), &e, Some(core(2))),
            CoreSet::single(core(2))
        );
        // The supplier itself (impossible in practice) and the no-supplier
        // case both resolve from memory.
        assert!(transaction_targets(AccessKind::Read, core(2), &e, Some(core(2))).is_empty());
        assert!(transaction_targets(AccessKind::Read, core(0), &e, None).is_empty());
    }

    #[test]
    fn write_targets_every_other_sharer() {
        let e = entry(Some(2), &[1, 2, 4]);
        let t = transaction_targets(AccessKind::Write, core(1), &e, Some(core(2)));
        assert_eq!(t, e.write_targets(core(1)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn first_read_is_exclusive() {
        let plan = commit_plan(
            AccessKind::Read,
            core(0),
            &DirEntry::default(),
            true,
            CoreSet::empty(),
        );
        assert_eq!(plan.requester_state, LineState::Exclusive);
        assert_eq!(plan.dir_update, DirUpdate::Exclusive);
        assert!(plan.installs_line);
        assert_eq!(plan.downgraded_owner, None);
        assert!(plan.invalidated.is_empty());
    }

    #[test]
    fn shared_read_forwards_under_mesif_only() {
        let e = entry(Some(2), &[2]);
        let mesif = commit_plan(
            AccessKind::Read,
            core(0),
            &e,
            true,
            CoreSet::single(core(2)),
        );
        assert_eq!(mesif.requester_state, LineState::Forward);
        assert_eq!(mesif.dir_update, DirUpdate::Shared);
        assert_eq!(mesif.downgraded_owner, Some(core(2)));

        let mesi = commit_plan(AccessKind::Read, core(0), &e, false, CoreSet::empty());
        assert_eq!(mesi.requester_state, LineState::Shared);
        assert_eq!(mesi.dir_update, DirUpdate::SharedNoForward);
        assert_eq!(mesi.downgraded_owner, Some(core(2)));
    }

    #[test]
    fn read_does_not_downgrade_self() {
        let e = entry(Some(0), &[0, 1]);
        let plan = commit_plan(AccessKind::Read, core(0), &e, true, CoreSet::empty());
        assert_eq!(plan.downgraded_owner, None);
    }

    #[test]
    fn write_invalidates_targets_and_takes_ownership() {
        let e = entry(Some(2), &[1, 2, 4]);
        let targets = e.write_targets(core(1));
        let plan = commit_plan(AccessKind::Write, core(1), &e, true, targets);
        assert_eq!(plan.requester_state, LineState::Modified);
        assert_eq!(plan.dir_update, DirUpdate::Exclusive);
        assert_eq!(plan.invalidated, targets);
        assert!(plan.installs_line);
    }

    #[test]
    fn upgrade_mutates_in_place() {
        let e = entry(Some(1), &[1, 3]);
        let targets = e.write_targets(core(1));
        let plan = commit_plan(AccessKind::Upgrade, core(1), &e, true, targets);
        assert_eq!(plan.requester_state, LineState::Modified);
        assert!(!plan.installs_line);
        assert_eq!(plan.invalidated, CoreSet::single(core(3)));
    }
}
