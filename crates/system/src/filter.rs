//! Region-based snoop/prediction filter (§5.3).
//!
//! The paper notes that ~70% of SP-prediction's bandwidth overhead comes
//! from predicting misses that turn out to be non-communicating, and that
//! simple region-tracking snoop filters (RegionScout-style) can detect most
//! of them. [`RegionTracker`] maintains, per aligned region, which cores
//! currently cache any block of it; a miss to a region that no *other* core
//! touches skips the predicted requests entirely.

use spcp_mem::BlockAddr;
use spcp_sim::{CoreId, CoreSet};
use std::collections::HashMap;

/// Blocks per tracked region (64 blocks × 64 B = 4 KB regions).
pub const REGION_BLOCKS: u64 = 64;

/// Tracks, for every region with at least one cached block, the set of
/// cores holding blocks of it (with per-core block counts so departures are
/// exact).
///
/// # Examples
///
/// ```
/// use spcp_system::filter::RegionTracker;
/// use spcp_mem::BlockAddr;
/// use spcp_sim::CoreId;
///
/// let mut t = RegionTracker::new();
/// let b = BlockAddr::from_index(5);
/// t.on_fill(CoreId::new(0), b);
/// assert!(!t.others_share_region(CoreId::new(0), b));
/// assert!(t.others_share_region(CoreId::new(1), b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RegionTracker {
    /// `(region, core) -> cached block count`.
    counts: HashMap<(u64, usize), u32>,
    /// `region -> cores with at least one cached block`.
    sharers: HashMap<u64, CoreSet>,
}

impl RegionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        RegionTracker::default()
    }

    fn region_of(block: BlockAddr) -> u64 {
        block.index() / REGION_BLOCKS
    }

    /// Records that `core` now caches `block`.
    pub fn on_fill(&mut self, core: CoreId, block: BlockAddr) {
        let region = Self::region_of(block);
        let count = self.counts.entry((region, core.index())).or_insert(0);
        *count += 1;
        if *count == 1 {
            self.sharers.entry(region).or_default().insert(core);
        }
    }

    /// Records that `core` dropped `block` (eviction or invalidation).
    ///
    /// Unmatched drops are ignored (idempotent with respect to blocks the
    /// tracker never saw filled).
    pub fn on_drop(&mut self, core: CoreId, block: BlockAddr) {
        let region = Self::region_of(block);
        if let Some(count) = self.counts.get_mut(&(region, core.index())) {
            *count -= 1;
            if *count == 0 {
                self.counts.remove(&(region, core.index()));
                if let Some(s) = self.sharers.get_mut(&region) {
                    s.remove(core);
                    if s.is_empty() {
                        self.sharers.remove(&region);
                    }
                }
            }
        }
    }

    /// Whether any core other than `requester` caches a block of the
    /// region containing `block`. When `false`, a miss there cannot be a
    /// communicating miss, so prediction is pure waste.
    pub fn others_share_region(&self, requester: CoreId, block: BlockAddr) -> bool {
        let region = Self::region_of(block);
        match self.sharers.get(&region) {
            Some(s) => {
                let mut others = *s;
                others.remove(requester);
                !others.is_empty()
            }
            None => false,
        }
    }

    /// Number of regions currently tracked.
    pub fn tracked_regions(&self) -> usize {
        self.sharers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    fn core(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn empty_region_has_no_sharers() {
        let t = RegionTracker::new();
        assert!(!t.others_share_region(core(0), blk(0)));
        assert_eq!(t.tracked_regions(), 0);
    }

    #[test]
    fn own_blocks_do_not_count_as_others() {
        let mut t = RegionTracker::new();
        t.on_fill(core(2), blk(10));
        t.on_fill(core(2), blk(11));
        assert!(!t.others_share_region(core(2), blk(12)));
        assert!(t.others_share_region(core(3), blk(12)));
    }

    #[test]
    fn blocks_in_same_region_alias() {
        let mut t = RegionTracker::new();
        t.on_fill(core(0), blk(0));
        // Block 63 is in region 0; block 64 is region 1.
        assert!(t.others_share_region(core(1), blk(63)));
        assert!(!t.others_share_region(core(1), blk(64)));
    }

    #[test]
    fn drop_of_last_block_clears_region_membership() {
        let mut t = RegionTracker::new();
        t.on_fill(core(0), blk(5));
        t.on_fill(core(0), blk(6));
        t.on_drop(core(0), blk(5));
        assert!(t.others_share_region(core(1), blk(7)), "one block remains");
        t.on_drop(core(0), blk(6));
        assert!(!t.others_share_region(core(1), blk(7)));
        assert_eq!(t.tracked_regions(), 0);
    }

    #[test]
    fn unmatched_drop_is_ignored() {
        let mut t = RegionTracker::new();
        t.on_drop(core(0), blk(5));
        assert_eq!(t.tracked_regions(), 0);
    }

    #[test]
    fn multiple_cores_tracked_independently() {
        let mut t = RegionTracker::new();
        t.on_fill(core(0), blk(0));
        t.on_fill(core(1), blk(1));
        assert!(t.others_share_region(core(0), blk(2)));
        t.on_drop(core(1), blk(1));
        assert!(!t.others_share_region(core(0), blk(2)));
        assert!(t.others_share_region(core(1), blk(2)));
    }
}
