//! Run statistics and per-epoch communication records.

use spcp_core::SpStats;
use spcp_noc::NocStats;
use spcp_sim::{CoreSet, Histogram, MeanAccumulator};
use spcp_sync::EpochId;
use std::collections::HashMap;

/// The recorded communication of one dynamic epoch instance on one core —
/// the raw material for Figures 2, 4, 5, 6 and the oracle predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// The static epoch.
    pub id: EpochId,
    /// Dynamic instance number on this core.
    pub instance: u64,
    /// Communication volume towards each core. An *empty* vector means
    /// the instance communicated with nobody (all-zero volumes): the
    /// recorder stores non-communicating epochs this way so their counter
    /// buffer can be reused instead of reallocated.
    pub volumes: Vec<u32>,
    /// The minimal sufficient target set of every communicating miss in
    /// the instance (for ideal-accuracy evaluation).
    pub miss_targets: Vec<CoreSet>,
}

impl EpochRecord {
    /// Total communication volume of the instance.
    pub fn total_volume(&self) -> u64 {
        self.volumes.iter().map(|&v| v as u64).sum()
    }

    /// The hot communication set at `threshold` (§3.3).
    pub fn hot_set(&self, threshold: f64) -> CoreSet {
        let total = self.total_volume();
        if total == 0 {
            return CoreSet::empty();
        }
        let cutoff = ((total as f64 * threshold).ceil() as u64).max(1);
        self.volumes
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v as u64 >= cutoff)
            .map(|(i, _)| spcp_sim::CoreId::new(i))
            .collect()
    }
}

/// Bucket upper bounds of [`RunStats::miss_latency_hist`].
pub const LATENCY_BUCKETS: [u64; 6] = [16, 32, 64, 128, 256, 512];

/// Whole-run communication volume matrix, stored as one flat row-major
/// `Vec<u64>` so the per-miss increment on the simulator's hot path is a
/// single indexed add with no pointer chase through nested vectors.
///
/// # Examples
///
/// ```
/// use spcp_system::metrics::CommMatrix;
///
/// let mut m = CommMatrix::new(4);
/// m.bump(0, 3);
/// m.bump(0, 3);
/// assert_eq!(m.at(0, 3), 2);
/// assert_eq!(m.total(), 2);
/// assert_eq!(m.row(0), &[0, 0, 0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommMatrix {
    n: usize,
    cells: Vec<u64>,
}

impl CommMatrix {
    /// An all-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        CommMatrix {
            n,
            cells: vec![0; n * n],
        }
    }

    /// Number of cores per side (0 for the default empty matrix).
    pub fn num_cores(&self) -> usize {
        self.n
    }

    /// Increments the `src → dst` cell.
    #[inline]
    pub fn bump(&mut self, src: usize, dst: usize) {
        self.cells[src * self.n + dst] += 1;
    }

    /// The `src → dst` cell value.
    pub fn at(&self, src: usize, dst: usize) -> u64 {
        self.cells[src * self.n + dst]
    }

    /// One source core's per-target volumes.
    pub fn row(&self, src: usize) -> &[u64] {
        &self.cells[src * self.n..(src + 1) * self.n]
    }

    /// Iterates the rows in source order.
    pub fn rows(&self) -> impl Iterator<Item = &[u64]> {
        self.cells.chunks(self.n.max(1))
    }

    /// Sum of every cell (total communicating-miss volume).
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// Largest single cell value.
    pub fn max(&self) -> u64 {
        self.cells.iter().copied().max().unwrap_or(0)
    }
}

/// Everything measured in one simulation run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Benchmark name.
    pub benchmark: String,
    /// Protocol name.
    pub protocol: String,

    /// Total operations executed (memory + sync + compute).
    pub total_ops: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (after L1 miss).
    pub l2_hits: u64,
    /// L2 misses (coherence transactions).
    pub l2_misses: u64,
    /// Write hits on Shared/Forward lines (upgrades).
    pub upgrades: u64,

    /// Misses whose minimal sufficient target set was non-empty.
    pub comm_misses: u64,
    /// Misses satisfied by memory alone.
    pub noncomm_misses: u64,

    /// Latency over all L2 misses (incl. upgrades).
    pub miss_latency: MeanAccumulator,
    /// Latency over communicating misses only.
    pub comm_miss_latency: MeanAccumulator,
    /// Miss-latency distribution (bucket upper bounds: 16, 32, 64, 128,
    /// 256, 512 cycles, plus overflow).
    pub miss_latency_hist: Histogram,
    /// End-to-end execution time in cycles.
    pub exec_cycles: u64,

    /// Network traffic and energy.
    pub noc: NocStats,
    /// L2 tag probes caused by external (forwarded/predicted/snoop)
    /// requests.
    pub snoop_probes: u64,
    /// Energy of those probes.
    pub snoop_energy: f64,

    /// Misses on which a (non-empty) prediction was issued.
    pub predictions: u64,
    /// Predictions that were sufficient (superset of the true targets).
    pub pred_sufficient: u64,
    /// Sufficient predictions on *communicating* misses — the Figure 7
    /// numerator (indirection avoided).
    pub pred_sufficient_comm: u64,
    /// Insufficient predictions.
    pub pred_insufficient: u64,
    /// Communicating misses that paid the directory indirection.
    pub indirections: u64,
    /// Sum of predicted-set sizes over predicted misses.
    pub predicted_set_sum: u64,
    /// Sum of minimal-sufficient-set sizes over communicating misses.
    pub actual_set_sum: u64,
    /// Predictor storage at end of run, in bits (sum over tiles).
    pub predictor_storage_bits: u64,
    /// Byte·hops of prediction-specific messages (predicted requests,
    /// nacks, directory updates) issued for *communicating* misses.
    pub pred_overhead_comm: u64,
    /// Byte·hops of prediction-specific messages issued for
    /// *non-communicating* misses (the always-wasted attempts of §5.3).
    pub pred_overhead_noncomm: u64,

    /// Predictions suppressed by the region snoop filter (§5.3).
    pub filtered_predictions: u64,
    /// Thread-migration events performed (§5.5 scenario).
    pub migrations: u64,

    /// Aggregated SP statistics (present for SP runs).
    pub sp: Option<SpStats>,

    /// Whole-run communication volume matrix (`src → dst`).
    pub comm_matrix: CommMatrix,
    /// Per-core epoch records (only when recording was enabled).
    pub epoch_records: Vec<Vec<EpochRecord>>,
    /// Per-static-instruction communication volumes (only when recording):
    /// `pc -> per-target volumes`.
    pub pc_volumes: HashMap<u32, Vec<u64>>,
    /// The §3.2-style miss + sync-point trace (only when trace collection
    /// was enabled).
    pub trace: Vec<spcp_trace::TraceEvent>,
}

impl Default for RunStats {
    fn default() -> Self {
        RunStats {
            benchmark: String::new(),
            protocol: String::new(),
            total_ops: 0,
            loads: 0,
            stores: 0,
            l1_hits: 0,
            l2_hits: 0,
            l2_misses: 0,
            upgrades: 0,
            comm_misses: 0,
            noncomm_misses: 0,
            miss_latency: MeanAccumulator::new(),
            comm_miss_latency: MeanAccumulator::new(),
            miss_latency_hist: Histogram::with_bounds(&LATENCY_BUCKETS),
            exec_cycles: 0,
            noc: Default::default(),
            snoop_probes: 0,
            snoop_energy: 0.0,
            predictions: 0,
            pred_sufficient: 0,
            pred_sufficient_comm: 0,
            pred_insufficient: 0,
            indirections: 0,
            predicted_set_sum: 0,
            actual_set_sum: 0,
            predictor_storage_bits: 0,
            pred_overhead_comm: 0,
            pred_overhead_noncomm: 0,
            filtered_predictions: 0,
            migrations: 0,
            sp: None,
            comm_matrix: CommMatrix::default(),
            epoch_records: Vec::new(),
            pc_volumes: HashMap::new(),
            trace: Vec::new(),
        }
    }
}

impl RunStats {
    /// Approximate latency percentile (the upper bound of the bucket
    /// containing the `p`-quantile sample), or `None` with no misses.
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        let total = self.miss_latency_hist.total();
        if total == 0 {
            return None;
        }
        let rank = (total as f64 * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &count) in self.miss_latency_hist.bucket_counts().iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(LATENCY_BUCKETS.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    /// Fraction of L2 misses that communicate (Figure 1).
    pub fn comm_ratio(&self) -> f64 {
        let total = self.comm_misses + self.noncomm_misses;
        if total == 0 {
            0.0
        } else {
            self.comm_misses as f64 / total as f64
        }
    }

    /// Fraction of communicating misses that avoided indirection
    /// (Figure 7's y-value).
    pub fn accuracy(&self) -> f64 {
        if self.comm_misses == 0 {
            0.0
        } else {
            self.pred_sufficient_comm as f64 / self.comm_misses as f64
        }
    }

    /// Fraction of all misses that paid indirection (Figure 12's y-axis).
    pub fn indirection_ratio(&self) -> f64 {
        let total = self.comm_misses + self.noncomm_misses;
        if total == 0 {
            0.0
        } else {
            self.indirections as f64 / total as f64
        }
    }

    /// Mean predicted-set size over predicted misses (Table 5).
    pub fn mean_predicted_set(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.predicted_set_sum as f64 / self.predictions as f64
        }
    }

    /// Mean minimal sufficient set size over communicating misses
    /// (Table 5's "actual").
    pub fn mean_actual_set(&self) -> f64 {
        if self.comm_misses == 0 {
            0.0
        } else {
            self.actual_set_sum as f64 / self.comm_misses as f64
        }
    }

    /// Total energy (NoC + snoop probes), the Figure 11 metric.
    pub fn energy(&self) -> f64 {
        self.noc.energy + self.snoop_energy
    }

    /// Bandwidth metric used for Figures 9/12: byte·hops moved on the NoC.
    pub fn bandwidth(&self) -> u64 {
        self.noc.byte_hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcp_sim::CoreId;
    use spcp_sync::{StaticSyncId, SyncKind};

    fn record(volumes: Vec<u32>) -> EpochRecord {
        EpochRecord {
            id: EpochId {
                kind: SyncKind::Barrier,
                static_id: StaticSyncId::new(1),
            },
            instance: 0,
            volumes,
            miss_targets: Vec::new(),
        }
    }

    #[test]
    fn epoch_record_hot_set_threshold() {
        let mut v = vec![0u32; 16];
        v[5] = 90;
        v[2] = 10;
        v[7] = 1;
        let r = record(v);
        assert_eq!(r.total_volume(), 101);
        let hot = r.hot_set(0.10);
        assert!(hot.contains(CoreId::new(5)));
        assert!(!hot.contains(CoreId::new(2)));
        assert!(!hot.contains(CoreId::new(7)));
    }

    #[test]
    fn empty_record_has_empty_hot_set() {
        let r = record(vec![0; 16]);
        assert!(r.hot_set(0.10).is_empty());
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = RunStats::default();
        assert_eq!(s.comm_ratio(), 0.0);
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.indirection_ratio(), 0.0);
        assert_eq!(s.mean_predicted_set(), 0.0);
        assert_eq!(s.mean_actual_set(), 0.0);
    }

    #[test]
    fn latency_percentiles_from_histogram() {
        let mut s = RunStats::default();
        assert_eq!(s.latency_percentile(0.5), None);
        // 9 fast misses (<=16) and 1 slow one (>512).
        for _ in 0..9 {
            s.miss_latency_hist.record(10);
        }
        s.miss_latency_hist.record(10_000);
        assert_eq!(s.latency_percentile(0.5), Some(16));
        assert_eq!(s.latency_percentile(0.9), Some(16));
        assert_eq!(s.latency_percentile(1.0), Some(u64::MAX));
    }

    #[test]
    fn derived_metrics_compute() {
        let s = RunStats {
            comm_misses: 80,
            noncomm_misses: 20,
            pred_sufficient_comm: 60,
            indirections: 25,
            predictions: 50,
            predicted_set_sum: 125,
            actual_set_sum: 96,
            ..RunStats::default()
        };
        assert!((s.comm_ratio() - 0.8).abs() < 1e-12);
        assert!((s.accuracy() - 0.75).abs() < 1e-12);
        assert!((s.indirection_ratio() - 0.25).abs() < 1e-12);
        assert!((s.mean_predicted_set() - 2.5).abs() < 1e-12);
        assert!((s.mean_actual_set() - 1.2).abs() < 1e-12);
    }
}
