//! The 16-core tiled-CMP timing simulator (§5.1's machine, Table 4).
//!
//! `spcp-system` ties every substrate together: in-order cores that block on
//! misses, private L1/L2 caches, a distributed full-map MESIF directory, the
//! 4×4 mesh NoC, the synchronization runtime (barriers + queued locks), and
//! a predictor socket per tile. Three protocol engines are provided:
//!
//! * **Directory** — baseline MESIF with home-node indirection;
//! * **Broadcast** — snoop probes to every tile on each miss (the latency
//!   lower bound / bandwidth upper bound of the study);
//! * **Predicted** — directory MESIF extended per §4.5: predicted requests
//!   race the directory, which verifies sufficiency and repairs
//!   mispredictions at baseline latency.
//!
//! Execution is globally time-ordered (always advance the earliest-time
//! runnable core), which makes runs deterministic and causally consistent.
//!
//! # Examples
//!
//! ```
//! use spcp_system::{CmpSystem, MachineConfig, ProtocolKind, RunConfig};
//! use spcp_workloads::suite;
//!
//! let wl = suite::x264().generate(16, 1);
//! let cfg = RunConfig::new(MachineConfig::paper_16core(), ProtocolKind::Directory);
//! let stats = CmpSystem::run_workload(&wl, &cfg);
//! assert!(stats.l2_misses > 0);
//! assert!(stats.exec_cycles > 0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod filter;
pub mod machine;
pub mod metrics;
pub mod oracle;
pub mod predictor_slot;
pub mod protocol;
pub mod runtime;

pub use config::{CoherenceVariant, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
pub use filter::RegionTracker;
pub use machine::{invariants_compiled, CmpSystem, InvariantViolation};
pub use metrics::{CommMatrix, EpochRecord, RunStats};
pub use oracle::OracleBook;
pub use predictor_slot::PredictorSlot;
