//! Machine and run configuration (Table 4).

use spcp_core::SpConfig;
use spcp_mem::CacheConfig;
use spcp_noc::NocConfig;

/// Which directory coherence protocol family the machine runs.
///
/// The paper's baseline is MESIF (clean cache-to-cache forwarding via the
/// F state); plain MESI is provided to demonstrate that the prediction
/// engine "can be integrated into any directory-based protocol" (§4.5) and
/// to quantify how much clean forwarding matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoherenceVariant {
    /// MESI + Forward state: one clean sharer answers read requests.
    #[default]
    Mesif,
    /// Plain MESI: only Modified/Exclusive holders supply data; reads of
    /// shared-clean lines go to memory.
    Mesi,
}

/// The simulated machine, defaulting to the paper's Table 4 configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of tiles/cores. Paper: 16.
    pub num_cores: usize,
    /// Network-on-chip parameters.
    pub noc: NocConfig,
    /// Per-tile L1 cache.
    pub l1: CacheConfig,
    /// Per-tile private L2 cache.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles. Paper: 150.
    pub mem_latency: u64,
    /// Directory lookup latency in cycles (full-map state array access
    /// plus protocol processing at the home tile).
    pub dir_latency: u64,
    /// Fixed cost of a barrier release after the last arrival.
    pub barrier_cost: u64,
    /// Fixed cost of transferring a contended lock between cores.
    pub lock_transfer_cost: u64,
    /// Energy of one L2 tag probe caused by an external request (snoop),
    /// in the same arbitrary units as the NoC energy model.
    pub snoop_probe_energy: f64,
    /// Extra cycles each sync-point costs the executing core. Zero models
    /// the hardware SP-table of §4.6; a few hundred cycles models the
    /// OS-trap software-table alternative.
    pub sync_trap_cost: u64,
    /// Directory protocol family (MESIF vs plain MESI).
    pub variant: CoherenceVariant,
}

impl MachineConfig {
    /// The paper's 16-core tiled CMP (Table 4).
    pub fn paper_16core() -> Self {
        MachineConfig {
            num_cores: 16,
            noc: NocConfig::default(),
            l1: CacheConfig::l1_16kb(),
            l2: CacheConfig::l2_1mb(),
            mem_latency: 150,
            dir_latency: 6,
            barrier_cost: 30,
            lock_transfer_cost: 20,
            snoop_probe_energy: 50.0,
            sync_trap_cost: 0,
            variant: CoherenceVariant::Mesif,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the mesh does not match the core count.
    pub fn validate(&self) {
        assert_eq!(
            self.noc.nodes(),
            self.num_cores,
            "mesh dimensions must cover exactly the core count"
        );
        assert!(
            self.num_cores >= 2,
            "a multiprocessor needs at least 2 cores"
        );
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_16core()
    }
}

/// Which predictor drives the prediction-augmented protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictorKind {
    /// SP-prediction with the given configuration.
    Sp(SpConfig),
    /// Address-based group predictor; `entries = None` is unlimited.
    Addr {
        /// Table capacity (entries), `None` = unlimited.
        entries: Option<usize>,
        /// Macroblock size in bytes.
        macroblock_bytes: u64,
    },
    /// Instruction-based group predictor.
    Inst {
        /// Table capacity (entries), `None` = unlimited.
        entries: Option<usize>,
    },
    /// The single-entry locality predictor.
    Uni,
    /// Oracle: replays recorded per-instance hot sets (ideal accuracy of
    /// Figure 7). Requires a recorded [`crate::OracleBook`].
    Oracle(crate::oracle::OracleBook),
}

impl PredictorKind {
    /// The paper's default SP configuration.
    pub fn sp_default() -> Self {
        PredictorKind::Sp(SpConfig::default())
    }

    /// Scheme name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PredictorKind::Sp(_) => "SP",
            PredictorKind::Addr { .. } => "ADDR",
            PredictorKind::Inst { .. } => "INST",
            PredictorKind::Uni => "UNI",
            PredictorKind::Oracle(_) => "ORACLE",
        }
    }
}

/// Which coherence protocol the run uses.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolKind {
    /// Baseline directory MESIF.
    Directory,
    /// Totally-ordered broadcast snooping.
    Broadcast,
    /// Directory MESIF + destination-set prediction (§4.5).
    Predicted(PredictorKind),
    /// Snooping with prediction-driven multicast instead of broadcast: the
    /// paper's second use case ("prediction relaxes the high bandwidth
    /// requirements by replacing broadcast with multicast"). Insufficient
    /// multicasts are detected at the ordering point and repaired with a
    /// second-phase broadcast.
    MulticastSnoop(PredictorKind),
}

impl ProtocolKind {
    /// Protocol name for reports.
    pub fn name(&self) -> String {
        match self {
            ProtocolKind::Directory => "directory".to_string(),
            ProtocolKind::Broadcast => "broadcast".to_string(),
            ProtocolKind::Predicted(p) => format!("predicted-{}", p.name()),
            ProtocolKind::MulticastSnoop(p) => format!("multicast-{}", p.name()),
        }
    }

    /// The predictor driving this protocol, if any.
    pub fn predictor(&self) -> Option<&PredictorKind> {
        match self {
            ProtocolKind::Predicted(p) | ProtocolKind::MulticastSnoop(p) => Some(p),
            _ => None,
        }
    }
}

/// A complete run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// The machine.
    pub machine: MachineConfig,
    /// The protocol.
    pub protocol: ProtocolKind,
    /// Record per-epoch-instance communication (needed by the
    /// characterization figures and the oracle; costs memory).
    pub record_epochs: bool,
    /// Enable the region-based snoop filter of §5.3: misses to regions no
    /// other core caches skip prediction entirely, removing the wasted
    /// bandwidth of predicting non-communicating misses.
    pub snoop_filter: bool,
    /// Pre-seed every core's SP-table from a profiling run's recorded
    /// first-instance hot sets (the off-line-profiling suggestion of §5.2).
    pub sp_warm_start: Option<crate::oracle::OracleBook>,
    /// Rotate the logical-thread → physical-core mapping by this many
    /// positions at every `migrate_every`-th barrier release (0 = never):
    /// the §5.5 thread-migration scenario.
    pub migrate_every: u64,
    /// Rotation amount per migration event.
    pub migrate_rotation: usize,
    /// Predictors and signatures track *logical* thread IDs and translate
    /// through the current mapping (the §5.5 fix). Without it, migrations
    /// silently invalidate learned physical-target signatures.
    pub logical_tracking: bool,
    /// Collect the §3.2-style miss + sync-point trace into
    /// [`crate::RunStats::trace`].
    pub collect_trace: bool,
    /// Destination-set policy applied to the comparison predictors
    /// (ADDR/INST/UNI): group (default), owner, or group/owner — the §5.4
    /// footnote's alternatives. SP's equivalent knob is
    /// [`SpConfig::max_hot_set`].
    pub set_policy: spcp_baselines::SetPolicy,
    /// Audit protocol invariants after every coherence transaction (see
    /// [`CmpSystem::run_workload_checked`](crate::CmpSystem::run_workload_checked)).
    /// Only effective when the audits are compiled in (debug builds or
    /// `--features invariants`); plain release builds ignore it so the hot
    /// path carries no checking cost.
    pub check_invariants: bool,
}

impl RunConfig {
    /// Creates a run configuration with epoch recording off and every
    /// extension disabled.
    pub fn new(machine: MachineConfig, protocol: ProtocolKind) -> Self {
        RunConfig {
            machine,
            protocol,
            record_epochs: false,
            snoop_filter: false,
            sp_warm_start: None,
            migrate_every: 0,
            migrate_rotation: 0,
            logical_tracking: false,
            collect_trace: false,
            set_policy: spcp_baselines::SetPolicy::Group,
            check_invariants: false,
        }
    }

    /// Enables the per-transaction invariant audits.
    pub fn checking(mut self) -> Self {
        self.check_invariants = true;
        self
    }

    /// Enables epoch recording.
    pub fn recording(mut self) -> Self {
        self.record_epochs = true;
        self
    }

    /// Enables the §5.3 region snoop filter.
    pub fn with_snoop_filter(mut self) -> Self {
        self.snoop_filter = true;
        self
    }

    /// Pre-seeds SP-tables from a profiling run.
    pub fn with_warm_start(mut self, book: crate::oracle::OracleBook) -> Self {
        self.sp_warm_start = Some(book);
        self
    }

    /// Selects the comparison predictors' destination-set policy.
    pub fn with_set_policy(mut self, policy: spcp_baselines::SetPolicy) -> Self {
        self.set_policy = policy;
        self
    }

    /// Enables §3.2-style trace collection.
    pub fn tracing(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Enables thread migration every `every` barriers, rotating by
    /// `rotation`; `logical` selects logical-ID tracking.
    pub fn with_migration(mut self, every: u64, rotation: usize, logical: bool) -> Self {
        self.migrate_every = every;
        self.migrate_rotation = rotation;
        self.logical_tracking = logical;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_matches_table_4() {
        let m = MachineConfig::paper_16core();
        m.validate();
        assert_eq!(m.num_cores, 16);
        assert_eq!(m.noc.width, 4);
        assert_eq!(m.noc.height, 4);
        assert_eq!(m.l2.size_bytes, 1 << 20);
        assert_eq!(m.l2.assoc, 8);
        assert_eq!(m.l1.size_bytes, 16 << 10);
        assert_eq!(m.mem_latency, 150);
    }

    #[test]
    #[should_panic(expected = "mesh dimensions")]
    fn mismatched_mesh_rejected() {
        let mut m = MachineConfig::paper_16core();
        m.num_cores = 8;
        m.validate();
    }

    #[test]
    fn protocol_names() {
        assert_eq!(ProtocolKind::Directory.name(), "directory");
        assert_eq!(ProtocolKind::Broadcast.name(), "broadcast");
        assert_eq!(
            ProtocolKind::Predicted(PredictorKind::sp_default()).name(),
            "predicted-SP"
        );
        assert_eq!(
            ProtocolKind::Predicted(PredictorKind::Uni).name(),
            "predicted-UNI"
        );
    }

    #[test]
    fn run_config_builder() {
        let rc = RunConfig::new(MachineConfig::paper_16core(), ProtocolKind::Directory);
        assert!(!rc.record_epochs);
        assert!(rc.recording().record_epochs);
    }
}
