//! The CMP system: tiles, protocol engines, and the time-ordered run loop.
//!
//! Logical *threads* (op streams, predictors, epoch tracking) are separated
//! from physical *tiles* (caches, NoC endpoints): normally thread `t` is
//! pinned to core `t` — the paper binds threads to their first-touch core —
//! but the §5.5 thread-migration scenario rotates the mapping at barrier
//! releases, with optional logical-ID signature tracking.

use crate::config::{ProtocolKind, RunConfig};
use crate::filter::RegionTracker;
use crate::metrics::{EpochRecord, RunStats};
use crate::predictor_slot::PredictorSlot;
use crate::protocol::{self, DirUpdate};
use crate::runtime::{Acquire, BarrierState, LockRuntime};
use spcp_core::{shared_lock_table, AccessKind, MissInfo, PredictionOutcome};
use spcp_mem::{BlockAddr, Directory, LineState, SetAssocCache};
use spcp_noc::{Fabric, MsgKind};
use spcp_sim::{CoreId, CoreSet, Cycle, EventQueue};
use spcp_sync::{EpochInstance, EpochTracker, StaticSyncId, SyncKind, SyncPoint};
use spcp_workloads::{Op, Workload};

/// One physical tile: the private cache hierarchy.
#[derive(Debug)]
struct Tile {
    l1: SetAssocCache<()>,
    l2: SetAssocCache<LineState>,
}

/// One logical thread's prediction and characterization state (moves with
/// the thread across migrations).
#[derive(Debug)]
struct ThreadCtx {
    predictor: PredictorSlot,
    tracker: EpochTracker,
    cur_epoch: Option<EpochInstance>,
    cur_volumes: Vec<u32>,
    cur_targets: Vec<CoreSet>,
    records: Vec<EpochRecord>,
}

/// What a thread is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadStatus {
    Runnable,
    AtBarrier,
    WaitingLock,
    Done,
}

/// `Copy` dispatch tag for the configured protocol.
///
/// [`ProtocolKind`] itself can be arbitrarily large (an oracle predictor
/// carries its whole signature book), so matching on a clone of it per
/// transaction — the previous code — paid a deep copy on every L2 miss.
/// The variant alone decides the timing path; the predictor payload was
/// already consumed when the per-thread [`PredictorSlot`]s were built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProtoDispatch {
    Directory,
    Broadcast,
    Predicted,
    MulticastSnoop,
}

impl ProtoDispatch {
    fn of(kind: &ProtocolKind) -> Self {
        match kind {
            ProtocolKind::Directory => ProtoDispatch::Directory,
            ProtocolKind::Broadcast => ProtoDispatch::Broadcast,
            ProtocolKind::Predicted(_) => ProtoDispatch::Predicted,
            ProtocolKind::MulticastSnoop(_) => ProtoDispatch::MulticastSnoop,
        }
    }
}

/// Per-transaction arrival-time scratch, indexed by physical core.
///
/// The snoop and predicted paths need "when did the probe reach core X"
/// for up to every core; a fixed `Option<Cycle>` array sized to
/// [`CoreSet::MAX_CORES`] replaces the `HashMap` the old code allocated
/// per transaction. Transactions never nest, so one instance per system
/// suffices; each path resets it before use.
#[derive(Debug)]
struct ArrivalScratch([Option<Cycle>; CoreSet::MAX_CORES]);

impl ArrivalScratch {
    fn new() -> Self {
        ArrivalScratch([None; CoreSet::MAX_CORES])
    }

    #[inline]
    fn reset(&mut self) {
        self.0.fill(None);
    }

    #[inline]
    fn set(&mut self, core: CoreId, t: Cycle) {
        self.0[core.index()] = Some(t);
    }

    #[inline]
    fn get(&self, core: CoreId) -> Option<Cycle> {
        self.0[core.index()]
    }

    #[inline]
    fn contains(&self, core: CoreId) -> bool {
        self.0[core.index()].is_some()
    }
}

/// The full machine. Construct indirectly through
/// [`CmpSystem::run_workload`].
#[derive(Debug)]
pub struct CmpSystem {
    cfg: RunConfig,
    /// Cached dispatch tag of `cfg.protocol` (hot-path `match` target).
    proto: ProtoDispatch,
    /// Reusable probe/predicted-request arrival times (one per physical
    /// core), cleared at the start of each transaction phase.
    arrival: ArrivalScratch,
    fabric: Fabric,
    dir: Directory,
    tiles: Vec<Tile>,
    threads: Vec<ThreadCtx>,
    /// Logical thread -> physical core.
    thread_core: Vec<usize>,
    /// Physical core -> logical thread.
    core_thread: Vec<usize>,
    barrier: BarrierState,
    barrier_id: Option<StaticSyncId>,
    barrier_releases: u64,
    locks: LockRuntime,
    regions: RegionTracker,
    stats: RunStats,
    /// Coherence transactions committed so far (invariant-violation
    /// reports cite this id).
    txn_counter: u64,
    /// First invariant violation observed, when auditing is enabled.
    violation: Option<InvariantViolation>,
}

/// A protocol invariant violation caught by the runtime audit layer.
///
/// Produced by [`CmpSystem::run_workload_checked`] when the machine is run
/// with `check_invariants` on (requires the audits to be compiled in — see
/// [`invariants_compiled`](crate::invariants_compiled)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Simulated cycle at which the violation was detected.
    pub cycle: u64,
    /// The coherence transaction id (1-based) whose audit failed; 0 when
    /// the violation was found by the end-of-run sweep.
    pub transaction: u64,
    /// Human-readable description of the broken invariant.
    pub message: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant violation at cycle {} (transaction {}): {}",
            self.cycle, self.transaction, self.message
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// Whether the runtime invariant audits are compiled into this build.
///
/// They are present in debug builds and in release builds with
/// `--features invariants`; plain release builds compile them out entirely
/// so the hot path stays allocation- and branch-free.
pub fn invariants_compiled() -> bool {
    cfg!(any(debug_assertions, feature = "invariants"))
}

impl CmpSystem {
    fn new(cfg: &RunConfig, num_cores: usize) -> Self {
        let mut machine = cfg.machine.clone();
        machine.num_cores = num_cores;
        machine.validate();
        let lock_table = shared_lock_table(match cfg.protocol.predictor() {
            Some(crate::config::PredictorKind::Sp(sp)) => sp.history_depth,
            _ => 2,
        });
        let tiles = (0..num_cores)
            .map(|_| Tile {
                l1: SetAssocCache::new(machine.l1),
                l2: SetAssocCache::new(machine.l2),
            })
            .collect();
        let threads = (0..num_cores)
            .map(|i| {
                let mut predictor = match cfg.protocol.predictor() {
                    Some(kind) => PredictorSlot::build_with_policy(
                        kind,
                        CoreId::new(i),
                        num_cores,
                        &lock_table,
                        cfg.set_policy,
                    ),
                    None => PredictorSlot::None,
                };
                if let Some(book) = &cfg.sp_warm_start {
                    for (core, id, instance, hot) in book.iter() {
                        if core.index() == i && instance == 0 {
                            predictor.preload(id, hot);
                        }
                    }
                }
                ThreadCtx {
                    predictor,
                    tracker: EpochTracker::new(),
                    cur_epoch: None,
                    cur_volumes: vec![0; num_cores],
                    cur_targets: Vec::new(),
                    records: Vec::new(),
                }
            })
            .collect();
        let stats = RunStats {
            protocol: cfg.protocol.name(),
            comm_matrix: crate::metrics::CommMatrix::new(num_cores),
            ..RunStats::default()
        };
        CmpSystem {
            proto: ProtoDispatch::of(&cfg.protocol),
            arrival: ArrivalScratch::new(),
            fabric: Fabric::new(machine.noc.clone()),
            dir: Directory::new(num_cores),
            tiles,
            threads,
            thread_core: (0..num_cores).collect(),
            core_thread: (0..num_cores).collect(),
            barrier: BarrierState::new(num_cores, machine.barrier_cost),
            barrier_id: None,
            barrier_releases: 0,
            locks: LockRuntime::new(machine.lock_transfer_cost),
            regions: RegionTracker::new(),
            cfg: RunConfig {
                machine,
                ..cfg.clone()
            },
            stats,
            txn_counter: 0,
            violation: None,
        }
    }

    /// Runs `workload` under `cfg` and returns the measurements.
    ///
    /// # Panics
    ///
    /// Panics if the workload deadlocks (malformed sync structure) or its
    /// core count does not match the machine.
    pub fn run_workload(workload: &Workload, cfg: &RunConfig) -> RunStats {
        let mut sys = CmpSystem::new(cfg, workload.num_cores());
        sys.stats.benchmark = workload.name().to_string();
        sys.run(workload);
        sys.into_stats()
    }

    /// Runs like [`run_workload`](CmpSystem::run_workload), additionally
    /// checking the coherence invariants when the run completes.
    ///
    /// # Panics
    ///
    /// Panics if the final machine state violates coherence.
    pub fn run_workload_validated(workload: &Workload, cfg: &RunConfig) -> RunStats {
        let mut sys = CmpSystem::new(cfg, workload.num_cores());
        sys.stats.benchmark = workload.name().to_string();
        sys.run(workload);
        sys.validate_coherence();
        sys.into_stats()
    }

    /// Runs `workload` with the runtime invariant audits enabled: every
    /// coherence transaction is followed by a directory/cache agreement
    /// check on the touched block, a NoC accounting audit, and an
    /// epoch-counter conservation check; a full-machine coherence sweep
    /// runs at the end. The first violation stops the run and is returned
    /// with its cycle and transaction id.
    ///
    /// Requires a build with the audits compiled in
    /// ([`invariants_compiled`] returns `true`); otherwise only the final
    /// sweep runs.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] observed.
    ///
    /// # Panics
    ///
    /// Panics if the workload deadlocks while no violation was detected.
    pub fn run_workload_checked(
        workload: &Workload,
        cfg: &RunConfig,
    ) -> Result<RunStats, InvariantViolation> {
        let cfg = RunConfig {
            check_invariants: true,
            ..cfg.clone()
        };
        let mut sys = CmpSystem::new(&cfg, workload.num_cores());
        sys.stats.benchmark = workload.name().to_string();
        sys.run(workload);
        if let Some(v) = sys.violation.take() {
            return Err(v);
        }
        if let Err(message) = sys.coherence_report() {
            return Err(InvariantViolation {
                cycle: sys.stats.exec_cycles,
                transaction: 0,
                message,
            });
        }
        Ok(sys.into_stats())
    }

    /// Records the first invariant violation; later ones are dropped (the
    /// machine state is already suspect).
    #[cfg(any(debug_assertions, feature = "invariants"))]
    fn flag_violation(&mut self, t: Cycle, message: String) {
        if self.violation.is_none() {
            self.violation = Some(InvariantViolation {
                cycle: t.as_u64(),
                transaction: self.txn_counter,
                message,
            });
        }
    }

    /// Post-transaction audit of the touched block plus the cheap global
    /// counters. O(cores) — cheap enough to run after every transaction.
    #[cfg(any(debug_assertions, feature = "invariants"))]
    fn audit_transaction(&mut self, t: Cycle, block: BlockAddr) {
        if let Err(msg) = self
            .audit_block(block)
            .and_then(|()| self.fabric.audit())
            .and_then(|()| self.audit_epoch_conservation())
        {
            self.flag_violation(t, msg);
        }
    }

    /// Directory/cache agreement for a single block: the sharer vector
    /// matches the set of valid cached copies, suppliers are unique and
    /// recorded as owner, and L1 residency implies L2 residency.
    #[cfg(any(debug_assertions, feature = "invariants"))]
    fn audit_block(&self, block: BlockAddr) -> Result<(), String> {
        let entry = self.dir.entry(block);
        let mut suppliers = CoreSet::empty();
        let mut writable = CoreSet::empty();
        let mut valid = CoreSet::empty();
        for core in CoreId::all(self.dir.num_tiles()) {
            let tile = &self.tiles[core.index()];
            match tile.l2.probe(block) {
                Some(s) if s.is_valid() => {
                    valid.insert(core);
                    if s.can_supply_data() {
                        suppliers.insert(core);
                    }
                    if s.is_writable() {
                        writable.insert(core);
                    }
                }
                _ => {
                    if tile.l1.probe(block).is_some() {
                        return Err(format!("{block}: L1 line at {core} violates L2 inclusion"));
                    }
                }
            }
        }
        if valid != entry.sharers {
            return Err(format!(
                "{block}: directory sharers {:?} disagree with cached copies {:?}",
                entry.sharers, valid
            ));
        }
        if writable.len() > 1 || (!writable.is_empty() && valid.len() > 1) {
            return Err(format!(
                "{block}: SWMR violated — writable copies at {:?}, valid copies at {:?}",
                writable, valid
            ));
        }
        if suppliers.len() > 1 {
            return Err(format!(
                "{block}: {} simultaneous M/E/F suppliers ({:?})",
                suppliers.len(),
                suppliers
            ));
        }
        if let Some(s) = suppliers.iter().next() {
            if entry.owner != Some(s) {
                return Err(format!(
                    "{block}: supplier {s} is not the directory's owner ({:?})",
                    entry.owner
                ));
            }
        }
        Ok(())
    }

    /// Epoch-counter conservation: every communicating-miss destination
    /// increment lands in exactly one per-epoch volume counter (live or
    /// recorded), so their grand total equals the global communication
    /// matrix.
    #[cfg(any(debug_assertions, feature = "invariants"))]
    fn audit_epoch_conservation(&self) -> Result<(), String> {
        let mut per_epoch: u64 = 0;
        for ctx in &self.threads {
            per_epoch += ctx.cur_volumes.iter().map(|&v| v as u64).sum::<u64>();
            per_epoch += ctx.records.iter().map(|r| r.total_volume()).sum::<u64>();
        }
        let matrix = self.stats.comm_matrix.total();
        if per_epoch != matrix {
            return Err(format!(
                "epoch-counter conservation broken: per-epoch volumes sum to \
                 {per_epoch} but the communication matrix holds {matrix}"
            ));
        }
        Ok(())
    }

    /// The physical core thread `t` currently runs on.
    fn core_of(&self, thread: usize) -> CoreId {
        CoreId::new(self.thread_core[thread])
    }

    /// Translates a physical core set into logical-thread space.
    fn to_logical(&self, physical: CoreSet) -> CoreSet {
        physical
            .iter()
            .map(|p| CoreId::new(self.core_thread[p.index()]))
            .collect()
    }

    /// Translates a logical-thread set into physical-core space.
    fn to_physical(&self, logical: CoreSet) -> CoreSet {
        logical
            .iter()
            .map(|t| CoreId::new(self.thread_core[t.index()]))
            .collect()
    }

    /// Rotates the thread→core mapping (all threads are at a barrier).
    fn migrate(&mut self) {
        let n = self.thread_core.len();
        let r = self.cfg.migrate_rotation % n;
        if r == 0 {
            return;
        }
        for t in 0..n {
            self.thread_core[t] = (self.thread_core[t] + r) % n;
            self.core_thread[self.thread_core[t]] = t;
        }
        self.stats.migrations += 1;
    }

    fn run(&mut self, workload: &Workload) {
        let n = workload.num_cores();
        let streams = workload.threads();
        let mut pc: Vec<usize> = vec![0; n];
        let mut status: Vec<ThreadStatus> = vec![ThreadStatus::Runnable; n];
        let mut ready: EventQueue<usize> = EventQueue::new();
        for t in 0..n {
            ready.push(Cycle::ZERO, t);
        }

        while let Some((t_now, th)) = ready.pop() {
            // A detected invariant violation stops the run: the machine
            // state is no longer trustworthy, and the caller wants the
            // first failure, not its fallout.
            if self.violation.is_some() {
                return;
            }
            debug_assert_eq!(status[th], ThreadStatus::Runnable);
            let Some(op) = streams[th].get(pc[th]) else {
                status[th] = ThreadStatus::Done;
                self.stats.exec_cycles = self.stats.exec_cycles.max(t_now.as_u64());
                continue;
            };
            pc[th] += 1;
            self.stats.total_ops += 1;
            let core = self.core_of(th);

            match *op {
                Op::Compute(cycles) => {
                    ready.push(t_now + cycles as u64 + 1, th);
                }
                Op::Load { addr, pc: ipc } => {
                    self.stats.loads += 1;
                    let done = self.access(th, core, t_now, addr.block(), ipc, false);
                    ready.push(done + 1u64, th);
                }
                Op::Store { addr, pc: ipc } => {
                    self.stats.stores += 1;
                    let done = self.access(th, core, t_now, addr.block(), ipc, true);
                    ready.push(done + 1u64, th);
                }
                Op::Sync(point) => {
                    // §4.6: a software SP-table pays an OS trap per
                    // sync-point.
                    let t_sync = t_now + self.cfg.machine.sync_trap_cost;
                    match point.kind {
                        SyncKind::Barrier => {
                            if let Some(cur) = self.barrier_id {
                                assert_eq!(
                                    cur, point.static_id,
                                    "threads disagree on the current barrier"
                                );
                            } else {
                                self.barrier_id = Some(point.static_id);
                            }
                            self.notify_sync(th, point, None);
                            match self.barrier.arrive(CoreId::new(th), t_sync) {
                                Some(release) => {
                                    self.barrier_id = None;
                                    self.barrier_releases += 1;
                                    if self.cfg.migrate_every > 0
                                        && self
                                            .barrier_releases
                                            .is_multiple_of(self.cfg.migrate_every)
                                    {
                                        self.migrate();
                                    }
                                    for (w, st) in status.iter_mut().enumerate() {
                                        if w == th || *st == ThreadStatus::AtBarrier {
                                            *st = ThreadStatus::Runnable;
                                            // Wake-ups serialize out of the
                                            // barrier's home tile: stagger
                                            // resumption slightly per core.
                                            ready.push(release + (2 * w) as u64, w);
                                        }
                                    }
                                }
                                None => {
                                    status[th] = ThreadStatus::AtBarrier;
                                }
                            }
                        }
                        SyncKind::Lock => {
                            let lock = point.lock.expect("lock op carries lock id");
                            match self.locks.acquire(lock, CoreId::new(th), t_sync) {
                                Acquire::Granted { at, prev_holder } => {
                                    self.notify_sync(th, point, prev_holder);
                                    ready.push(at + 1u64, th);
                                }
                                Acquire::Queued => {
                                    status[th] = ThreadStatus::WaitingLock;
                                }
                            }
                        }
                        SyncKind::Unlock => {
                            let lock = point.lock.expect("unlock op carries lock id");
                            self.notify_sync(th, point, None);
                            if let Some((next, grant, prev)) =
                                self.locks.release(lock, CoreId::new(th), t_sync)
                            {
                                // Wake the queued waiter: its Lock op was
                                // already consumed, so deliver its sync
                                // notification now.
                                self.notify_sync(next.index(), SyncPoint::lock(lock), Some(prev));
                                status[next.index()] = ThreadStatus::Runnable;
                                ready.push(grant + 1u64, next.index());
                            }
                            ready.push(t_sync + 1u64, th);
                        }
                        _ => {
                            // join/wakeup/broadcast points: epoch boundary
                            // only.
                            self.notify_sync(th, point, None);
                            ready.push(t_sync + 1u64, th);
                        }
                    }
                }
            }
        }

        let done = status.iter().filter(|&&s| s == ThreadStatus::Done).count();
        assert_eq!(
            done,
            n,
            "deadlock: {} threads blocked (barrier waiting: {})",
            n - done,
            self.barrier.waiting()
        );
    }

    /// Epoch boundary bookkeeping + predictor notification for thread
    /// `th`. `prev_holder` is in logical-thread space.
    fn notify_sync(&mut self, th: usize, point: SyncPoint, prev_holder: Option<CoreId>) {
        let record = self.cfg.record_epochs;
        let n = self.dir.num_tiles();
        let ctx = &mut self.threads[th];
        if record {
            if let Some(inst) = ctx.cur_epoch {
                // Only a communicating instance needs to hand its counter
                // buffer over to the record; the (common) silent epoch is
                // stored with the empty-equals-all-zero convention and the
                // live buffer is scrubbed in place — no allocation.
                let volumes = if ctx.cur_volumes.iter().any(|&v| v != 0) {
                    std::mem::replace(&mut ctx.cur_volumes, vec![0; n])
                } else {
                    Vec::new()
                };
                ctx.cur_volumes.fill(0);
                ctx.records.push(EpochRecord {
                    id: inst.id,
                    instance: inst.instance,
                    volumes,
                    miss_targets: std::mem::take(&mut ctx.cur_targets),
                });
            } else {
                ctx.cur_volumes.fill(0);
                ctx.cur_targets.clear();
            }
        }
        let tr = ctx.tracker.observe(point);
        ctx.cur_epoch = Some(tr.started);
        ctx.predictor.on_sync_point(point, prev_holder);
        if self.cfg.collect_trace {
            self.stats.trace.push(spcp_trace::TraceEvent::Sync {
                core: CoreId::new(th),
                kind: point.kind,
                static_id: point.static_id.raw(),
                instance: tr.started.instance,
            });
        }
    }

    /// One memory access by thread `th` on physical core `core`.
    fn access(
        &mut self,
        th: usize,
        core: CoreId,
        t: Cycle,
        block: BlockAddr,
        pc: u32,
        store: bool,
    ) -> Cycle {
        let c = core.index();
        let l1_lat = self.cfg.machine.l1.tag_cycles + self.cfg.machine.l1.data_cycles;
        let l2_lat = self.cfg.machine.l2.tag_cycles + self.cfg.machine.l2.data_cycles;

        let l1_present = self.tiles[c].l1.lookup(block).is_some();
        let l2_state = self.tiles[c].l2.probe(block).copied();

        match l2_state {
            Some(state) if !store || state.is_writable() => {
                // Plain hit (load on any valid line; store on M/E).
                if store && state == LineState::Exclusive {
                    *self.tiles[c].l2.probe_mut(block).expect("probed above") = LineState::Modified;
                }
                // Refresh L2 LRU via a demand lookup.
                self.tiles[c].l2.lookup(block);
                if l1_present {
                    self.stats.l1_hits += 1;
                    t + l1_lat
                } else {
                    self.stats.l2_hits += 1;
                    self.fill_l1(c, block);
                    t + l1_lat + l2_lat
                }
            }
            Some(_) => {
                // Store on a Shared/Forward line: upgrade miss.
                self.stats.upgrades += 1;
                self.transaction(th, core, t, block, pc, AccessKind::Upgrade)
            }
            None => {
                let kind = if store {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                self.transaction(th, core, t, block, pc, kind)
            }
        }
    }

    fn fill_l1(&mut self, c: usize, block: BlockAddr) {
        // L1 is inclusive in L2; evictions of clean L1 lines are silent.
        self.tiles[c].l1.insert(block, ());
    }

    /// Inserts `block` into the requester's L2 (handling the victim) and
    /// L1, keeping the region tracker current.
    fn fill_l2(&mut self, core: CoreId, block: BlockAddr, state: LineState, t: Cycle) {
        let c = core.index();
        if let Some((victim, vstate)) = self.tiles[c].l2.insert(block, state) {
            if victim != block {
                self.tiles[c].l1.invalidate(victim);
                if vstate.needs_writeback() {
                    let home = self.dir.home_of(victim);
                    self.fabric.send(core, home, MsgKind::WriteBack, t);
                }
                self.dir.record_drop(victim, core);
                self.regions.on_drop(core, victim);
            } else {
                // Same-block replacement: presence unchanged.
                self.fill_l1(c, block);
                return;
            }
        }
        self.regions.on_fill(core, block);
        self.fill_l1(c, block);
    }

    /// Drops `block` from a remote sharer's caches (invalidation).
    fn invalidate_at(&mut self, core: CoreId, block: BlockAddr) {
        if self.tiles[core.index()].l2.invalidate(block).is_some() {
            self.regions.on_drop(core, block);
        }
        self.tiles[core.index()].l1.invalidate(block);
    }

    /// A coherence transaction for an L2 miss or upgrade by thread `th`;
    /// returns the completion time.
    fn transaction(
        &mut self,
        th: usize,
        core: CoreId,
        t0: Cycle,
        block: BlockAddr,
        pc: u32,
        kind: AccessKind,
    ) -> Cycle {
        self.stats.l2_misses += 1;
        let entry = self.dir.entry(block);
        let mesif = self.cfg.machine.variant == crate::config::CoherenceVariant::Mesif;
        let supplier = protocol::supplier_of(&entry, mesif, |o| {
            self.tiles[o.index()].l2.probe(block).copied()
        });
        let targets = protocol::transaction_targets(kind, core, &entry, supplier);
        let communicating = !targets.is_empty();
        if communicating {
            self.stats.comm_misses += 1;
            self.stats.actual_set_sum += targets.len() as u64;
            for dst in targets.iter() {
                self.stats.comm_matrix.bump(core.index(), dst.index());
                self.threads[th].cur_volumes[dst.index()] += 1;
            }
            if self.cfg.record_epochs {
                self.threads[th].cur_targets.push(targets);
                let n = self.dir.num_tiles();
                let pcv = self
                    .stats
                    .pc_volumes
                    .entry(pc)
                    .or_insert_with(|| vec![0; n]);
                for dst in targets.iter() {
                    pcv[dst.index()] += 1;
                }
            }
        } else {
            self.stats.noncomm_misses += 1;
        }
        if self.cfg.collect_trace {
            self.stats.trace.push(spcp_trace::TraceEvent::Miss {
                core,
                block,
                pc,
                kind,
                targets,
            });
        }

        let miss = MissInfo::new(block, pc, kind);
        let completion = match self.proto {
            ProtoDispatch::Directory => {
                if communicating {
                    self.stats.indirections += 1;
                }
                self.directory_path(core, t0, block, kind, supplier, targets)
            }
            ProtoDispatch::Broadcast => {
                self.broadcast_path(th, core, t0, block, pc, kind, supplier, targets)
            }
            ProtoDispatch::Predicted => {
                self.predicted_path(th, core, t0, block, pc, kind, supplier, targets, &miss)
            }
            ProtoDispatch::MulticastSnoop => {
                self.multicast_path(th, core, t0, block, pc, kind, supplier, targets, &miss)
            }
        };

        // Commit the requester's new line state and the directory view, as
        // planned by the pure transition function (shared with the
        // spcp-verify model checker).
        let plan = protocol::commit_plan(kind, core, &entry, mesif, targets);
        if let Some(o) = plan.downgraded_owner {
            // The previous owner degrades to a plain sharer.
            if let Some(s) = self.tiles[o.index()].l2.probe_mut(block) {
                if s.needs_writeback() {
                    let home = self.dir.home_of(block);
                    self.fabric.send(o, home, MsgKind::WriteBack, completion);
                }
                *s = LineState::Shared;
            }
        }
        for s in plan.invalidated.iter() {
            self.invalidate_at(s, block);
        }
        if plan.installs_line {
            self.fill_l2(core, block, plan.requester_state, completion);
        } else {
            *self.tiles[core.index()]
                .l2
                .probe_mut(block)
                .expect("upgrade implies resident line") = plan.requester_state;
        }
        match plan.dir_update {
            DirUpdate::Exclusive => self.dir.record_exclusive(block, core),
            DirUpdate::Shared => self.dir.record_shared(block, core),
            DirUpdate::SharedNoForward => self.dir.record_shared_no_forward(block, core),
        }

        self.txn_counter += 1;
        #[cfg(any(debug_assertions, feature = "invariants"))]
        if self.cfg.check_invariants && self.violation.is_none() {
            self.audit_transaction(completion, block);
        }

        self.stats.miss_latency.record((completion - t0).as_u64());
        self.stats
            .miss_latency_hist
            .record((completion - t0).as_u64());
        if communicating {
            self.stats
                .comm_miss_latency
                .record((completion - t0).as_u64());
        }
        completion
    }

    /// Consults thread `th`'s predictor for `miss`, applying the region
    /// filter and logical→physical translation. Returns the physical
    /// predicted set.
    fn consult_predictor(
        &mut self,
        th: usize,
        core: CoreId,
        miss: &MissInfo,
        communicating: bool,
    ) -> CoreSet {
        if self.cfg.snoop_filter && !self.regions.others_share_region(core, miss.block) {
            debug_assert!(
                !communicating,
                "region filter must never suppress a communicating miss"
            );
            self.stats.filtered_predictions += 1;
            return CoreSet::empty();
        }
        let mut pset = self.threads[th].predictor.predict(miss);
        if self.cfg.logical_tracking {
            pset = self.to_physical(pset);
        }
        pset.remove(core);
        pset
    }

    /// Feeds the transaction outcome back to thread `th`'s predictor,
    /// translating into logical space when configured.
    fn train_predictor(
        &mut self,
        th: usize,
        miss: &MissInfo,
        targets: CoreSet,
        pset: CoreSet,
        sufficient: bool,
    ) {
        let (actual, predicted) = if self.cfg.logical_tracking {
            (self.to_logical(targets), self.to_logical(pset))
        } else {
            (targets, pset)
        };
        self.threads[th].predictor.train(
            miss,
            PredictionOutcome {
                actual,
                predicted,
                sufficient,
            },
        );
    }

    /// Baseline directory MESIF timing. Also used as the repair path for
    /// mispredictions (the directory proceeds as normal, §4.5).
    fn directory_path(
        &mut self,
        core: CoreId,
        t0: Cycle,
        block: BlockAddr,
        kind: AccessKind,
        owner: Option<CoreId>,
        targets: CoreSet,
    ) -> Cycle {
        let home = self.dir.home_of(block);
        let l2_lat = self.cfg.machine.l2.tag_cycles + self.cfg.machine.l2.data_cycles;
        let t_dir =
            self.fabric.send(core, home, MsgKind::Request, t0) + self.cfg.machine.dir_latency;
        match kind {
            AccessKind::Read => match owner {
                Some(o) if o != core => {
                    let t_fwd = self.fabric.send(home, o, MsgKind::Forward, t_dir);
                    self.probe_remote(o, block, core, 0);
                    self.fabric
                        .send(o, core, MsgKind::DataResponse, t_fwd + l2_lat)
                }
                _ => {
                    let t_mem = t_dir + self.cfg.machine.mem_latency;
                    self.fabric.send(home, core, MsgKind::DataResponse, t_mem)
                }
            },
            AccessKind::Write | AccessKind::Upgrade => {
                let mut completion = self
                    .fabric
                    .send(home, core, MsgKind::ControlResponse, t_dir);
                // Data supply.
                match owner {
                    Some(o) if o != core => {
                        let t_fwd = self.fabric.send(home, o, MsgKind::Forward, t_dir);
                        self.probe_remote(o, block, core, 0);
                        let t_data =
                            self.fabric
                                .send(o, core, MsgKind::DataResponse, t_fwd + l2_lat);
                        completion = completion.max(t_data);
                    }
                    _ if kind == AccessKind::Write => {
                        let t_mem = t_dir + self.cfg.machine.mem_latency;
                        let t_data = self.fabric.send(home, core, MsgKind::DataResponse, t_mem);
                        completion = completion.max(t_data);
                    }
                    _ => {}
                }
                // Invalidations to the remaining sharers.
                for s in targets.iter() {
                    if Some(s) == owner {
                        continue; // the forward doubles as its invalidation
                    }
                    let t_inv = self.fabric.send(home, s, MsgKind::Invalidate, t_dir);
                    self.probe_remote(s, block, core, 0);
                    let t_ack = self.fabric.send(
                        s,
                        core,
                        MsgKind::InvalidateAck,
                        t_inv + self.cfg.machine.l2.tag_cycles,
                    );
                    completion = completion.max(t_ack);
                }
                completion
            }
        }
    }

    /// Probes `probe_set` snoop-style from the requester and resolves the
    /// miss from owner/memory; shared core of the broadcast and multicast
    /// paths. Returns the completion time.
    #[allow(clippy::too_many_arguments)]
    fn snoop_resolve(
        &mut self,
        core: CoreId,
        t0: Cycle,
        block: BlockAddr,
        pc: u32,
        kind: AccessKind,
        owner: Option<CoreId>,
        targets: CoreSet,
        probe_set: CoreSet,
        probe_kind: MsgKind,
    ) -> Cycle {
        let home = self.dir.home_of(block);
        let l2_lat = self.cfg.machine.l2.tag_cycles + self.cfg.machine.l2.data_cycles;
        self.arrival.reset();
        for dst in probe_set.iter() {
            if dst == core {
                continue;
            }
            let t_arr = self.fabric.send(core, dst, probe_kind, t0);
            self.arrival.set(dst, t_arr);
            self.probe_remote_with_pc(dst, block, core, pc);
        }
        let mut completion = t0;
        match owner {
            Some(o) if o != core && self.arrival.contains(o) => {
                let t_probe = self.arrival.get(o).unwrap();
                let t_data = self
                    .fabric
                    .send(o, core, MsgKind::DataResponse, t_probe + l2_lat);
                completion = completion.max(t_data);
            }
            _ => {
                let t_probe_home = self.arrival.get(home).unwrap_or_else(|| {
                    // Memory fallback needs the home even if unprobed.
                    self.fabric.send(core, home, probe_kind, t0)
                });
                let t_mem = t_probe_home + self.cfg.machine.mem_latency;
                let t_data = self.fabric.send(home, core, MsgKind::DataResponse, t_mem);
                completion = completion.max(t_data);
            }
        }
        if kind.is_exclusive() {
            for s in targets.iter() {
                let Some(t_probe) = self.arrival.get(s) else {
                    continue;
                };
                if Some(s) == owner {
                    continue;
                }
                let t_ack = self.fabric.send(
                    s,
                    core,
                    MsgKind::InvalidateAck,
                    t_probe + self.cfg.machine.l2.tag_cycles,
                );
                completion = completion.max(t_ack);
            }
        }
        // Every probed node that neither supplied data nor acked an
        // invalidation still answers the snoop (bandwidth only).
        for dst in probe_set.iter() {
            if dst == core || Some(dst) == owner || (kind.is_exclusive() && targets.contains(dst)) {
                continue;
            }
            self.fabric.send_untimed(dst, core, MsgKind::SnoopResponse);
        }
        completion
    }

    /// Broadcast-snoop timing: probe everyone, owner supplies, memory backs
    /// up.
    #[allow(clippy::too_many_arguments)]
    fn broadcast_path(
        &mut self,
        _th: usize,
        core: CoreId,
        t0: Cycle,
        block: BlockAddr,
        pc: u32,
        kind: AccessKind,
        owner: Option<CoreId>,
        targets: CoreSet,
    ) -> Cycle {
        let everyone = CoreSet::all(self.dir.num_tiles());
        self.snoop_resolve(
            core,
            t0,
            block,
            pc,
            kind,
            owner,
            targets,
            everyone,
            MsgKind::SnoopProbe,
        )
    }

    /// Prediction-driven multicast snooping: probe the predicted set plus
    /// the home; on insufficiency the ordering point detects it and a
    /// second-phase broadcast repairs (latency penalty + full probe cost).
    #[allow(clippy::too_many_arguments)]
    fn multicast_path(
        &mut self,
        th: usize,
        core: CoreId,
        t0: Cycle,
        block: BlockAddr,
        pc: u32,
        kind: AccessKind,
        owner: Option<CoreId>,
        targets: CoreSet,
        miss: &MissInfo,
    ) -> Cycle {
        let communicating = !targets.is_empty();
        let pset = self.consult_predictor(th, core, miss, communicating);
        let home = self.dir.home_of(block);

        // The multicast always includes the home (ordering point + memory
        // fallback); prediction adds the likely owners/sharers.
        let mut probe_set = pset.union(CoreSet::single(home));
        probe_set.remove(core);
        let sufficient = probe_set.is_superset(targets);

        if !pset.is_empty() {
            self.stats.predictions += 1;
            self.stats.predicted_set_sum += pset.len() as u64;
            if sufficient {
                self.stats.pred_sufficient += 1;
            } else {
                self.stats.pred_insufficient += 1;
            }
        }
        // A sufficient multicast (including the always-probed home lucking
        // into the target) resolves without a second phase: the
        // communicating miss avoided the repair indirection.
        if sufficient && communicating {
            self.stats.pred_sufficient_comm += 1;
        }

        let completion = if sufficient {
            self.snoop_resolve(
                core,
                t0,
                block,
                pc,
                kind,
                owner,
                targets,
                probe_set,
                MsgKind::SnoopProbe,
            )
        } else {
            // Phase 1 probes miss the owner/sharers; the ordering point
            // (home) detects insufficiency after its probe arrives and
            // audits, then a full broadcast restarts the transaction.
            if communicating {
                self.stats.indirections += 1;
            }
            let _phase1 = self.snoop_resolve(
                core,
                t0,
                block,
                pc,
                AccessKind::Read, // phase-1 probes gather state only
                None,             // nobody supplies in phase 1
                CoreSet::empty(),
                probe_set,
                MsgKind::SnoopProbe,
            );
            let t_detect =
                self.fabric.send(core, home, MsgKind::Request, t0) + self.cfg.machine.dir_latency;
            let retry = self.fabric.send(home, core, MsgKind::Nack, t_detect);
            let everyone = CoreSet::all(self.dir.num_tiles());
            self.snoop_resolve(
                core,
                retry,
                block,
                pc,
                kind,
                owner,
                targets,
                everyone,
                MsgKind::SnoopProbe,
            )
        };

        if !pset.is_empty() || communicating {
            self.train_predictor(th, miss, targets, pset, sufficient && !pset.is_empty());
        }
        completion
    }

    /// The §4.5 prediction-augmented directory path.
    #[allow(clippy::too_many_arguments)]
    fn predicted_path(
        &mut self,
        th: usize,
        core: CoreId,
        t0: Cycle,
        block: BlockAddr,
        pc: u32,
        kind: AccessKind,
        owner: Option<CoreId>,
        targets: CoreSet,
        miss: &MissInfo,
    ) -> Cycle {
        let communicating = !targets.is_empty();
        let pset = self.consult_predictor(th, core, miss, communicating);
        let sufficient = !pset.is_empty() && pset.is_superset(targets);

        if pset.is_empty() {
            if communicating {
                self.stats.indirections += 1;
            }
            let completion = self.directory_path(core, t0, block, kind, owner, targets);
            self.train_predictor(th, miss, targets, CoreSet::empty(), false);
            return completion;
        }

        self.stats.predictions += 1;
        self.stats.predicted_set_sum += pset.len() as u64;
        if sufficient {
            self.stats.pred_sufficient += 1;
            if communicating {
                self.stats.pred_sufficient_comm += 1;
            }
        } else {
            self.stats.pred_insufficient += 1;
        }
        if communicating && !sufficient {
            self.stats.indirections += 1;
        }

        let home = self.dir.home_of(block);
        let l2_lat = self.cfg.machine.l2.tag_cycles + self.cfg.machine.l2.data_cycles;

        // Predicted requests race the directory request.
        self.arrival.reset();
        for p in pset.iter() {
            let t_arr = self.fabric.send(core, p, MsgKind::PredictedRequest, t0);
            self.account_pred_overhead(core, p, MsgKind::PredictedRequest, communicating);
            self.arrival.set(p, t_arr);
            self.probe_remote_with_pc(p, block, core, pc);
        }
        let t_dir =
            self.fabric.send(core, home, MsgKind::Request, t0) + self.cfg.machine.dir_latency;

        let completion = match kind {
            AccessKind::Read => match owner {
                Some(o) if o != core => {
                    if pset.contains(o) {
                        // 2-hop cache-to-cache transfer; the supplier also
                        // updates the directory off the critical path.
                        let t_arr = self.arrival.get(o).expect("predicted node was probed");
                        let t_data =
                            self.fabric
                                .send(o, core, MsgKind::DataResponse, t_arr + l2_lat);
                        self.fabric.send(o, home, MsgKind::DirectoryUpdate, t_data);
                        self.account_pred_overhead(o, home, MsgKind::DirectoryUpdate, true);
                        t_data
                    } else {
                        // Misprediction: the directory repairs at baseline
                        // latency (its request was already in flight).
                        let t_fwd = self.fabric.send(home, o, MsgKind::Forward, t_dir);
                        self.probe_remote(o, block, core, 0);
                        self.fabric
                            .send(o, core, MsgKind::DataResponse, t_fwd + l2_lat)
                    }
                }
                _ => {
                    let t_mem = t_dir + self.cfg.machine.mem_latency;
                    self.fabric.send(home, core, MsgKind::DataResponse, t_mem)
                }
            },
            AccessKind::Write | AccessKind::Upgrade => {
                // Exclusive requests always complete only after the
                // directory's response (§4.5).
                let mut completion = self
                    .fabric
                    .send(home, core, MsgKind::ControlResponse, t_dir);
                match owner {
                    Some(o) if o != core => {
                        let t_data = if pset.contains(o) {
                            let t_arr = self.arrival.get(o).expect("predicted node was probed");
                            self.fabric
                                .send(o, core, MsgKind::DataResponse, t_arr + l2_lat)
                        } else {
                            let t_fwd = self.fabric.send(home, o, MsgKind::Forward, t_dir);
                            self.probe_remote(o, block, core, 0);
                            self.fabric
                                .send(o, core, MsgKind::DataResponse, t_fwd + l2_lat)
                        };
                        completion = completion.max(t_data);
                    }
                    _ if kind == AccessKind::Write => {
                        let t_mem = t_dir + self.cfg.machine.mem_latency;
                        let t_data = self.fabric.send(home, core, MsgKind::DataResponse, t_mem);
                        completion = completion.max(t_data);
                    }
                    _ => {}
                }
                for s in targets.iter() {
                    if Some(s) == owner {
                        continue;
                    }
                    let t_ack = if let Some(t_arr) = self.arrival.get(s) {
                        // Correctly predicted sharer: invalidated directly.
                        self.fabric.send(
                            s,
                            core,
                            MsgKind::InvalidateAck,
                            t_arr + self.cfg.machine.l2.tag_cycles,
                        )
                    } else {
                        // The directory invalidates the sharers that were
                        // not predicted.
                        let t_inv = self.fabric.send(home, s, MsgKind::Invalidate, t_dir);
                        self.probe_remote(s, block, core, 0);
                        self.fabric.send(
                            s,
                            core,
                            MsgKind::InvalidateAck,
                            t_inv + self.cfg.machine.l2.tag_cycles,
                        )
                    };
                    completion = completion.max(t_ack);
                }
                completion
            }
        };

        // Wrongly-predicted nodes reply with Nacks (bandwidth only).
        for p in pset.iter() {
            let supplies = match kind {
                AccessKind::Read => owner == Some(p),
                _ => targets.contains(p),
            };
            if !supplies {
                let t_arr = self.arrival.get(p).expect("predicted node was probed");
                self.fabric.send(p, core, MsgKind::Nack, t_arr);
                self.account_pred_overhead(p, core, MsgKind::Nack, communicating);
            }
        }

        self.train_predictor(th, miss, targets, pset, sufficient);
        completion
    }

    /// Attributes a prediction-specific message's byte·hops to the
    /// communicating or non-communicating overhead bucket (Figure 9).
    fn account_pred_overhead(
        &mut self,
        src: CoreId,
        dst: CoreId,
        kind: MsgKind,
        communicating: bool,
    ) {
        let hops = self.fabric.mesh().hops(src, dst) as u64;
        let cost = kind.bytes() * hops;
        if communicating {
            self.stats.pred_overhead_comm += cost;
        } else {
            self.stats.pred_overhead_noncomm += cost;
        }
    }

    /// An external request probes a remote L2: snoop energy plus predictor
    /// observation.
    fn probe_remote(&mut self, node: CoreId, block: BlockAddr, requester: CoreId, pc: u32) {
        self.probe_remote_with_pc(node, block, requester, pc);
    }

    fn probe_remote_with_pc(&mut self, node: CoreId, block: BlockAddr, requester: CoreId, pc: u32) {
        self.stats.snoop_probes += 1;
        self.stats.snoop_energy += self.cfg.machine.snoop_probe_energy;
        let miss = MissInfo::new(block, pc, AccessKind::Read);
        let observer = self.core_thread[node.index()];
        let requester_id = if self.cfg.logical_tracking {
            CoreId::new(self.core_thread[requester.index()])
        } else {
            requester
        };
        self.threads[observer]
            .predictor
            .observe_remote_request(&miss, requester_id);
    }

    /// Checks the global coherence invariants: the directory's view matches
    /// the caches exactly, at most one supplier exists per block, and L1s
    /// are inclusive in their L2s.
    ///
    /// # Panics
    ///
    /// Panics (with a diagnostic) on any violation. Used by integration
    /// tests via [`CmpSystem::run_workload_validated`].
    fn validate_coherence(&self) {
        if let Err(msg) = self.coherence_report() {
            panic!("{msg}");
        }
    }

    /// The full-machine coherence sweep behind
    /// [`validate_coherence`](Self::validate_coherence), reporting the
    /// first broken invariant instead of panicking (so `spcp check` can
    /// exit nonzero with a diagnostic).
    fn coherence_report(&self) -> Result<(), String> {
        // Directory -> caches.
        for (block, entry) in self.dir.iter() {
            if entry.sharers.is_empty() {
                return Err(format!("{block}: tracked entry with no sharers"));
            }
            let mut suppliers = 0;
            for core in CoreId::all(self.dir.num_tiles()) {
                let state = self.tiles[core.index()].l2.probe(block).copied();
                if entry.sharers.contains(core) {
                    let Some(state) = state else {
                        return Err(format!(
                            "{block}: directory lists {core} but its L2 lacks the line"
                        ));
                    };
                    if !state.is_valid() {
                        return Err(format!("{block}: invalid line listed at {core}"));
                    }
                    if state.can_supply_data() {
                        suppliers += 1;
                        if entry.owner != Some(core) {
                            return Err(format!(
                                "{block}: supplier {core} is not the directory's owner"
                            ));
                        }
                    }
                } else if !(state.is_none() || state == Some(LineState::Invalid)) {
                    return Err(format!(
                        "{block}: {core} caches the line but the directory disagrees"
                    ));
                }
            }
            if suppliers > 1 {
                return Err(format!("{block}: {suppliers} simultaneous M/E/F suppliers"));
            }
        }
        // Caches -> directory, and L1 inclusion.
        for core in CoreId::all(self.dir.num_tiles()) {
            let tile = &self.tiles[core.index()];
            for (block, state) in tile.l2.iter() {
                if state.is_valid() && !self.dir.entry(block).sharers.contains(core) {
                    return Err(format!(
                        "{block}: {core} holds a valid line unknown to the directory"
                    ));
                }
            }
            for (block, _) in tile.l1.iter() {
                if tile.l2.probe(block).is_none() {
                    return Err(format!("{block}: L1 line at {core} violates L2 inclusion"));
                }
            }
        }
        Ok(())
    }

    fn into_stats(mut self) -> RunStats {
        // Flush the trailing epoch records.
        if self.cfg.record_epochs {
            for ctx in &mut self.threads {
                if let Some(inst) = ctx.cur_epoch {
                    let volumes = if ctx.cur_volumes.iter().any(|&v| v != 0) {
                        std::mem::take(&mut ctx.cur_volumes)
                    } else {
                        Vec::new()
                    };
                    ctx.records.push(EpochRecord {
                        id: inst.id,
                        instance: inst.instance,
                        volumes,
                        miss_targets: std::mem::take(&mut ctx.cur_targets),
                    });
                }
            }
        }
        let mut stats = self.stats;
        stats.noc = *self.fabric.stats();
        stats.predictor_storage_bits = self
            .threads
            .iter()
            .map(|t| t.predictor.storage_bits())
            .sum();
        let mut sp_total: Option<spcp_core::SpStats> = None;
        for ctx in &self.threads {
            if let Some(s) = ctx.predictor.sp_stats() {
                sp_total.get_or_insert_with(Default::default).merge(&s);
            }
        }
        stats.sp = sp_total;
        if self.cfg.record_epochs {
            stats.epoch_records = self.threads.into_iter().map(|t| t.records).collect();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, PredictorKind};
    use spcp_workloads::suite;

    fn machine() -> MachineConfig {
        MachineConfig::paper_16core()
    }

    fn run(proto: ProtocolKind, bench: spcp_workloads::BenchmarkSpec) -> RunStats {
        let w = bench.generate(16, 7);
        CmpSystem::run_workload(&w, &RunConfig::new(machine(), proto))
    }

    #[test]
    fn directory_run_completes_with_sane_stats() {
        let s = run(ProtocolKind::Directory, suite::x264());
        assert!(s.total_ops > 10_000);
        assert!(s.l2_misses > 0);
        assert!(s.comm_misses > 0, "workload must communicate");
        assert!(s.noncomm_misses > 0, "private streams must miss to memory");
        assert!(s.exec_cycles > 0);
        assert!(s.miss_latency.mean() > 0.0);
        // Every communicating miss pays indirection under the baseline.
        assert_eq!(s.indirections, s.comm_misses);
        assert_eq!(s.predictions, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(ProtocolKind::Directory, suite::x264());
        let b = run(ProtocolKind::Directory, suite::x264());
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.comm_misses, b.comm_misses);
        assert_eq!(a.noc.byte_hops, b.noc.byte_hops);
    }

    #[test]
    fn broadcast_reduces_comm_latency_but_adds_bandwidth() {
        let dir = run(ProtocolKind::Directory, suite::x264());
        let bc = run(ProtocolKind::Broadcast, suite::x264());
        assert!(
            bc.comm_miss_latency.mean() < dir.comm_miss_latency.mean(),
            "broadcast {} !< directory {}",
            bc.comm_miss_latency.mean(),
            dir.comm_miss_latency.mean()
        );
        assert!(
            bc.bandwidth() as f64 > 1.5 * dir.bandwidth() as f64,
            "broadcast must be far more bandwidth-hungry: {} vs {}",
            bc.bandwidth(),
            dir.bandwidth()
        );
        assert!(bc.snoop_probes > dir.snoop_probes);
    }

    #[test]
    fn sp_prediction_cuts_latency_between_directory_and_broadcast() {
        let dir = run(ProtocolKind::Directory, suite::x264());
        let bc = run(ProtocolKind::Broadcast, suite::x264());
        let sp = run(
            ProtocolKind::Predicted(PredictorKind::sp_default()),
            suite::x264(),
        );
        assert!(sp.predictions > 0);
        assert!(sp.accuracy() > 0.3, "accuracy = {}", sp.accuracy());
        assert!(
            sp.comm_miss_latency.mean() < dir.comm_miss_latency.mean(),
            "SP {} !< directory {}",
            sp.comm_miss_latency.mean(),
            dir.comm_miss_latency.mean()
        );
        assert!(sp.comm_miss_latency.mean() >= bc.comm_miss_latency.mean() * 0.95);
        // Bandwidth sits between the two extremes.
        assert!(sp.bandwidth() > dir.bandwidth());
        assert!(sp.bandwidth() < bc.bandwidth());
        assert!(sp.sp.is_some());
    }

    #[test]
    fn sp_fewer_indirections_than_directory() {
        let dir = run(ProtocolKind::Directory, suite::x264());
        let sp = run(
            ProtocolKind::Predicted(PredictorKind::sp_default()),
            suite::x264(),
        );
        assert!(sp.indirections < dir.indirections);
        assert_eq!(
            sp.indirections + sp.pred_sufficient_comm,
            sp.comm_misses,
            "every communicating miss either indirects or was predicted"
        );
    }

    #[test]
    fn multicast_snooping_cuts_broadcast_bandwidth() {
        let bc = run(ProtocolKind::Broadcast, suite::x264());
        let mc = run(
            ProtocolKind::MulticastSnoop(PredictorKind::sp_default()),
            suite::x264(),
        );
        assert!(mc.predictions > 0);
        assert!(
            mc.bandwidth() < bc.bandwidth(),
            "multicast {} !< broadcast {}",
            mc.bandwidth(),
            bc.bandwidth()
        );
        assert!(
            mc.snoop_probes < bc.snoop_probes,
            "multicast must probe fewer caches"
        );
        // Latency stays in broadcast's neighbourhood (mispredictions pay a
        // second phase).
        assert!(mc.comm_miss_latency.mean() < 2.0 * bc.comm_miss_latency.mean());
    }

    #[test]
    fn region_filter_removes_noncomm_prediction_overhead() {
        let w = suite::radix().generate(16, 7); // private-heavy
        let plain = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            ),
        );
        let filtered = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            )
            .with_snoop_filter(),
        );
        assert!(filtered.filtered_predictions > 0);
        assert!(
            filtered.pred_overhead_noncomm < plain.pred_overhead_noncomm,
            "filter must cut wasted prediction traffic: {} !< {}",
            filtered.pred_overhead_noncomm,
            plain.pred_overhead_noncomm
        );
        // Accuracy on communicating misses is preserved.
        assert!(filtered.accuracy() >= plain.accuracy() * 0.95);
    }

    #[test]
    fn software_sp_table_costs_sync_heavy_workloads() {
        let mut soft = machine();
        soft.sync_trap_cost = 300;
        let w = suite::fluidanimate().generate(16, 7); // fine-grain locking
        let hw = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            ),
        );
        let sw = CmpSystem::run_workload(
            &w,
            &RunConfig::new(soft, ProtocolKind::Predicted(PredictorKind::sp_default())),
        );
        assert!(
            sw.exec_cycles > hw.exec_cycles,
            "OS traps must slow the run"
        );
        // Prediction quality is essentially unchanged (timing shifts can
        // reorder lock races, so only approximate equality holds).
        assert!((sw.accuracy() - hw.accuracy()).abs() < 0.1);
    }

    #[test]
    fn warm_start_helps_first_instances() {
        let w = suite::cholesky().generate(16, 7); // many one-shot epochs
        let rec = CmpSystem::run_workload(
            &w,
            &RunConfig::new(machine(), ProtocolKind::Directory).recording(),
        );
        let book = crate::oracle::OracleBook::from_records(&rec.epoch_records, 0.10);
        let cold = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            ),
        );
        let warm = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            )
            .with_warm_start(book),
        );
        assert!(
            warm.accuracy() > cold.accuracy(),
            "profiled signatures must help: {} !> {}",
            warm.accuracy(),
            cold.accuracy()
        );
    }

    #[test]
    fn migration_hurts_physical_tracking_and_logical_tracking_recovers() {
        let w = suite::facesim().generate(16, 7); // stable partners
        let pinned = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            ),
        );
        let migrated_physical = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            )
            .with_migration(10, 1, false),
        );
        let migrated_logical = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            )
            .with_migration(10, 1, true),
        );
        assert!(migrated_physical.migrations > 0);
        assert!(
            migrated_physical.accuracy() < pinned.accuracy(),
            "stale physical signatures must mispredict after migration"
        );
        assert!(
            migrated_logical.accuracy() > migrated_physical.accuracy(),
            "logical-ID tracking must recover accuracy: {} !> {}",
            migrated_logical.accuracy(),
            migrated_physical.accuracy()
        );
    }

    #[test]
    fn recording_collects_epoch_records() {
        let w = suite::x264().generate(16, 7);
        let cfg = RunConfig::new(machine(), ProtocolKind::Directory).recording();
        let s = CmpSystem::run_workload(&w, &cfg);
        assert_eq!(s.epoch_records.len(), 16);
        let total: usize = s.epoch_records.iter().map(|r| r.len()).sum();
        assert!(total > 16, "each core must record many epoch instances");
        assert!(!s.pc_volumes.is_empty());
        // Volumes in records must add up to the communication matrix.
        let rec_total: u64 = s
            .epoch_records
            .iter()
            .flatten()
            .map(|r| r.total_volume())
            .sum();
        assert_eq!(rec_total, s.comm_matrix.total());
    }

    #[test]
    fn oracle_beats_or_matches_sp_accuracy() {
        let w = suite::bodytrack().generate(16, 7);
        let rec = CmpSystem::run_workload(
            &w,
            &RunConfig::new(machine(), ProtocolKind::Directory).recording(),
        );
        let book = crate::oracle::OracleBook::from_records(&rec.epoch_records, 0.10);
        let oracle = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine(),
                ProtocolKind::Predicted(PredictorKind::Oracle(book)),
            ),
        );
        let sp = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            ),
        );
        assert!(oracle.accuracy() > 0.0);
        assert!(
            oracle.accuracy() >= sp.accuracy() * 0.9,
            "oracle {} vs sp {}",
            oracle.accuracy(),
            sp.accuracy()
        );
    }

    #[test]
    fn baseline_predictors_run() {
        for kind in [
            PredictorKind::Addr {
                entries: None,
                macroblock_bytes: 256,
            },
            PredictorKind::Inst { entries: None },
            PredictorKind::Uni,
        ] {
            let s = run(ProtocolKind::Predicted(kind.clone()), suite::x264());
            assert!(s.predictions > 0, "{}", kind.name());
            assert!(s.accuracy() > 0.0, "{}", kind.name());
        }
    }

    #[test]
    fn mesi_variant_reduces_cache_to_cache_opportunity() {
        let mut mesi = machine();
        mesi.variant = crate::config::CoherenceVariant::Mesi;
        let w = suite::streamcluster().generate(16, 7); // read-sharing heavy
        let mesif_run = CmpSystem::run_workload_validated(
            &w,
            &RunConfig::new(machine(), ProtocolKind::Directory),
        );
        let mesi_run =
            CmpSystem::run_workload_validated(&w, &RunConfig::new(mesi, ProtocolKind::Directory));
        assert!(
            mesi_run.comm_misses < mesif_run.comm_misses,
            "MESI must lose clean-forwarding transfers: {} !< {}",
            mesi_run.comm_misses,
            mesif_run.comm_misses
        );
        // And the lost transfers become memory accesses, not vanished
        // misses.
        assert!(mesi_run.noncomm_misses > mesif_run.noncomm_misses);
    }

    #[test]
    fn mesi_variant_supports_prediction_unchanged() {
        let mut mesi = machine();
        mesi.variant = crate::config::CoherenceVariant::Mesi;
        let w = suite::x264().generate(16, 7);
        let s = CmpSystem::run_workload_validated(
            &w,
            &RunConfig::new(mesi, ProtocolKind::Predicted(PredictorKind::sp_default())),
        );
        assert!(s.accuracy() > 0.5, "accuracy = {}", s.accuracy());
        assert_eq!(s.indirections + s.pred_sufficient_comm, s.comm_misses);
    }

    #[test]
    fn migration_composes_with_tracing_and_recording() {
        let w = suite::x264().generate(16, 7);
        let s = CmpSystem::run_workload(
            &w,
            &RunConfig::new(
                machine(),
                ProtocolKind::Predicted(PredictorKind::sp_default()),
            )
            .with_migration(5, 3, true)
            .tracing()
            .recording(),
        );
        assert!(s.migrations > 0);
        assert!(!s.trace.is_empty());
        assert_eq!(s.epoch_records.len(), 16);
        assert_eq!(s.indirections + s.pred_sufficient_comm, s.comm_misses);
    }

    #[test]
    fn latency_histogram_covers_every_miss() {
        let s = run(ProtocolKind::Directory, suite::x264());
        assert_eq!(s.miss_latency_hist.total(), s.l2_misses);
        assert!(s.latency_percentile(0.5).is_some());
        // Memory misses (150+ cycles) must push P95 beyond 128 cycles.
        assert!(s.latency_percentile(0.95).unwrap() > 128);
    }

    /// The block audit is not vacuous: corrupting one cached line state
    /// after a run immediately trips the SWMR / directory-agreement check.
    #[cfg(any(debug_assertions, feature = "invariants"))]
    #[test]
    fn audit_detects_corrupted_cache_state() {
        let w = suite::x264().generate(16, 7);
        let cfg = RunConfig::new(machine(), ProtocolKind::Directory);
        let mut sys = CmpSystem::new(&cfg, w.num_cores());
        sys.run(&w);
        // Find a block shared by at least two caches and silently flip one
        // copy to Modified — a state the protocol could never produce.
        let (block, victim) = sys
            .dir
            .iter()
            .find(|(_, e)| e.sharers.len() >= 2)
            .map(|(b, e)| (b, e.sharers.iter().next().expect("non-empty sharers")))
            .expect("a 16-core run must leave some block shared");
        assert!(sys.audit_block(block).is_ok(), "pre-corruption audit");
        *sys.tiles[victim.index()]
            .l2
            .probe_mut(block)
            .expect("directory says the line is resident") = LineState::Modified;
        let err = sys.audit_block(block).expect_err("corruption undetected");
        assert!(
            err.contains("SWMR") || err.contains("writable"),
            "unexpected audit message: {err}"
        );
    }

    /// `run_workload_checked` surfaces violations instead of panicking.
    #[cfg(any(debug_assertions, feature = "invariants"))]
    #[test]
    fn checked_run_is_clean_on_suite_workload() {
        let w = suite::x264().generate(16, 7);
        let cfg = RunConfig::new(machine(), ProtocolKind::Directory);
        let stats = CmpSystem::run_workload_checked(&w, &cfg)
            .unwrap_or_else(|v| panic!("spurious violation: {v}"));
        assert!(stats.l2_misses > 0);
    }

    #[test]
    fn comm_ratio_tracks_private_mix() {
        // radix is private-heavy, streamcluster sharing-heavy.
        let lo = run(ProtocolKind::Directory, suite::radix());
        let hi = run(ProtocolKind::Directory, suite::streamcluster());
        assert!(
            lo.comm_ratio() + 0.15 < hi.comm_ratio(),
            "radix {} !< streamcluster {}",
            lo.comm_ratio(),
            hi.comm_ratio()
        );
    }
}
