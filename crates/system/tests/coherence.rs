#[test]
fn coherence_invariants_hold() {
    use spcp_system::*;
    let w = spcp_workloads::suite::x264().generate(16, 7);
    for proto in [
        ProtocolKind::Directory,
        ProtocolKind::Broadcast,
        ProtocolKind::Predicted(PredictorKind::sp_default()),
    ] {
        CmpSystem::run_workload_validated(
            &w,
            &RunConfig::new(MachineConfig::paper_16core(), proto),
        );
    }
}
