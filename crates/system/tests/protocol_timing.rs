//! Analytic protocol-timing tests on hand-crafted micro-workloads with
//! contention disabled: every latency is checked against the Table-4
//! pipeline arithmetic.

use spcp_mem::Addr;
use spcp_noc::NocConfig;
use spcp_sync::{LockId, StaticSyncId, SyncPoint};
use spcp_system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig, RunStats};
use spcp_workloads::{Op, Workload};

fn ideal_machine() -> MachineConfig {
    let mut m = MachineConfig::paper_16core();
    m.noc = NocConfig {
        model_contention: false,
        ..NocConfig::default()
    };
    m
}

fn ld(addr: u64) -> Op {
    Op::Load {
        addr: Addr::new(addr),
        pc: 0x10,
    }
}

fn st(addr: u64) -> Op {
    Op::Store {
        addr: Addr::new(addr),
        pc: 0x20,
    }
}

fn barrier(id: u32) -> Op {
    Op::Sync(SyncPoint::barrier(StaticSyncId::new(id)))
}

/// 16 threads; only cores 0 and 1 touch the target block.
fn two_party(ops0: Vec<Op>, ops1: Vec<Op>) -> Workload {
    let mut threads = vec![Vec::new(); 16];
    // Everybody participates in the delimiting barriers.
    for (c, t) in threads.iter_mut().enumerate() {
        t.push(barrier(1));
        if c == 0 {
            t.extend(ops0.clone());
        }
        t.push(barrier(2));
        if c == 1 {
            t.extend(ops1.clone());
        }
        t.push(barrier(3));
    }
    Workload::from_threads("two-party", threads)
}

fn run(w: &Workload, proto: ProtocolKind) -> RunStats {
    CmpSystem::run_workload_validated(w, &RunConfig::new(ideal_machine(), proto))
}

// Addresses: block 0x40000/64 = 0x1000 -> home = 0x1000 % 16 = core 0.
const BLOCK_HOME0: u64 = 0x40000;

#[test]
fn cold_read_miss_goes_to_memory() {
    // Core 1 reads a block nobody cached: home indirection + memory.
    let w = two_party(vec![], vec![ld(BLOCK_HOME0)]);
    let s = run(&w, ProtocolKind::Directory);
    assert_eq!(s.comm_misses, 0);
    assert_eq!(s.noncomm_misses, 1);
    // Latency: req 1 hop (core1->core0: 3 cyc) + dir 6 + mem 150 + data
    // back 1 hop (3 cyc) = 162.
    assert_eq!(s.miss_latency.min(), Some(162));
    assert_eq!(s.miss_latency.max(), Some(162));
}

#[test]
fn cache_to_cache_read_is_a_communicating_miss() {
    // Core 0 writes the block (miss to memory), then core 1 reads it:
    // directory 3-hop c2c transfer.
    let w = two_party(vec![st(BLOCK_HOME0)], vec![ld(BLOCK_HOME0)]);
    let s = run(&w, ProtocolKind::Directory);
    assert_eq!(s.comm_misses, 1);
    assert_eq!(s.noncomm_misses, 1);
    // Read latency: req core1->home(core0) 3 + dir 6 + fwd home->owner
    // (core0, same tile: 0) + L2 probe 8 + data core0->core1 3 = 20.
    assert_eq!(s.comm_miss_latency.min(), Some(20));
}

#[test]
fn upgrade_invalidates_the_reader() {
    // Core 0 produces; core 1 reads (S); core 0 writes again -> upgrade
    // must invalidate core 1.
    let mut threads = vec![Vec::new(); 16];
    for (c, t) in threads.iter_mut().enumerate() {
        t.push(barrier(1));
        if c == 0 {
            t.push(st(BLOCK_HOME0));
        }
        t.push(barrier(2));
        if c == 1 {
            t.push(ld(BLOCK_HOME0));
        }
        t.push(barrier(3));
        if c == 0 {
            t.push(st(BLOCK_HOME0));
        }
        t.push(barrier(4));
        if c == 1 {
            t.push(ld(BLOCK_HOME0));
        }
        t.push(barrier(5));
    }
    let w = Workload::from_threads("upgrade", threads);
    let s = run(&w, ProtocolKind::Directory);
    // Miss 1: core0 write (cold). Miss 2: core1 read (c2c). Miss 3: core0
    // upgrade (invalidate core1). Miss 4: core1 re-read (c2c again).
    assert_eq!(s.l2_misses, 4);
    assert_eq!(s.upgrades, 1);
    assert_eq!(s.comm_misses, 3);
}

#[test]
fn broadcast_read_skips_indirection() {
    let w = two_party(vec![st(BLOCK_HOME0)], vec![ld(BLOCK_HOME0)]);
    let s = run(&w, ProtocolKind::Broadcast);
    assert_eq!(s.comm_misses, 1);
    // Probe core1->core0 3 + L2 probe 8 + data 3 = 14 (2-hop transfer).
    assert_eq!(s.comm_miss_latency.min(), Some(14));
    // 15 probes were sent.
    assert!(s.snoop_probes >= 15);
}

#[test]
fn correct_prediction_matches_broadcast_latency() {
    // Prime SP's history: two instances of the same epoch where core 1
    // fetches from core 0, so instance 3 is predicted.
    let mut threads = vec![Vec::new(); 16];
    for (c, t) in threads.iter_mut().enumerate() {
        for _round in 0u32..3 {
            t.push(barrier(10));
            if c == 0 {
                for b in 0..16 {
                    t.push(st(BLOCK_HOME0 + b * 64));
                }
            }
            t.push(barrier(20));
            if c == 1 {
                for b in 0..16 {
                    t.push(ld(BLOCK_HOME0 + b * 64));
                }
            }
        }
        t.push(barrier(99));
    }
    let w = Workload::from_threads("primed", threads);
    let s = run(&w, ProtocolKind::Predicted(PredictorKind::sp_default()));
    // The two epochs repeat 3 times; instances 2 and 3 of the read epoch
    // predict {core0} from history.
    assert!(
        s.pred_sufficient_comm >= 16,
        "predicted = {}",
        s.pred_sufficient_comm
    );
    // Predicted reads complete in 14 cycles (like broadcast's 2-hop).
    assert_eq!(s.comm_miss_latency.min(), Some(14));
}

#[test]
fn lock_protected_data_migrates_between_holders() {
    // Cores 0 and 1 take turns in a critical section writing the same
    // block; each handover is a cache-to-cache transfer.
    let lock = LockId::new(5);
    let mut threads = vec![Vec::new(); 16];
    for (c, t) in threads.iter_mut().enumerate() {
        t.push(barrier(1));
        if c < 2 {
            for _ in 0..4 {
                t.push(Op::Sync(SyncPoint::lock(lock)));
                t.push(ld(BLOCK_HOME0));
                t.push(st(BLOCK_HOME0));
                t.push(Op::Sync(SyncPoint::unlock(lock)));
            }
        }
        t.push(barrier(2));
    }
    let w = Workload::from_threads("migratory", threads);
    let s = run(&w, ProtocolKind::Directory);
    // After the first holder, every handover misses cache-to-cache.
    assert!(s.comm_misses >= 6, "comm = {}", s.comm_misses);
    let sp = run(&w, ProtocolKind::Predicted(PredictorKind::sp_default()));
    // SP's lock-holder union predicts the previous holder.
    assert!(
        sp.sp.expect("sp stats").correct_lock > 0,
        "lock-based predictions must fire"
    );
}

#[test]
fn exec_time_covers_the_longest_core() {
    let w = two_party(vec![st(BLOCK_HOME0)], vec![ld(BLOCK_HOME0)]);
    let s = run(&w, ProtocolKind::Directory);
    // Three barriers at ~30 cycles release cost plus the misses.
    assert!(s.exec_cycles > 3 * 30);
    assert_eq!(s.total_ops as usize, 16 * 3 + 2);
}
