//! Comparison predictors: ADDR, INST and UNI (§5.4 of the paper).
//!
//! All three follow the **group** destination-set prediction model of
//! Martin et al. (ISCA 2003), exactly as the paper's comparison study
//! configures them:
//!
//! * each table entry holds one 2-bit saturating *train-up* counter per
//!   core plus a 5-bit roll-over counter implementing gradual *train-down*;
//! * the predicted set is every core whose counter has its MSB set;
//! * entries train on the targets of the core's own misses **and** on
//!   incoming coherence requests observed at the cache (which reveal the
//!   requester as a likely future supplier);
//! * [`AddrPredictor`] indexes entries by 256-byte macroblock,
//!   [`InstPredictor`] by the static load/store PC, and [`UniPredictor`]
//!   keeps exactly one entry (pure temporal locality, no index).
//!
//! Unlimited and finite-capacity (LRU) table variants support the paper's
//! Figure 13 space-sensitivity study.
//!
//! # Examples
//!
//! ```
//! use spcp_baselines::{AddrPredictor, UniPredictor};
//! use spcp_core::{AccessKind, MissInfo, PredictionOutcome, TargetPredictor};
//! use spcp_mem::BlockAddr;
//! use spcp_sim::{CoreId, CoreSet};
//!
//! let mut p = UniPredictor::new(CoreId::new(0), 16);
//! let miss = MissInfo::new(BlockAddr::from_index(5), 0x40, AccessKind::Read);
//! let actual = CoreSet::single(CoreId::new(3));
//! // Two trainings push core 3's 2-bit counter across the MSB threshold.
//! for _ in 0..2 {
//!     p.train(&miss, PredictionOutcome { actual, predicted: CoreSet::empty(), sufficient: false });
//! }
//! assert!(p.predict(&miss).contains(CoreId::new(3)));
//! ```

#![warn(missing_docs)]

pub mod group;
pub mod lru;
pub mod policy;
pub mod schemes;

pub use group::GroupEntry;
pub use lru::LruTable;
pub use policy::SetPolicy;
pub use schemes::{AddrPredictor, InstPredictor, UniPredictor};
