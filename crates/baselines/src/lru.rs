//! A bounded LRU map for finite-capacity predictor tables.

use std::collections::HashMap;
use std::hash::Hash;

/// A key-value table with optional capacity and least-recently-used
/// eviction.
///
/// Predictor tables in the comparison study come in two flavours:
/// *unlimited* (idealized, `capacity = None`) and *finite* (e.g. 512
/// entries ≈ 4 KB for Figure 13). `LruTable` serves both.
///
/// # Examples
///
/// ```
/// use spcp_baselines::LruTable;
///
/// let mut t: LruTable<u32, &str> = LruTable::new(Some(2));
/// t.insert(1, "a");
/// t.insert(2, "b");
/// t.get_mut(&1); // touch 1, so 2 becomes LRU
/// t.insert(3, "c");
/// assert!(t.get_mut(&2).is_none());
/// assert!(t.get_mut(&1).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct LruTable<K, V> {
    map: HashMap<K, (V, u64)>,
    capacity: Option<usize>,
    clock: u64,
}

impl<K: Eq + Hash + Copy, V> LruTable<K, V> {
    /// Creates a table; `None` capacity means unlimited.
    ///
    /// # Panics
    ///
    /// Panics if a zero capacity is given.
    pub fn new(capacity: Option<usize>) -> Self {
        if let Some(c) = capacity {
            assert!(c > 0, "capacity must be positive");
        }
        LruTable {
            map: HashMap::new(),
            capacity,
            clock: 0,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Fetches an entry, refreshing its recency.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|(v, stamp)| {
            *stamp = clock;
            v
        })
    }

    /// Inserts or replaces an entry, evicting the LRU entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        self.clock += 1;
        let clock = self.clock;
        if !self.map.contains_key(&key) {
            if let Some(cap) = self.capacity {
                while self.map.len() >= cap {
                    let victim = self
                        .map
                        .iter()
                        .min_by_key(|(_, (_, stamp))| *stamp)
                        .map(|(k, _)| *k)
                        .expect("non-empty map");
                    self.map.remove(&victim);
                }
            }
        }
        self.map.insert(key, (value, clock));
    }

    /// Fetches an entry, inserting `default()` first when absent (with
    /// LRU eviction if needed).
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        if !self.map.contains_key(&key) {
            self.insert(key, default());
        } else {
            self.clock += 1;
        }
        let clock = self.clock;
        let (v, stamp) = self.map.get_mut(&key).expect("just ensured present");
        *stamp = clock;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_evicts() {
        let mut t: LruTable<u32, u32> = LruTable::new(None);
        for i in 0..1000 {
            t.insert(i, i);
        }
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t: LruTable<u32, u32> = LruTable::new(Some(2));
        t.insert(1, 10);
        t.insert(2, 20);
        assert_eq!(t.get_mut(&1), Some(&mut 10));
        t.insert(3, 30);
        assert!(t.get_mut(&2).is_none(), "2 was least recently used");
        assert!(t.get_mut(&1).is_some());
        assert!(t.get_mut(&3).is_some());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut t: LruTable<u32, u32> = LruTable::new(Some(2));
        t.insert(1, 10);
        t.insert(2, 20);
        t.insert(1, 11);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get_mut(&1), Some(&mut 11));
        assert!(t.get_mut(&2).is_some());
    }

    #[test]
    fn get_or_insert_with_creates_once() {
        let mut t: LruTable<u32, Vec<u8>> = LruTable::new(Some(4));
        t.get_or_insert_with(7, || vec![1]).push(2);
        t.get_or_insert_with(7, || vec![9]).push(3);
        assert_eq!(t.get_mut(&7), Some(&mut vec![1, 2, 3]));
    }

    #[test]
    fn get_or_insert_respects_capacity() {
        let mut t: LruTable<u32, u32> = LruTable::new(Some(2));
        t.get_or_insert_with(1, || 1);
        t.get_or_insert_with(2, || 2);
        t.get_or_insert_with(3, || 3);
        assert_eq!(t.len(), 2);
        assert!(t.get_mut(&1).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: LruTable<u32, u32> = LruTable::new(Some(0));
    }
}
