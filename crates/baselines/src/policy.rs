//! Destination-set policies (Martin et al.; the paper's §5.4 footnote).
//!
//! All predictors in the comparison study use the **group** policy; the
//! footnote notes that "owner" and "group/owner" policies "can also be used
//! and fairly compared as far as all predictors are tuned to the same base
//! policy". These variants trade accuracy for bandwidth:
//!
//! * [`SetPolicy::Group`] — predict every trained-up core (high coverage,
//!   most traffic);
//! * [`SetPolicy::Owner`] — predict only the hottest core (cheapest, but
//!   writes with several sharers become insufficient);
//! * [`SetPolicy::GroupOwner`] — owner for reads (which need exactly one
//!   supplier), group for writes (which need every sharer).

use spcp_core::AccessKind;

/// How a predictor entry's per-core weights reduce to a predicted set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SetPolicy {
    /// Every core above the training threshold.
    #[default]
    Group,
    /// Only the single hottest core.
    Owner,
    /// Owner for reads, group for writes/upgrades.
    GroupOwner,
}

impl SetPolicy {
    /// Whether this policy reduces to the single hottest core for a miss
    /// of the given kind.
    pub fn wants_owner_only(self, kind: AccessKind) -> bool {
        match self {
            SetPolicy::Group => false,
            SetPolicy::Owner => true,
            SetPolicy::GroupOwner => kind == AccessKind::Read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_never_reduces() {
        for k in [AccessKind::Read, AccessKind::Write, AccessKind::Upgrade] {
            assert!(!SetPolicy::Group.wants_owner_only(k));
        }
    }

    #[test]
    fn owner_always_reduces() {
        for k in [AccessKind::Read, AccessKind::Write, AccessKind::Upgrade] {
            assert!(SetPolicy::Owner.wants_owner_only(k));
        }
    }

    #[test]
    fn group_owner_splits_by_kind() {
        assert!(SetPolicy::GroupOwner.wants_owner_only(AccessKind::Read));
        assert!(!SetPolicy::GroupOwner.wants_owner_only(AccessKind::Write));
        assert!(!SetPolicy::GroupOwner.wants_owner_only(AccessKind::Upgrade));
    }

    #[test]
    fn default_is_group() {
        assert_eq!(SetPolicy::default(), SetPolicy::Group);
    }
}
