//! The ADDR, INST and UNI predictor schemes.

use crate::group::GroupEntry;
use crate::lru::LruTable;
use crate::policy::SetPolicy;
use spcp_core::{MissInfo, PredictionOutcome, TargetPredictor};
use spcp_sim::{CoreId, CoreSet};

/// Default ADDR macroblock size (§5.4: 256-byte macroblocks).
pub const DEFAULT_MACROBLOCK_BYTES: u64 = 256;

fn train_entry(entry: &mut GroupEntry, me: CoreId, targets: CoreSet) {
    for t in targets.iter() {
        if t != me {
            entry.train_up(t);
        }
    }
}

fn predicted(entry: &GroupEntry, me: CoreId, policy: SetPolicy, miss: &MissInfo) -> CoreSet {
    let mut set = if policy.wants_owner_only(miss.kind) {
        entry
            .predicted_owner()
            .map(CoreSet::single)
            .unwrap_or(CoreSet::empty())
    } else {
        entry.predicted_set()
    };
    set.remove(me);
    set
}

/// Address-based destination-set predictor, indexed by macroblock.
///
/// Expects that misses to (nearby) addresses repeat their communication
/// behaviour. Trains on the true targets of the core's own misses *and* on
/// incoming remote requests touching the macroblock (the requester will own
/// the line next).
///
/// # Examples
///
/// ```
/// use spcp_baselines::AddrPredictor;
/// use spcp_core::TargetPredictor;
/// use spcp_sim::CoreId;
///
/// let p = AddrPredictor::unlimited(CoreId::new(0), 16);
/// assert_eq!(p.name(), "ADDR");
/// ```
#[derive(Debug)]
pub struct AddrPredictor {
    me: CoreId,
    num_cores: usize,
    macro_bytes: u64,
    policy: SetPolicy,
    table: LruTable<u64, GroupEntry>,
}

impl AddrPredictor {
    /// An idealized predictor with unbounded table.
    pub fn unlimited(me: CoreId, num_cores: usize) -> Self {
        Self::with_capacity(me, num_cores, None, DEFAULT_MACROBLOCK_BYTES)
    }

    /// A finite predictor with `entries` table entries and the given
    /// macroblock size.
    pub fn with_capacity(
        me: CoreId,
        num_cores: usize,
        entries: Option<usize>,
        macro_bytes: u64,
    ) -> Self {
        AddrPredictor {
            me,
            num_cores,
            macro_bytes,
            policy: SetPolicy::Group,
            table: LruTable::new(entries),
        }
    }

    /// Selects the destination-set policy (default: group).
    pub fn set_policy(mut self, policy: SetPolicy) -> Self {
        self.policy = policy;
        self
    }

    fn key(&self, miss: &MissInfo) -> u64 {
        miss.block.macro_block(self.macro_bytes).index()
    }

    /// Number of resident table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl TargetPredictor for AddrPredictor {
    fn name(&self) -> &'static str {
        "ADDR"
    }

    fn predict(&mut self, miss: &MissInfo) -> CoreSet {
        let key = self.key(miss);
        let me = self.me;
        let policy = self.policy;
        self.table
            .get_mut(&key)
            .map(|e| predicted(e, me, policy, miss))
            .unwrap_or(CoreSet::empty())
    }

    fn train(&mut self, miss: &MissInfo, outcome: PredictionOutcome) {
        if outcome.actual.is_empty() {
            return;
        }
        let key = self.key(miss);
        let n = self.num_cores;
        let me = self.me;
        let entry = self.table.get_or_insert_with(key, || GroupEntry::new(n));
        train_entry(entry, me, outcome.actual);
    }

    fn observe_remote_request(&mut self, miss: &MissInfo, requester: CoreId) {
        let key = self.key(miss);
        let n = self.num_cores;
        let me = self.me;
        let entry = self.table.get_or_insert_with(key, || GroupEntry::new(n));
        if requester != me {
            entry.train_up(requester);
        }
    }

    fn storage_bits(&self) -> u64 {
        // Per entry: group cell + 32-bit tag.
        self.table.len() as u64 * (GroupEntry::storage_bits(self.num_cores) + 32)
    }
}

/// Instruction-based destination-set predictor, indexed by the static
/// load/store PC.
#[derive(Debug)]
pub struct InstPredictor {
    me: CoreId,
    num_cores: usize,
    policy: SetPolicy,
    table: LruTable<u32, GroupEntry>,
}

impl InstPredictor {
    /// An idealized predictor with unbounded table.
    pub fn unlimited(me: CoreId, num_cores: usize) -> Self {
        Self::with_capacity(me, num_cores, None)
    }

    /// A finite predictor with `entries` table entries.
    pub fn with_capacity(me: CoreId, num_cores: usize, entries: Option<usize>) -> Self {
        InstPredictor {
            me,
            num_cores,
            policy: SetPolicy::Group,
            table: LruTable::new(entries),
        }
    }

    /// Selects the destination-set policy (default: group).
    pub fn set_policy(mut self, policy: SetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of resident table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl TargetPredictor for InstPredictor {
    fn name(&self) -> &'static str {
        "INST"
    }

    fn predict(&mut self, miss: &MissInfo) -> CoreSet {
        let me = self.me;
        let policy = self.policy;
        self.table
            .get_mut(&miss.pc)
            .map(|e| predicted(e, me, policy, miss))
            .unwrap_or(CoreSet::empty())
    }

    fn train(&mut self, miss: &MissInfo, outcome: PredictionOutcome) {
        if outcome.actual.is_empty() {
            return;
        }
        let n = self.num_cores;
        let me = self.me;
        let entry = self
            .table
            .get_or_insert_with(miss.pc, || GroupEntry::new(n));
        train_entry(entry, me, outcome.actual);
    }

    fn observe_remote_request(&mut self, miss: &MissInfo, requester: CoreId) {
        // The remote requester's PC is not visible at this cache; INST
        // trains the entry of the *local* instruction that last touched the
        // block. The comparison model approximates this by training the
        // entry indexed by the request's carried PC when present (our
        // simulator forwards the requesting instruction's PC in the probe).
        let n = self.num_cores;
        let me = self.me;
        let entry = self
            .table
            .get_or_insert_with(miss.pc, || GroupEntry::new(n));
        if requester != me {
            entry.train_up(requester);
        }
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * (GroupEntry::storage_bits(self.num_cores) + 32)
    }
}

/// The index-free locality predictor: one global entry trained on the
/// targets of this core's previous misses.
///
/// Represents the cheapest possible scheme (a single register file), the
/// "UNI" point of Figures 12–13.
#[derive(Debug)]
pub struct UniPredictor {
    me: CoreId,
    num_cores: usize,
    policy: SetPolicy,
    entry: GroupEntry,
}

impl UniPredictor {
    /// Creates the single-entry predictor.
    pub fn new(me: CoreId, num_cores: usize) -> Self {
        UniPredictor {
            me,
            num_cores,
            policy: SetPolicy::Group,
            entry: GroupEntry::new(num_cores),
        }
    }

    /// Selects the destination-set policy (default: group).
    pub fn set_policy(mut self, policy: SetPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl TargetPredictor for UniPredictor {
    fn name(&self) -> &'static str {
        "UNI"
    }

    fn predict(&mut self, miss: &MissInfo) -> CoreSet {
        predicted(&self.entry, self.me, self.policy, miss)
    }

    fn train(&mut self, _miss: &MissInfo, outcome: PredictionOutcome) {
        // UNI trains only on the core's own coherence responses.
        train_entry(&mut self.entry, self.me, outcome.actual);
    }

    fn storage_bits(&self) -> u64 {
        GroupEntry::storage_bits(self.num_cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcp_core::AccessKind;
    use spcp_mem::BlockAddr;

    fn miss(block: u64, pc: u32) -> MissInfo {
        MissInfo::new(BlockAddr::from_index(block), pc, AccessKind::Read)
    }

    fn out(actual_bits: u64) -> PredictionOutcome {
        PredictionOutcome {
            actual: CoreSet::from_bits(actual_bits),
            predicted: CoreSet::empty(),
            sufficient: false,
        }
    }

    #[test]
    fn addr_learns_per_macroblock() {
        let mut p = AddrPredictor::unlimited(CoreId::new(0), 16);
        // Blocks 0..3 share macroblock 0 (256 B); block 100 does not.
        p.train(&miss(0, 1), out(0b100));
        p.train(&miss(1, 1), out(0b100));
        assert!(
            p.predict(&miss(3, 2)).contains(CoreId::new(2)),
            "same macroblock"
        );
        assert!(p.predict(&miss(100, 2)).is_empty(), "different macroblock");
    }

    #[test]
    fn addr_spatial_locality_shares_training() {
        let mut p = AddrPredictor::unlimited(CoreId::new(0), 16);
        // Adjacent blocks each trained once still cross the 2-training
        // threshold because they alias to one macroblock entry.
        p.train(&miss(0, 1), out(0b10));
        p.train(&miss(1, 1), out(0b10));
        assert_eq!(p.predict(&miss(2, 1)), CoreSet::from_bits(0b10));
    }

    #[test]
    fn addr_remote_request_trains_requester() {
        let mut p = AddrPredictor::unlimited(CoreId::new(0), 16);
        p.observe_remote_request(&miss(0, 0), CoreId::new(9));
        p.observe_remote_request(&miss(0, 0), CoreId::new(9));
        assert!(p.predict(&miss(1, 0)).contains(CoreId::new(9)));
    }

    #[test]
    fn addr_finite_capacity_evicts() {
        let mut p = AddrPredictor::with_capacity(CoreId::new(0), 16, Some(2), 256);
        for mb in 0..3u64 {
            let b = mb * 4; // distinct macroblocks
            p.train(&miss(b, 1), out(0b10));
            p.train(&miss(b, 1), out(0b10));
        }
        assert_eq!(p.entries(), 2);
        assert!(
            p.predict(&miss(0, 1)).is_empty(),
            "first macroblock evicted"
        );
    }

    #[test]
    fn inst_learns_per_pc() {
        let mut p = InstPredictor::unlimited(CoreId::new(0), 16);
        p.train(&miss(0, 0x40), out(0b1000));
        p.train(&miss(50, 0x40), out(0b1000));
        assert!(
            p.predict(&miss(999, 0x40)).contains(CoreId::new(3)),
            "same pc"
        );
        assert!(p.predict(&miss(0, 0x44)).is_empty(), "different pc");
    }

    #[test]
    fn inst_storage_smaller_than_addr_for_few_pcs() {
        let mut addr = AddrPredictor::unlimited(CoreId::new(0), 16);
        let mut inst = InstPredictor::unlimited(CoreId::new(0), 16);
        // One static instruction touches 64 distinct macroblocks.
        for b in 0..256u64 {
            addr.train(&miss(b, 0x40), out(0b10));
            inst.train(&miss(b, 0x40), out(0b10));
        }
        assert!(inst.storage_bits() < addr.storage_bits());
    }

    #[test]
    fn uni_predicts_recent_targets_regardless_of_index() {
        let mut p = UniPredictor::new(CoreId::new(0), 16);
        p.train(&miss(0, 0), out(0b100));
        p.train(&miss(77, 123), out(0b100));
        assert!(p.predict(&miss(5000, 9)).contains(CoreId::new(2)));
    }

    #[test]
    fn uni_adapts_away_from_stale_targets() {
        let mut p = UniPredictor::new(CoreId::new(0), 16);
        p.train(&miss(0, 0), out(0b10));
        p.train(&miss(0, 0), out(0b10));
        for _ in 0..200 {
            p.train(&miss(0, 0), out(0b1000));
        }
        let set = p.predict(&miss(0, 0));
        assert!(set.contains(CoreId::new(3)));
        assert!(!set.contains(CoreId::new(1)), "stale target must decay");
    }

    #[test]
    fn none_of_the_schemes_predict_self() {
        let me = CoreId::new(2);
        let mut a = AddrPredictor::unlimited(me, 16);
        let mut i = InstPredictor::unlimited(me, 16);
        let mut u = UniPredictor::new(me, 16);
        for p in [&mut a as &mut dyn TargetPredictor, &mut i, &mut u] {
            p.train(&miss(0, 1), out(0b100)); // bit 2 = self
            p.train(&miss(0, 1), out(0b100));
            assert!(!p.predict(&miss(0, 1)).contains(me), "{}", p.name());
        }
    }

    #[test]
    fn non_communicating_misses_do_not_train_tables() {
        let mut p = AddrPredictor::unlimited(CoreId::new(0), 16);
        p.train(&miss(0, 1), out(0));
        assert_eq!(p.entries(), 0);
    }

    #[test]
    fn owner_policy_predicts_single_hottest() {
        let mut p = AddrPredictor::unlimited(CoreId::new(0), 16).set_policy(SetPolicy::Owner);
        p.train(&miss(0, 1), out(0b0110)); // cores 1 and 2
        p.train(&miss(0, 1), out(0b0110));
        p.train(&miss(0, 1), out(0b0100)); // core 2 pulls ahead
        let set = p.predict(&miss(0, 1));
        assert_eq!(set.len(), 1);
        assert!(set.contains(CoreId::new(2)));
    }

    #[test]
    fn group_owner_policy_splits_reads_and_writes() {
        let mut p = InstPredictor::unlimited(CoreId::new(0), 16).set_policy(SetPolicy::GroupOwner);
        p.train(&miss(0, 0x40), out(0b0110));
        p.train(&miss(0, 0x40), out(0b0110));
        let read = MissInfo::new(BlockAddr::from_index(0), 0x40, AccessKind::Read);
        let write = MissInfo::new(BlockAddr::from_index(0), 0x40, AccessKind::Write);
        assert_eq!(p.predict(&read).len(), 1, "reads use the owner policy");
        assert_eq!(p.predict(&write).len(), 2, "writes use the group policy");
    }

    #[test]
    fn uni_storage_is_single_cell() {
        let p = UniPredictor::new(CoreId::new(0), 16);
        assert_eq!(p.storage_bits(), 37);
    }
}
