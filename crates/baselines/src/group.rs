//! The "group" destination-set predictor cell of Martin et al.

use spcp_sim::{CoreId, CoreSet};

/// Maximum value of a 2-bit train-up counter.
const TRAIN_UP_MAX: u8 = 3;
/// The MSB threshold: a core is predicted when its counter ≥ 2.
const PREDICT_THRESHOLD: u8 = 2;
/// Roll-over period of the 5-bit train-down counter.
const ROLLOVER_PERIOD: u8 = 32;

/// One predictor table entry: a 2-bit saturating counter per core plus a
/// 5-bit roll-over counter that implements gradual train-down (§5.4).
///
/// Every training event increments the target's counter and ticks the
/// roll-over counter; each roll-over decrements *all* counters by one, so
/// destinations that stop appearing eventually drop out of the predicted
/// group.
///
/// # Examples
///
/// ```
/// use spcp_baselines::GroupEntry;
/// use spcp_sim::CoreId;
///
/// let mut e = GroupEntry::new(16);
/// e.train_up(CoreId::new(2));
/// e.train_up(CoreId::new(2));
/// assert!(e.predicted_set().contains(CoreId::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupEntry {
    counters: Vec<u8>,
    rollover: u8,
}

impl GroupEntry {
    /// Creates an all-zero entry for `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        GroupEntry {
            counters: vec![0; num_cores],
            rollover: 0,
        }
    }

    /// Trains the entry towards `target`: saturating increment of its 2-bit
    /// counter, plus one train-down tick.
    pub fn train_up(&mut self, target: CoreId) {
        let c = &mut self.counters[target.index()];
        if *c < TRAIN_UP_MAX {
            *c += 1;
        }
        self.tick();
    }

    /// One train-down tick: advances the 5-bit roll-over counter and, on
    /// wrap-around, decrements every core counter.
    fn tick(&mut self) {
        self.rollover = (self.rollover + 1) % ROLLOVER_PERIOD;
        if self.rollover == 0 {
            for c in &mut self.counters {
                *c = c.saturating_sub(1);
            }
        }
    }

    /// The predicted group: cores whose counter has its MSB set.
    pub fn predicted_set(&self) -> CoreSet {
        self.counters
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= PREDICT_THRESHOLD)
            .map(|(i, _)| CoreId::new(i))
            .collect()
    }

    /// Raw counter value for `core` (diagnostics).
    pub fn counter(&self, core: CoreId) -> u8 {
        self.counters[core.index()]
    }

    /// The single hottest predicted core (the "owner" policy): the core
    /// with the highest counter among those above the prediction
    /// threshold. Ties break toward the lower index for determinism.
    pub fn predicted_owner(&self) -> Option<CoreId> {
        self.counters
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= PREDICT_THRESHOLD)
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| CoreId::new(i))
    }

    /// Storage of one entry in bits: 2 bits per core plus the 5-bit
    /// roll-over counter (tags are accounted by the owning table).
    pub fn storage_bits(num_cores: usize) -> u64 {
        2 * num_cores as u64 + 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn fresh_entry_predicts_nothing() {
        let e = GroupEntry::new(16);
        assert!(e.predicted_set().is_empty());
    }

    #[test]
    fn two_trainings_cross_threshold() {
        let mut e = GroupEntry::new(16);
        e.train_up(core(4));
        assert!(e.predicted_set().is_empty());
        e.train_up(core(4));
        assert_eq!(e.predicted_set(), CoreSet::single(core(4)));
    }

    #[test]
    fn counters_saturate_at_three() {
        let mut e = GroupEntry::new(16);
        for _ in 0..10 {
            e.train_up(core(0));
        }
        assert_eq!(e.counter(core(0)), 3);
    }

    #[test]
    fn group_accumulates_multiple_cores() {
        let mut e = GroupEntry::new(16);
        for c in [1, 5, 9] {
            e.train_up(core(c));
            e.train_up(core(c));
        }
        let set = e.predicted_set();
        assert_eq!(set.len(), 3);
        for c in [1, 5, 9] {
            assert!(set.contains(core(c)));
        }
    }

    #[test]
    fn rollover_trains_down_inactive_cores() {
        let mut e = GroupEntry::new(16);
        // Saturate core 0, then train core 1 exclusively through several
        // roll-over periods: core 0 must eventually leave the group.
        e.train_up(core(0));
        e.train_up(core(0));
        e.train_up(core(0));
        for _ in 0..ROLLOVER_PERIOD as usize * 4 {
            e.train_up(core(1));
        }
        assert!(
            !e.predicted_set().contains(core(0)),
            "inactive core must decay"
        );
        assert!(
            e.predicted_set().contains(core(1)),
            "active core must persist"
        );
    }

    #[test]
    fn active_core_survives_training_down() {
        let mut e = GroupEntry::new(16);
        for _ in 0..200 {
            e.train_up(core(7));
        }
        assert_eq!(e.predicted_set(), CoreSet::single(core(7)));
    }

    #[test]
    fn predicted_owner_is_hottest_member() {
        let mut e = GroupEntry::new(16);
        assert_eq!(e.predicted_owner(), None);
        e.train_up(core(2));
        e.train_up(core(2));
        e.train_up(core(9));
        e.train_up(core(9));
        e.train_up(core(9));
        assert_eq!(e.predicted_owner(), Some(core(9)));
    }

    #[test]
    fn predicted_owner_tie_breaks_low_index() {
        let mut e = GroupEntry::new(16);
        for c in [4, 11] {
            e.train_up(core(c));
            e.train_up(core(c));
        }
        assert_eq!(e.predicted_owner(), Some(core(4)));
    }

    #[test]
    fn storage_is_37_bits_for_16_cores() {
        assert_eq!(GroupEntry::storage_bits(16), 37);
    }
}
