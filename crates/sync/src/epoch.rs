//! Sync-epoch identification and per-core tracking.

use crate::point::{StaticSyncId, SyncKind, SyncPoint};
use std::collections::HashMap;
use std::fmt;

/// Statically identifies a sync-epoch: the kind and static ID of the
/// sync-point that begins it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EpochId {
    /// Kind of the beginning sync-point.
    pub kind: SyncKind,
    /// Static ID of the beginning sync-point.
    pub static_id: StaticSyncId,
}

impl EpochId {
    /// Whether this epoch is a critical section (begins with a lock).
    pub fn is_critical_section(&self) -> bool {
        self.kind.begins_critical_section()
    }
}

impl fmt::Display for EpochId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind, self.static_id)
    }
}

/// One dynamic instance of a static sync-epoch: `(EpochId, instance)` is
/// the paper's *dynamic ID*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EpochInstance {
    /// The static epoch.
    pub id: EpochId,
    /// Zero-based occurrence number of this static epoch on this core.
    pub instance: u64,
}

impl fmt::Display for EpochInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.id, self.instance)
    }
}

/// The result of observing a sync-point: the epoch that just ended (if any
/// code ran before this point) and the epoch that just began.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochTransition {
    /// The instance that the sync-point terminated.
    pub ended: Option<EpochInstance>,
    /// The instance that the sync-point began.
    pub started: EpochInstance,
}

/// Aggregate sync-epoch statistics for one core (Table 1 of the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Distinct static epochs observed.
    pub static_epochs: usize,
    /// Distinct static critical sections observed.
    pub static_critical_sections: usize,
    /// Total dynamic epoch instances begun.
    pub dynamic_epochs: u64,
    /// Total dynamic critical-section instances begun.
    pub dynamic_critical_sections: u64,
}

/// Per-core run-time sync-epoch bookkeeping.
///
/// This models the hardware/library support of §4.1: synchronization
/// primitives are annotated so the coherence controller learns the static ID
/// of each executed sync-point; the tracker turns that stream into epoch
/// begin/end transitions with dynamic instance numbers.
///
/// # Examples
///
/// ```
/// use spcp_sync::{EpochTracker, LockId, SyncPoint};
///
/// let mut t = EpochTracker::new();
/// t.observe(SyncPoint::lock(LockId::new(1)));
/// assert!(t.current().unwrap().id.is_critical_section());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EpochTracker {
    current: Option<EpochInstance>,
    instance_counts: HashMap<EpochId, u64>,
    stats: EpochStats,
}

impl EpochTracker {
    /// Creates a tracker with no epoch in flight.
    pub fn new() -> Self {
        EpochTracker::default()
    }

    /// The currently executing epoch instance, if a sync-point has been
    /// observed yet.
    pub fn current(&self) -> Option<EpochInstance> {
        self.current
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &EpochStats {
        &self.stats
    }

    /// Number of dynamic instances of `id` begun so far.
    pub fn instances_of(&self, id: EpochId) -> u64 {
        self.instance_counts.get(&id).copied().unwrap_or(0)
    }

    /// Observes a sync-point: ends the current epoch and begins the next.
    ///
    /// Every sync-point begins a new epoch, including `Unlock` (the interval
    /// after a critical section is itself an epoch, per Figure 3).
    pub fn observe(&mut self, point: SyncPoint) -> EpochTransition {
        let id = EpochId {
            kind: point.kind,
            static_id: point.static_id,
        };
        let count = self.instance_counts.entry(id).or_insert(0);
        if *count == 0 {
            self.stats.static_epochs += 1;
            if id.is_critical_section() {
                self.stats.static_critical_sections += 1;
            }
        }
        let started = EpochInstance {
            id,
            instance: *count,
        };
        *count += 1;
        self.stats.dynamic_epochs += 1;
        if id.is_critical_section() {
            self.stats.dynamic_critical_sections += 1;
        }
        let ended = self.current.replace(started);
        EpochTransition { ended, started }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::LockId;

    fn barrier(id: u32) -> SyncPoint {
        SyncPoint::barrier(StaticSyncId::new(id))
    }

    #[test]
    fn first_point_ends_nothing() {
        let mut t = EpochTracker::new();
        let tr = t.observe(barrier(1));
        assert!(tr.ended.is_none());
        assert_eq!(tr.started.instance, 0);
        assert_eq!(t.current(), Some(tr.started));
    }

    #[test]
    fn repeated_static_epoch_increments_instance() {
        let mut t = EpochTracker::new();
        for expect in 0..5 {
            let tr = t.observe(barrier(7));
            assert_eq!(tr.started.instance, expect);
        }
        let id = EpochId {
            kind: SyncKind::Barrier,
            static_id: StaticSyncId::new(7),
        };
        assert_eq!(t.instances_of(id), 5);
    }

    #[test]
    fn transition_chains_epochs() {
        let mut t = EpochTracker::new();
        let a = t.observe(barrier(1)).started;
        let tr = t.observe(barrier(2));
        assert_eq!(tr.ended, Some(a));
        assert_ne!(tr.started.id, a.id);
    }

    #[test]
    fn lock_epochs_are_critical_sections() {
        let mut t = EpochTracker::new();
        let tr = t.observe(SyncPoint::lock(LockId::new(3)));
        assert!(tr.started.id.is_critical_section());
        let tr = t.observe(SyncPoint::unlock(LockId::new(3)));
        // The unlock *ends* the critical section and begins a plain epoch.
        assert!(tr.ended.unwrap().id.is_critical_section());
        assert!(!tr.started.id.is_critical_section());
    }

    #[test]
    fn lock_and_unlock_are_distinct_epochs() {
        let mut t = EpochTracker::new();
        let l = t.observe(SyncPoint::lock(LockId::new(3))).started;
        let u = t.observe(SyncPoint::unlock(LockId::new(3))).started;
        assert_ne!(l.id, u.id); // same static id, different kind
        assert_eq!(l.id.static_id, u.id.static_id);
    }

    #[test]
    fn stats_count_statics_once() {
        let mut t = EpochTracker::new();
        t.observe(barrier(1));
        t.observe(barrier(2));
        t.observe(barrier(1));
        t.observe(SyncPoint::lock(LockId::new(5)));
        t.observe(SyncPoint::lock(LockId::new(5)));
        let s = t.stats();
        assert_eq!(s.static_epochs, 3); // barrier1, barrier2, lock5
        assert_eq!(s.static_critical_sections, 1);
        assert_eq!(s.dynamic_epochs, 5);
        assert_eq!(s.dynamic_critical_sections, 2);
    }

    #[test]
    fn distinct_barriers_with_same_kind_tracked_separately() {
        let mut t = EpochTracker::new();
        t.observe(barrier(1));
        t.observe(barrier(2));
        let id1 = EpochId {
            kind: SyncKind::Barrier,
            static_id: StaticSyncId::new(1),
        };
        let id2 = EpochId {
            kind: SyncKind::Barrier,
            static_id: StaticSyncId::new(2),
        };
        assert_eq!(t.instances_of(id1), 1);
        assert_eq!(t.instances_of(id2), 1);
    }

    #[test]
    fn display_of_instance() {
        let mut t = EpochTracker::new();
        let tr = t.observe(barrier(9));
        assert_eq!(tr.started.to_string(), "(barrier@sp#9,0)");
    }

    #[test]
    fn interleaved_epochs_keep_independent_instance_counters() {
        let mut t = EpochTracker::new();
        // A, B, A, B, A: instances must count per static epoch.
        assert_eq!(t.observe(barrier(1)).started.instance, 0);
        assert_eq!(t.observe(barrier(2)).started.instance, 0);
        assert_eq!(t.observe(barrier(1)).started.instance, 1);
        assert_eq!(t.observe(barrier(2)).started.instance, 1);
        assert_eq!(t.observe(barrier(1)).started.instance, 2);
    }

    #[test]
    fn lock_and_barrier_with_same_raw_id_are_distinct_epochs() {
        let mut t = EpochTracker::new();
        t.observe(barrier(3));
        t.observe(SyncPoint::lock(LockId::new(3)));
        let barrier_id = EpochId {
            kind: SyncKind::Barrier,
            static_id: StaticSyncId::new(3),
        };
        let lock_id = EpochId {
            kind: SyncKind::Lock,
            static_id: StaticSyncId::new(3),
        };
        assert_eq!(t.instances_of(barrier_id), 1);
        assert_eq!(t.instances_of(lock_id), 1);
    }

    #[test]
    fn full_critical_section_cycle_counts_each_boundary() {
        let mut t = EpochTracker::new();
        t.observe(barrier(1));
        for _ in 0..3 {
            t.observe(SyncPoint::lock(LockId::new(9)));
            t.observe(SyncPoint::unlock(LockId::new(9)));
        }
        t.observe(barrier(2));
        let s = t.stats();
        assert_eq!(s.dynamic_epochs, 2 + 6);
        assert_eq!(s.dynamic_critical_sections, 3);
        // Statics: barrier1, barrier2, lock9, unlock9.
        assert_eq!(s.static_epochs, 4);
        assert_eq!(s.static_critical_sections, 1);
    }

    #[test]
    fn other_sync_kinds_begin_epochs_too() {
        let mut t = EpochTracker::new();
        for kind in [SyncKind::Join, SyncKind::Wakeup, SyncKind::Broadcast] {
            let tr = t.observe(SyncPoint::other(kind, StaticSyncId::new(1)));
            assert_eq!(tr.started.id.kind, kind);
            assert!(!tr.started.id.is_critical_section());
        }
        assert_eq!(t.stats().dynamic_epochs, 3);
        assert_eq!(t.stats().static_epochs, 3, "same static id, distinct kinds");
    }
}
