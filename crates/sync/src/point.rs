//! Sync-point vocabulary types.

use std::fmt;

/// The kind of a synchronization routine, following the paper's taxonomy
/// (§3.1): `barrier, join, wakeup, broadcast, lock, unlock`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// All threads rendezvous.
    Barrier,
    /// Thread join.
    Join,
    /// Condition-variable wakeup of one waiter.
    Wakeup,
    /// Condition-variable broadcast to all waiters.
    Broadcast,
    /// Mutex acquire — begins a critical section.
    Lock,
    /// Mutex release — ends a critical section.
    Unlock,
}

impl SyncKind {
    /// Whether an epoch beginning at this sync-point is a critical section.
    pub fn begins_critical_section(self) -> bool {
        self == SyncKind::Lock
    }
}

impl fmt::Display for SyncKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SyncKind::Barrier => "barrier",
            SyncKind::Join => "join",
            SyncKind::Wakeup => "wakeup",
            SyncKind::Broadcast => "broadcast",
            SyncKind::Lock => "lock",
            SyncKind::Unlock => "unlock",
        };
        f.write_str(s)
    }
}

/// Statically identifies a sync-point in the program text: the program
/// counter of the calling location, or the lock variable's address for lock
/// points (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StaticSyncId(u32);

impl StaticSyncId {
    /// Creates a static sync-point ID.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        StaticSyncId(raw)
    }

    /// The raw identifier.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for StaticSyncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sp#{}", self.0)
    }
}

/// Identifies one lock variable. Critical sections protected by the same
/// lock share one (globally visible) SP-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LockId(u32);

impl LockId {
    /// Creates a lock ID.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        LockId(raw)
    }

    /// The raw identifier.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock#{}", self.0)
    }
}

/// A sync-point as exposed to the prediction hardware: kind, static ID, and
/// the lock variable for lock/unlock points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncPoint {
    /// Routine kind.
    pub kind: SyncKind,
    /// Static identifier (call site / lock address).
    pub static_id: StaticSyncId,
    /// The lock variable, present exactly for `Lock`/`Unlock` points.
    pub lock: Option<LockId>,
}

impl SyncPoint {
    /// A barrier sync-point at the given call site.
    pub fn barrier(static_id: StaticSyncId) -> Self {
        SyncPoint {
            kind: SyncKind::Barrier,
            static_id,
            lock: None,
        }
    }

    /// A lock-acquire sync-point. The static ID of a lock point is derived
    /// from the lock variable itself, as in the paper.
    pub fn lock(lock: LockId) -> Self {
        SyncPoint {
            kind: SyncKind::Lock,
            static_id: StaticSyncId::new(lock.raw()),
            lock: Some(lock),
        }
    }

    /// A lock-release sync-point.
    pub fn unlock(lock: LockId) -> Self {
        SyncPoint {
            kind: SyncKind::Unlock,
            static_id: StaticSyncId::new(lock.raw()),
            lock: Some(lock),
        }
    }

    /// A generic sync-point of any kind at a call site.
    pub fn other(kind: SyncKind, static_id: StaticSyncId) -> Self {
        SyncPoint {
            kind,
            static_id,
            lock: None,
        }
    }
}

impl fmt::Display for SyncPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lock {
            Some(l) => write!(f, "{}({})", self.kind, l),
            None => write!(f, "{}({})", self.kind, self.static_id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_lock_begins_critical_section() {
        assert!(SyncKind::Lock.begins_critical_section());
        for k in [
            SyncKind::Barrier,
            SyncKind::Join,
            SyncKind::Wakeup,
            SyncKind::Broadcast,
            SyncKind::Unlock,
        ] {
            assert!(!k.begins_critical_section());
        }
    }

    #[test]
    fn lock_points_carry_lock_id() {
        let p = SyncPoint::lock(LockId::new(9));
        assert_eq!(p.kind, SyncKind::Lock);
        assert_eq!(p.lock, Some(LockId::new(9)));
        assert_eq!(p.static_id.raw(), 9);
    }

    #[test]
    fn unlock_matches_lock_static_id() {
        let l = SyncPoint::lock(LockId::new(4));
        let u = SyncPoint::unlock(LockId::new(4));
        assert_eq!(l.static_id, u.static_id);
        assert_ne!(l, u);
    }

    #[test]
    fn barrier_has_no_lock() {
        let b = SyncPoint::barrier(StaticSyncId::new(2));
        assert_eq!(b.lock, None);
        assert_eq!(b.kind, SyncKind::Barrier);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            SyncPoint::barrier(StaticSyncId::new(1)).to_string(),
            "barrier(sp#1)"
        );
        assert_eq!(SyncPoint::lock(LockId::new(2)).to_string(), "lock(lock#2)");
        assert_eq!(SyncKind::Broadcast.to_string(), "broadcast");
    }
}
