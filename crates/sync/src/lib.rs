//! Synchronization points and sync-epochs (§3.1 of the paper).
//!
//! A **sync-point** is an execution point where a synchronization routine is
//! invoked (barrier, lock, unlock, ...). Each has a *static ID* (its call
//! site, or the lock variable for lock points) and a *dynamic ID* (the
//! occurrence number of that static ID at run time). A **sync-epoch** is the
//! execution interval between two consecutive sync-points of one thread; it
//! is named after the sync-point that begins it. A critical section is
//! simply a sync-epoch that begins with a lock acquire.
//!
//! This crate provides the vocabulary types plus [`EpochTracker`], the
//! per-core run-time bookkeeping that SP-prediction's hardware exposes:
//! detecting epoch boundaries, assigning dynamic instance numbers, and
//! accumulating the Table 1 statistics.
//!
//! # Examples
//!
//! ```
//! use spcp_sync::{EpochTracker, StaticSyncId, SyncKind, SyncPoint};
//!
//! let mut t = EpochTracker::new();
//! let barrier_a = SyncPoint::barrier(StaticSyncId::new(1));
//! let tr = t.observe(barrier_a);
//! assert!(tr.ended.is_none()); // nothing ran before the first sync-point
//! assert_eq!(tr.started.instance, 0);
//! let tr = t.observe(barrier_a);
//! assert_eq!(tr.ended.unwrap().id, tr.started.id);
//! assert_eq!(tr.started.instance, 1);
//! ```

#![warn(missing_docs)]

pub mod epoch;
pub mod point;

pub use epoch::{EpochId, EpochInstance, EpochStats, EpochTracker, EpochTransition};
pub use point::{LockId, StaticSyncId, SyncKind, SyncPoint};
