//! Discrete-event simulation kernel for the SPCP chip-multiprocessor model.
//!
//! This crate provides the time base ([`Cycle`]), a deterministic event queue
//! ([`EventQueue`]), a reproducible random-number source ([`DetRng`]) and a
//! small statistics toolkit ([`stats`]) shared by every other crate in the
//! workspace.
//!
//! The kernel is intentionally single-threaded: the whole point of the
//! reproduction is *determinism* — two runs with the same seed produce
//! bit-identical results, which is what makes the paper's figures
//! regenerable.
//!
//! # Examples
//!
//! ```
//! use spcp_sim::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.push(Cycle::new(10), "b");
//! q.push(Cycle::new(5), "a");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t, e), (Cycle::new(5), "a"));
//! ```

#![warn(missing_docs)]

pub mod cycle;
pub mod event;
pub mod flatmap;
pub mod hash;
pub mod ids;
pub mod rng;
pub mod stats;

pub use cycle::Cycle;
pub use event::EventQueue;
pub use flatmap::FlatMap;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{CoreId, CoreSet};
pub use rng::DetRng;
pub use stats::{Counter, Histogram, MeanAccumulator};
