//! Lightweight statistics accumulators used by every simulator component.

use std::fmt;

/// A saturating event counter.
///
/// # Examples
///
/// ```
/// use spcp_sim::Counter;
///
/// let mut misses = Counter::new();
/// misses.add(3);
/// misses.incr();
/// assert_eq!(misses.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// Merges another counter into this one (saturating).
    #[inline]
    pub fn merge(&mut self, other: Counter) {
        self.add(other.get());
    }

    /// This count as a fraction of `total`, or 0.0 when `total` is zero.
    pub fn fraction_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An online mean/min/max accumulator over `u64` samples.
///
/// # Examples
///
/// ```
/// use spcp_sim::MeanAccumulator;
///
/// let mut lat = MeanAccumulator::new();
/// lat.record(10);
/// lat.record(20);
/// assert_eq!(lat.mean(), 15.0);
/// assert_eq!(lat.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeanAccumulator {
    sum: u128,
    count: u64,
    min: u64,
    max: u64,
}

impl Default for MeanAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl MeanAccumulator {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        MeanAccumulator {
            sum: 0,
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        self.sum += sample as u128;
        self.count += 1;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Rebuilds an accumulator from its raw moments, the inverse of
    /// reading `sum()`/`count()`/`min()`/`max()` — used by the sweep
    /// harness to round-trip statistics through spool files bit-exactly.
    ///
    /// `min`/`max` are the *raw* stored extremes: pass `u64::MAX`/`0`
    /// (their empty-state sentinels) when `count` is zero.
    pub const fn from_parts(sum: u128, count: u64, min: u64, max: u64) -> Self {
        MeanAccumulator {
            sum,
            count,
            min,
            max,
        }
    }

    /// The raw stored minimum (`u64::MAX` when empty); pairs with
    /// [`Self::from_parts`] for exact serialization.
    pub fn raw_min(&self) -> u64 {
        self.min
    }

    /// The raw stored maximum (`0` when empty); pairs with
    /// [`Self::from_parts`] for exact serialization.
    pub fn raw_max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when no samples were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MeanAccumulator) {
        self.sum += other.sum;
        self.count += other.count;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` counts samples in `[bounds[i-1], bounds[i])`; the final
/// implicit bucket is unbounded. Used for miss-latency and hot-set-size
/// distributions.
///
/// # Examples
///
/// ```
/// use spcp_sim::Histogram;
///
/// let mut h = Histogram::with_bounds(&[10, 100]);
/// h.record(5);
/// h.record(50);
/// h.record(5000);
/// assert_eq!(h.bucket_counts(), &[1, 1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given strictly-increasing upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| sample < b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Rebuilds a histogram from its bounds and per-bucket counts, the
    /// inverse of reading `bounds()`/`bucket_counts()` — used by the sweep
    /// harness to round-trip statistics through spool files bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly increasing or `counts` does not
    /// have exactly one more entry than `bounds` (the overflow bucket).
    pub fn from_parts(bounds: &[u64], counts: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert_eq!(
            counts.len(),
            bounds.len() + 1,
            "histogram needs one count per bucket plus overflow"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: counts.to_vec(),
            total: counts.iter().sum(),
        }
    }

    /// Per-bucket counts (the last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket upper bounds as configured.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Merges another histogram into this one.
    ///
    /// Merging is exact (integer counts) and commutative/associative, so
    /// aggregates are independent of merge order — the property the
    /// parallel sweep harness relies on.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
    }

    /// Fraction of samples in bucket `idx`, or 0.0 when empty.
    pub fn fraction(&self, idx: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[idx] as f64 / self.total as f64
        }
    }
}

/// Formats `x` as a percentage with one decimal, e.g. `42.3%`.
pub fn percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.fraction_of(40), 0.25);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_fraction_of_zero_total() {
        let mut c = Counter::new();
        c.add(5);
        assert_eq!(c.fraction_of(0), 0.0);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn default_accumulator_matches_new() {
        // A regression guard: a derived Default would zero `min` and make
        // every later `min()` report 0.
        let mut d = MeanAccumulator::default();
        d.record(162);
        assert_eq!(d.min(), Some(162));
        assert_eq!(d.max(), Some(162));
    }

    #[test]
    fn mean_accumulator_tracks_all_moments() {
        let mut m = MeanAccumulator::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.min(), None);
        for s in [4, 8, 12] {
            m.record(s);
        }
        assert_eq!(m.mean(), 8.0);
        assert_eq!(m.min(), Some(4));
        assert_eq!(m.max(), Some(12));
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum(), 24);
    }

    #[test]
    fn mean_accumulator_merge() {
        let mut a = MeanAccumulator::new();
        a.record(1);
        let mut b = MeanAccumulator::new();
        b.record(3);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(5));
    }

    #[test]
    fn merge_with_empty_keeps_minmax() {
        let mut a = MeanAccumulator::new();
        a.record(7);
        a.merge(&MeanAccumulator::new());
        assert_eq!(a.min(), Some(7));
        assert_eq!(a.max(), Some(7));
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::with_bounds(&[2, 4, 8]);
        for s in [0, 1, 2, 3, 4, 7, 8, 100] {
            h.record(s);
        }
        assert_eq!(h.bucket_counts(), &[2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
        assert_eq!(h.fraction(0), 0.25);
        assert_eq!(h.bounds(), &[2, 4, 8]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_bounds() {
        Histogram::with_bounds(&[5, 5]);
    }

    #[test]
    fn counter_merge_adds() {
        let mut a = Counter::new();
        a.add(3);
        let mut b = Counter::new();
        b.add(4);
        a.merge(b);
        assert_eq!(a.get(), 7);
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let mut a = Histogram::with_bounds(&[2, 4]);
        let mut b = Histogram::with_bounds(&[2, 4]);
        for s in [0, 1, 3] {
            a.record(s);
        }
        for s in [5, 3, 100] {
            b.record(s);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), 6);
        assert_eq!(ab.bucket_counts(), &[2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::with_bounds(&[2]);
        a.merge(&Histogram::with_bounds(&[3]));
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.1234), "12.3%");
    }

    #[test]
    fn mean_accumulator_round_trips_through_parts() {
        let mut acc = MeanAccumulator::new();
        for s in [3, 99, 41] {
            acc.record(s);
        }
        let rebuilt =
            MeanAccumulator::from_parts(acc.sum(), acc.count(), acc.raw_min(), acc.raw_max());
        assert_eq!(rebuilt, acc);

        let empty = MeanAccumulator::new();
        let rebuilt = MeanAccumulator::from_parts(
            empty.sum(),
            empty.count(),
            empty.raw_min(),
            empty.raw_max(),
        );
        assert_eq!(rebuilt, empty);
        assert_eq!(rebuilt.min(), None);
    }

    #[test]
    fn histogram_round_trips_through_parts() {
        let mut h = Histogram::with_bounds(&[2, 4]);
        for s in [0, 3, 3, 100] {
            h.record(s);
        }
        let rebuilt = Histogram::from_parts(h.bounds(), h.bucket_counts());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.total(), 4);
    }

    #[test]
    #[should_panic(expected = "one count per bucket")]
    fn histogram_from_parts_rejects_bad_count_len() {
        Histogram::from_parts(&[2, 4], &[1, 2]);
    }
}
