//! An open-addressing hash table for `u64`-keyed hot-path state.
//!
//! [`FlatMap`] is the allocation-free workhorse behind the coherence
//! directory: one flat slot array, linear probing, and *backward-shift
//! deletion* instead of tombstones. The no-tombstone design matters for a
//! simulator whose maps churn constantly (every cache eviction removes a
//! directory entry): the table never accumulates deleted markers, so it
//! never rehashes to clean them out, and once it has grown to the working
//! set's high-water mark it performs **zero further heap allocations** —
//! the property pinned by the `alloc_free` integration test.
//!
//! Slot selection uses [`mix_u64`]'s high bits, so sequential keys (block
//! indices) scatter uniformly instead of clustering into probe chains.
//!
//! # Examples
//!
//! ```
//! use spcp_sim::FlatMap;
//!
//! let mut m: FlatMap<&str> = FlatMap::new();
//! m.insert(7, "seven");
//! assert_eq!(m.get(7), Some(&"seven"));
//! assert_eq!(m.remove(7), Some("seven"));
//! assert!(m.is_empty());
//! ```

use crate::hash::mix_u64;

/// Smallest capacity the table allocates (power of two).
const MIN_CAPACITY: usize = 16;

/// An open-addressing map from `u64` keys to `V`, tuned for the
/// simulator's hot paths.
///
/// Invariants:
///
/// * capacity is always a power of two (or zero before first insert);
/// * occupancy stays at or below 7/8 of capacity, so probe chains stay
///   short;
/// * deletion backward-shifts the following probe chain, leaving no
///   tombstones and therefore never triggering a cleanup rehash.
#[derive(Debug, Clone, Default)]
pub struct FlatMap<V> {
    /// `None` = empty slot; `Some((key, value))` = occupied.
    slots: Vec<Option<(u64, V)>>,
    len: usize,
}

impl<V> FlatMap<V> {
    /// Creates an empty map (no allocation until the first insert).
    pub fn new() -> Self {
        FlatMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates a map pre-sized to hold `n` entries without growing.
    pub fn with_capacity(n: usize) -> Self {
        let mut m = FlatMap::new();
        if n > 0 {
            m.allocate(Self::capacity_for(n));
        }
        m
    }

    /// Smallest valid capacity that holds `n` entries under the 7/8 load
    /// cap.
    fn capacity_for(n: usize) -> usize {
        let needed = n + n.div_ceil(7); // inverse of cap * 7/8 >= n
        needed.next_power_of_two().max(MIN_CAPACITY)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count (0 before the first insert).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    /// Preferred slot of `key` for the current capacity.
    #[inline]
    fn home(&self, key: u64) -> usize {
        // Power-of-two capacity: take log2(cap) *high* bits of the mix.
        // slots.len() is never 0 or 1 when this is called.
        let shift = 64 - self.slots.len().trailing_zeros();
        (mix_u64(key) >> shift) as usize
    }

    /// Finds the slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Returns a reference to the value for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| {
            &self.slots[i]
                .as_ref()
                .expect("find returns occupied slots")
                .1
        })
    }

    /// Returns a mutable reference to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key).map(|i| {
            &mut self.slots[i]
                .as_mut()
                .expect("find returns occupied slots")
                .1
        })
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.reserve_one();
        // The load cap keeps probe chains short *and* guarantees the probe
        // loops below always hit an empty slot and terminate.
        debug_assert!(
            (self.len + 1) * 8 <= self.slots.len() * 7,
            "occupancy {}+1 exceeds the 7/8 bound of capacity {}",
            self.len,
            self.slots.len()
        );
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            match &mut self.slots[i] {
                slot @ None => {
                    *slot = Some((key, value));
                    self.len += 1;
                    return None;
                }
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Returns a mutable reference to the value for `key`, inserting
    /// `default()` first if absent — the equivalent of
    /// `HashMap::entry(..).or_insert_with(..)`.
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        self.reserve_one();
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        loop {
            // Split the match so the borrow of `self.slots[i]` ends
            // before we hand out the long-lived reference.
            match &self.slots[i] {
                None => {
                    self.slots[i] = Some((key, default()));
                    self.len += 1;
                    return &mut self.slots[i].as_mut().expect("slot just filled").1;
                }
                Some((k, _)) if *k == key => {
                    return &mut self.slots[i].as_mut().expect("match guard saw Some").1;
                }
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Removes `key`, returning its value if present.
    ///
    /// Uses backward-shift deletion: every displaced entry in the probe
    /// chain after the hole is moved back toward its preferred slot, so
    /// the table never holds tombstones.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find(key)?;
        let (_, value) = self.slots[hole]
            .take()
            .expect("find returns occupied slots");
        self.len -= 1;

        let mask = self.slots.len() - 1;
        let mut j = (hole + 1) & mask;
        while let Some((k, _)) = &self.slots[j] {
            // The entry at `j` may fill the hole only if its preferred
            // slot is *not* inside the cyclic interval (hole, j] — i.e.
            // moving it to `hole` keeps it reachable from its home.
            let home = self.home(*k);
            if (j.wrapping_sub(home)) & mask >= (j.wrapping_sub(hole)) & mask {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
            j = (j + 1) & mask;
        }
        // Backward-shift postcondition: the chain ends on an empty final
        // hole and the removed key is unreachable — a botched shift would
        // instead strand an entry behind a `None` and make it invisible.
        debug_assert!(self.slots[hole].is_none());
        debug_assert!(
            self.find(key).is_none(),
            "removed key {key} still reachable after backward shift"
        );
        Some(value)
    }

    /// Iterates over `(key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Allocates a fresh slot array of exactly `cap` (power of two).
    fn allocate(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two() && cap >= MIN_CAPACITY);
        self.slots = (0..cap).map(|_| None).collect();
    }

    /// Grows the table if inserting one more entry would exceed the 7/8
    /// load cap.
    fn reserve_one(&mut self) {
        let cap = self.slots.len();
        if (self.len + 1) * 8 > cap * 7 {
            let new_cap = (cap * 2).max(MIN_CAPACITY);
            let old = std::mem::take(&mut self.slots);
            self.allocate(new_cap);
            self.len = 0;
            for (k, v) in old.into_iter().flatten() {
                self.insert_fresh(k, v);
            }
        }
    }

    /// Insert during rehash: key is known absent and capacity suffices.
    fn insert_fresh(&mut self, key: u64, value: V) {
        let mask = self.slots.len() - 1;
        let mut i = self.home(key);
        while self.slots[i].is_some() {
            i = (i + 1) & mask;
        }
        self.slots[i] = Some((key, value));
        self.len += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetRng;
    use std::collections::HashMap;

    #[test]
    fn empty_map_behaves() {
        let m: FlatMap<u32> = FlatMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.capacity(), 0);
        assert_eq!(m.get(5), None);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = FlatMap::new();
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(2, "b"), None);
        assert_eq!(m.insert(1, "a2"), Some("a"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(1), Some(&"a2"));
        assert_eq!(m.remove(1), Some("a2"));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn get_or_insert_with_matches_entry_semantics() {
        let mut m: FlatMap<Vec<u32>> = FlatMap::new();
        m.get_or_insert_with(9, Vec::new).push(1);
        m.get_or_insert_with(9, Vec::new).push(2);
        assert_eq!(m.get(9), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn key_zero_and_max_work() {
        let mut m = FlatMap::new();
        m.insert(0, 10);
        m.insert(u64::MAX, 20);
        assert_eq!(m.get(0), Some(&10));
        assert_eq!(m.get(u64::MAX), Some(&20));
        assert_eq!(m.remove(0), Some(10));
        assert_eq!(m.get(u64::MAX), Some(&20));
    }

    #[test]
    fn grows_past_load_factor_and_keeps_entries() {
        let mut m = FlatMap::new();
        for k in 0..1000u64 {
            m.insert(k, k * 3);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(k), Some(&(k * 3)), "key {k}");
        }
        // Load factor never exceeds 7/8.
        assert!(m.len() * 8 <= m.capacity() * 7);
    }

    #[test]
    fn with_capacity_avoids_growth() {
        let mut m = FlatMap::with_capacity(100);
        let cap = m.capacity();
        assert!(cap >= 100);
        for k in 0..100u64 {
            m.insert(k, ());
        }
        assert_eq!(m.capacity(), cap, "pre-sized table must not grow");
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m = FlatMap::new();
        for k in 0..50u64 {
            m.insert(k, k);
        }
        let cap = m.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), cap);
        assert_eq!(m.get(7), None);
        m.insert(7, 7);
        assert_eq!(m.get(7), Some(&7));
    }

    #[test]
    fn iter_yields_each_entry_once() {
        let mut m = FlatMap::new();
        for k in [3u64, 1 << 40, 77, 0] {
            m.insert(k, k as u32);
        }
        let mut seen: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 3, 77, 1 << 40]);
    }

    /// Backward-shift deletion must keep every remaining key reachable,
    /// including under adversarial collision chains. Randomized
    /// model-check against `std::HashMap`.
    #[test]
    fn randomized_equivalence_with_std_hashmap() {
        let mut rng = DetRng::seeded(0xF1A7);
        let mut flat: FlatMap<u64> = FlatMap::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        // Small key universe forces heavy insert/remove churn on the
        // same probe chains.
        for step in 0..20_000u64 {
            let key = rng.range(0, 256);
            match rng.index(4) {
                0 | 1 => {
                    assert_eq!(
                        flat.insert(key, step),
                        model.insert(key, step),
                        "insert({key}) at step {step}"
                    );
                }
                2 => {
                    assert_eq!(
                        flat.remove(key),
                        model.remove(&key),
                        "remove({key}) at step {step}"
                    );
                }
                _ => {
                    assert_eq!(flat.get(key), model.get(&key), "get({key}) at step {step}");
                }
            }
            assert_eq!(flat.len(), model.len());
        }
        // Final sweep: identical contents.
        let mut a: Vec<(u64, u64)> = flat.iter().map(|(k, v)| (k, *v)).collect();
        let mut b: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    /// Once the live count's high-water mark is reached, further churn
    /// (insert/remove cycles) must not grow the table — the property the
    /// directory relies on for allocation-free steady state.
    #[test]
    fn churn_at_constant_occupancy_never_grows() {
        let mut m: FlatMap<u32> = FlatMap::new();
        for k in 0..500u64 {
            m.insert(k, 0);
        }
        let cap = m.capacity();
        let mut rng = DetRng::seeded(99);
        for step in 0..50_000u64 {
            // Remove one random present key, insert one random new key:
            // occupancy is constant.
            let victim = loop {
                let k = rng.range(0, 1 << 20);
                if m.contains_key(k) {
                    break k;
                }
            };
            m.remove(victim);
            let fresh = loop {
                let k = rng.range(0, 1 << 20);
                if !m.contains_key(k) {
                    break k;
                }
            };
            m.insert(fresh, step as u32);
            assert_eq!(m.capacity(), cap, "table grew at step {step}");
            assert_eq!(m.len(), 500);
        }
    }
}
