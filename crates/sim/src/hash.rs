//! Cheap, deterministic hashing for simulator-internal tables.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is
//! DoS-resistant but costs tens of cycles per lookup — far too much for
//! tables probed on every simulated memory access. The simulator hashes
//! only *trusted, internal* keys (block indices, sync-point IDs, region
//! tags), so it can use a multiplicative FxHash-style mix instead: one
//! rotate, one xor and one multiply per word.
//!
//! Two things live here:
//!
//! * [`FxHasher`] / [`FxHashMap`] — a drop-in replacement hasher for
//!   `std` maps whose keys are small integers or tuples of them.
//! * [`mix_u64`] / [`fold_u64`] — the raw word mixers, used directly by
//!   the open-addressing [`FlatMap`](crate::flatmap::FlatMap).
//!
//! Everything is seed-free and therefore deterministic across runs and
//! processes, which the parallel sweep harness relies on (bit-identical
//! results at any `--jobs`).
//!
//! # Examples
//!
//! ```
//! use spcp_sim::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(42, "answer");
//! assert_eq!(m.get(&42), Some(&"answer"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant used by Firefox's FxHash (a truncation of
/// pi's fractional part chosen for good bit diffusion).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Golden-ratio constant for Fibonacci hashing (`2^64 / phi`).
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Folds one 64-bit word into a running FxHash state.
///
/// # Examples
///
/// ```
/// use spcp_sim::hash::fold_u64;
///
/// let h = fold_u64(0, 7);
/// assert_ne!(h, fold_u64(0, 8));
/// assert_eq!(h, fold_u64(0, 7)); // deterministic
/// ```
#[inline]
pub const fn fold_u64(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Fibonacci-mixes a single 64-bit key.
///
/// The multiply spreads entropy toward the *high* bits, so power-of-two
/// tables must take their slot index from the top of the result (as
/// [`FlatMap`](crate::flatmap::FlatMap) does) — sequential keys, the
/// common case for block indices, then scatter instead of clustering.
///
/// # Examples
///
/// ```
/// use spcp_sim::hash::mix_u64;
///
/// // Sequential keys produce well-separated high bits.
/// assert_ne!(mix_u64(1) >> 56, mix_u64(2) >> 56);
/// ```
#[inline]
pub const fn mix_u64(key: u64) -> u64 {
    let x = key.wrapping_mul(PHI);
    // One xor-shift to let the high bits influence the low ones too, so
    // the result is usable regardless of which end the table slices off.
    x ^ (x >> 32)
}

/// A fast, deterministic [`Hasher`] for trusted integer-like keys.
///
/// Word-at-a-time FxHash: each written word is folded with
/// [`fold_u64`]. Not DoS-resistant — never expose tables keyed by
/// untrusted external input through it (the simulator has none).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = fold_u64(self.state, word);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so `HashMap`s that use the low bits of the
        // result still see the multiply's high-bit entropy.
        mix_u64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(
                chunk
                    .try_into()
                    .expect("chunks_exact(8) yields 8-byte chunks"),
            ));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.fold(i as u64);
        self.fold((i >> 64) as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`] — drop-in for `std`'s map when
/// the keys are trusted simulator-internal integers.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(12345u64), hash_of(12345u64));
        assert_eq!(hash_of((3u64, 4usize)), hash_of((3u64, 4usize)));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..10_000 {
            seen.insert(hash_of(k));
        }
        assert_eq!(seen.len(), 10_000, "sequential u64 keys must not collide");
    }

    #[test]
    fn mix_scatters_sequential_keys_in_high_bits() {
        // A power-of-two table takes the top bits; sequential block
        // indices must land in different buckets.
        let mut buckets = std::collections::HashSet::new();
        for k in 0u64..256 {
            buckets.insert(mix_u64(k) >> 56);
        }
        assert!(
            buckets.len() > 200,
            "got {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn byte_stream_matches_word_writes_for_framing() {
        // Same logical value written differently may hash differently —
        // that's fine — but each must be self-consistent.
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write(&7u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());

        let mut c = FxHasher::default();
        c.write(&[1, 2, 3]); // non-multiple-of-8 tail
        let mut d = FxHasher::default();
        d.write(&[1, 2, 3]);
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn fx_map_behaves_like_std_map() {
        let mut fx: FxHashMap<u64, u64> = FxHashMap::default();
        let mut std_map = std::collections::HashMap::new();
        for k in 0..1000u64 {
            fx.insert(k * 7, k);
            std_map.insert(k * 7, k);
        }
        for k in 0..1000u64 {
            assert_eq!(fx.get(&(k * 7)), std_map.get(&(k * 7)));
        }
        assert_eq!(fx.len(), std_map.len());
    }
}
