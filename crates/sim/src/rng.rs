//! Deterministic random-number generation for workload synthesis.
//!
//! The generator is a self-contained xoshiro256++ implementation (public
//! domain algorithm by Blackman & Vigna) seeded through SplitMix64, so the
//! workspace carries no external RNG dependency and builds fully offline.
//! Determinism is a hard requirement: the parallel sweep harness
//! (`spcp-harness`) asserts bit-identical statistics regardless of worker
//! count, which only holds because every stochastic choice flows through
//! this seeded stream.

/// A seeded, reproducible random-number source.
///
/// Every stochastic choice in the workload generators (which block to touch,
/// whether an epoch instance is "noisy", which thread wins a lock race) draws
/// from a `DetRng`. The same seed always yields the same run, which is what
/// makes the reproduction's figures regenerable.
///
/// Independent streams are derived with [`DetRng::fork`], so per-core
/// generators do not perturb each other when the op interleaving changes.
///
/// # Examples
///
/// ```
/// use spcp_sim::DetRng;
///
/// let mut a = DetRng::seeded(7);
/// let mut b = DetRng::seeded(7);
/// assert_eq!(a.range(0, 100), b.range(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

/// SplitMix64 step: expands a 64-bit seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = splitmix64(&mut sm);
        }
        // xoshiro256++ must not start from the all-zero state; SplitMix64
        // cannot produce four consecutive zeros, but guard anyway.
        if state == [0; 4] {
            state[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { state }
    }

    /// The next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child stream labelled by `salt`.
    ///
    /// Forking with distinct salts from the same parent yields streams that
    /// are decorrelated regardless of how much the parent is consumed
    /// afterwards.
    pub fn fork(&mut self, salt: u64) -> DetRng {
        let base: u64 = self.next_u64();
        DetRng::seeded(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// Uses Lemire's widening-multiply method with rejection, so the
    /// distribution is exactly uniform for every span.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        let mut m = (self.next_u64() as u128) * (span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                m = (self.next_u64() as u128) * (span as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.range(0, n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seeded(123);
        let mut b = DetRng::seeded(123);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1_000_000), b.range(0, 1_000_000));
        }
    }

    #[test]
    fn different_seed_diverges() {
        let mut a = DetRng::seeded(1);
        let mut b = DetRng::seeded(2);
        let sa: Vec<u64> = (0..16).map(|_| a.range(0, u64::MAX - 1)).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.range(0, u64::MAX - 1)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn forks_are_decorrelated_and_reproducible() {
        let mut parent1 = DetRng::seeded(9);
        let mut parent2 = DetRng::seeded(9);
        let mut c1 = parent1.fork(42);
        let mut c2 = parent2.fork(42);
        for _ in 0..32 {
            assert_eq!(c1.range(0, 1000), c2.range(0, 1000));
        }
    }

    #[test]
    fn forks_with_distinct_salts_diverge() {
        let mut parent = DetRng::seeded(9);
        let mut a = parent.clone().fork(1);
        let mut b = parent.fork(2);
        let sa: Vec<u64> = (0..16).map(|_| a.range(0, 1_000_000)).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.range(0, 1_000_000)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = DetRng::seeded(5);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = DetRng::seeded(31);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.range(0, 10) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        let mut r = DetRng::seeded(17);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u), "unit = {u}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seeded(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = DetRng::seeded(77);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn pick_returns_member() {
        let mut r = DetRng::seeded(3);
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(r.pick(&items)));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seeded(11);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::seeded(0).range(5, 5);
    }
}
