//! The simulation time base.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, measured in processor clock cycles.
///
/// `Cycle` is a transparent [`u64`] newtype: it exists so that cycle counts
/// cannot be accidentally mixed with other integer quantities (byte counts,
/// hop counts, core IDs) flowing through the simulator.
///
/// Arithmetic is saturating-free and will panic on overflow in debug builds,
/// exactly like plain `u64` arithmetic; simulated runs are far below the
/// `u64` range.
///
/// # Examples
///
/// ```
/// use spcp_sim::Cycle;
///
/// let t = Cycle::new(100) + Cycle::new(50);
/// assert_eq!(t.as_u64(), 150);
/// assert!(t > Cycle::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero: the beginning of the simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count from a raw `u64`.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the later of two points in time.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two points in time.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Returns the duration elapsed since `earlier`, or zero when `earlier`
    /// is in the future (saturating).
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(earlier.0))
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    #[inline]
    fn from(c: Cycle) -> Self {
        c.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Cycle::default(), Cycle::ZERO);
        assert_eq!(Cycle::ZERO.as_u64(), 0);
    }

    #[test]
    fn add_and_sub() {
        let a = Cycle::new(10);
        let b = Cycle::new(4);
        assert_eq!(a + b, Cycle::new(14));
        assert_eq!(a - b, Cycle::new(6));
        assert_eq!(a + 5, Cycle::new(15));
    }

    #[test]
    fn add_assign_variants() {
        let mut t = Cycle::new(1);
        t += Cycle::new(2);
        t += 3;
        assert_eq!(t, Cycle::new(6));
        t -= Cycle::new(6);
        assert_eq!(t, Cycle::ZERO);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Cycle::new(3);
        let b = Cycle::new(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn saturating_since_clamps_at_zero() {
        let a = Cycle::new(3);
        let b = Cycle::new(7);
        assert_eq!(b.saturating_since(a), Cycle::new(4));
        assert_eq!(a.saturating_since(b), Cycle::ZERO);
    }

    #[test]
    fn conversions_round_trip() {
        let c = Cycle::from(42u64);
        let raw: u64 = c.into();
        assert_eq!(raw, 42);
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [1u64, 2, 3].iter().map(|&r| Cycle::new(r)).sum();
        assert_eq!(total, Cycle::new(6));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(9).to_string(), "9 cyc");
    }
}
