//! A deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// An entry in the [`EventQueue`] heap.
///
/// Ordered by `(time, seq)` so that events scheduled for the same cycle pop
/// in insertion order, which keeps the simulation deterministic regardless
/// of heap internals.
struct Entry<E> {
    time: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of `(Cycle, E)` pairs with FIFO tie-breaking.
///
/// The queue is the heart of the discrete-event simulator: every message
/// delivery, cache response, and core wake-up is an event. Ties at the same
/// cycle pop in the order they were pushed, so simulation outcomes do not
/// depend on allocator or hash-map iteration order.
///
/// # Examples
///
/// ```
/// use spcp_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(7), 'x');
/// q.push(Cycle::new(7), 'y');
/// q.push(Cycle::new(3), 'z');
/// assert_eq!(q.pop(), Some((Cycle::new(3), 'z')));
/// assert_eq!(q.pop(), Some((Cycle::new(7), 'x')));
/// assert_eq!(q.pop(), Some((Cycle::new(7), 'y')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: Cycle, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(5), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(4), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(4)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(1), 'a');
        q.push(Cycle::new(2), 'b');
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), "late");
        q.push(Cycle::new(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(Cycle::new(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }
}
