//! Machine-model identifier types shared by every layer of the simulator.

use std::fmt;

/// Identifies one processor core (equivalently, one tile) in the CMP.
///
/// The paper's machine is a 16-core tiled CMP; the reproduction supports any
/// core count up to [`CoreSet::MAX_CORES`].
///
/// # Examples
///
/// ```
/// use spcp_sim::ids::CoreId;
///
/// let c = CoreId::new(5);
/// assert_eq!(c.index(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core ID from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= CoreSet::MAX_CORES`.
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(
            index < CoreSet::MAX_CORES,
            "core index {index} exceeds the supported maximum of {}",
            CoreSet::MAX_CORES
        );
        CoreId(index as u16)
    }

    /// The core's index, in `[0, num_cores)`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over the first `n` core IDs.
    pub fn all(n: usize) -> impl Iterator<Item = CoreId> {
        (0..n).map(CoreId::new)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A set of cores represented as a 64-bit vector.
///
/// This is the paper's *communication signature* representation: one bit per
/// core, so a 16-core machine needs 16 bits per signature. All set algebra
/// the prediction policies need (union for lock-holder sets, intersection
/// for stable-pattern detection) is O(1).
///
/// # Examples
///
/// ```
/// use spcp_sim::ids::{CoreId, CoreSet};
///
/// let mut s = CoreSet::empty();
/// s.insert(CoreId::new(3));
/// s.insert(CoreId::new(7));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(CoreId::new(3)));
/// let t = CoreSet::from_iter([CoreId::new(7)]);
/// assert_eq!(s.intersect(t), t);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CoreSet(u64);

impl CoreSet {
    /// The maximum number of cores representable in a set.
    pub const MAX_CORES: usize = 64;

    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        CoreSet(0)
    }

    /// The set containing exactly one core.
    #[inline]
    pub fn single(core: CoreId) -> Self {
        CoreSet(1 << core.index())
    }

    /// The set of all `n` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_CORES`.
    pub fn all(n: usize) -> Self {
        assert!(n <= Self::MAX_CORES);
        if n == Self::MAX_CORES {
            CoreSet(u64::MAX)
        } else {
            CoreSet((1u64 << n) - 1)
        }
    }

    /// Builds a set from a raw bit vector.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        CoreSet(bits)
    }

    /// The raw bit vector.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of cores in the set.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `core` is a member.
    #[inline]
    pub fn contains(self, core: CoreId) -> bool {
        self.0 & (1 << core.index()) != 0
    }

    /// Adds `core` to the set.
    #[inline]
    pub fn insert(&mut self, core: CoreId) {
        self.0 |= 1 << core.index();
    }

    /// Removes `core` from the set.
    #[inline]
    pub fn remove(&mut self, core: CoreId) {
        self.0 &= !(1 << core.index());
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 | other.0)
    }

    /// Set intersection (the paper's *stable* hot-set combination).
    #[inline]
    pub const fn intersect(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub const fn difference(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 & !other.0)
    }

    /// Whether `self` is a superset of `other`.
    ///
    /// A prediction is *sufficient* exactly when the predicted set is a
    /// superset of the true target set.
    #[inline]
    pub const fn is_superset(self, other: CoreSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Iterates over member cores in increasing index order.
    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let idx = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(CoreId::new(idx))
            }
        })
    }
}

impl FromIterator<CoreId> for CoreSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut s = CoreSet::empty();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl Extend<CoreId> for CoreSet {
    fn extend<I: IntoIterator<Item = CoreId>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl fmt::Display for CoreSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", c.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_roundtrip() {
        let c = CoreId::new(15);
        assert_eq!(c.index(), 15);
        assert_eq!(c.to_string(), "core15");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn core_id_out_of_range_panics() {
        CoreId::new(64);
    }

    #[test]
    fn all_enumerates_in_order() {
        let v: Vec<usize> = CoreId::all(4).map(|c| c.index()).collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = CoreSet::empty();
        assert!(s.is_empty());
        s.insert(CoreId::new(2));
        s.insert(CoreId::new(9));
        assert!(s.contains(CoreId::new(2)));
        assert!(!s.contains(CoreId::new(3)));
        assert_eq!(s.len(), 2);
        s.remove(CoreId::new(2));
        assert!(!s.contains(CoreId::new(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = CoreSet::from_bits(0b1010);
        let b = CoreSet::from_bits(0b0110);
        assert_eq!(a.union(b).bits(), 0b1110);
        assert_eq!(a.intersect(b).bits(), 0b0010);
        assert_eq!(a.difference(b).bits(), 0b1000);
    }

    #[test]
    fn superset_semantics() {
        let big = CoreSet::from_bits(0b111);
        let small = CoreSet::from_bits(0b101);
        assert!(big.is_superset(small));
        assert!(!small.is_superset(big));
        assert!(big.is_superset(CoreSet::empty()));
        assert!(CoreSet::empty().is_superset(CoreSet::empty()));
    }

    #[test]
    fn all_n_cores() {
        assert_eq!(CoreSet::all(16).len(), 16);
        assert_eq!(CoreSet::all(64).len(), 64);
        assert_eq!(CoreSet::all(0).len(), 0);
    }

    #[test]
    fn iteration_order_is_ascending() {
        let s = CoreSet::from_bits(0b1001_0010);
        let v: Vec<usize> = s.iter().map(|c| c.index()).collect();
        assert_eq!(v, vec![1, 4, 7]);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: CoreSet = [CoreId::new(0), CoreId::new(5)].into_iter().collect();
        s.extend([CoreId::new(6)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn display_formats_members() {
        let s = CoreSet::from_bits(0b101);
        assert_eq!(s.to_string(), "{0,2}");
        assert_eq!(CoreSet::empty().to_string(), "{}");
    }

    #[test]
    fn single_is_singleton() {
        let s = CoreSet::single(CoreId::new(7));
        assert_eq!(s.len(), 1);
        assert!(s.contains(CoreId::new(7)));
    }
}
