//! Integration tests: the exhaustive model checker against the production
//! protocol tables, the seeded-violation regression, and end-to-end race
//! analysis over traces recorded by the real timing simulator.

use spcp_core::AccessKind;
use spcp_mem::{Addr, DirEntry};
use spcp_sim::CoreId;
use spcp_sync::{LockId, StaticSyncId, SyncPoint};
use spcp_system::protocol::{self, CommitPlan};
use spcp_system::{CmpSystem, CoherenceVariant, MachineConfig, ProtocolKind, RunConfig};
use spcp_verify::{analyze_races, ModelChecker, ModelConfig};
use spcp_workloads::{Op, Workload};

/// The CI smoke configuration: 2 cores × 1 line, MESIF, exhaustively
/// enumerated with zero invariant violations.
#[test]
fn exhaustive_two_core_one_line_is_clean() {
    let stats = ModelChecker::new(ModelConfig::small())
        .check()
        .unwrap_or_else(|cex| panic!("protocol violation found:\n{cex}"));
    // 2 cores × 1 line must reach a non-trivial but fully-enumerable
    // space; a collapse to a handful of states would mean the action set
    // stopped exercising the protocol.
    assert!(stats.states > 5, "only {} states reached", stats.states);
    assert!(stats.transitions > stats.states);
}

/// Both protocol variants stay clean on the larger configs too.
#[test]
fn exhaustive_larger_configs_are_clean() {
    for variant in [CoherenceVariant::Mesif, CoherenceVariant::Mesi] {
        for (cores, lines) in [(3, 1), (2, 2)] {
            let cfg = ModelConfig {
                cores,
                lines,
                variant,
                predictor_race: true,
            };
            if let Err(cex) = ModelChecker::new(cfg).check() {
                panic!("{variant:?} {cores}x{lines}: violation found:\n{cex}");
            }
        }
    }
}

/// Regression: a deliberately broken transition table (write path that
/// forgets to invalidate remote sharers) must be caught with a
/// counterexample, proving the checker can actually see SWMR violations.
#[test]
fn checker_finds_seeded_swmr_violation() {
    fn broken(
        kind: AccessKind,
        requester: CoreId,
        entry: &DirEntry,
        mesif: bool,
        targets: spcp_sim::CoreSet,
    ) -> CommitPlan {
        let mut plan = protocol::commit_plan(kind, requester, entry, mesif, targets);
        if matches!(kind, AccessKind::Write | AccessKind::Upgrade) {
            plan.invalidated = spcp_sim::CoreSet::empty();
        }
        plan
    }
    let cex = ModelChecker::new(ModelConfig::small())
        .with_commit(broken)
        .check()
        .expect_err("broken table must be caught");
    assert!(
        cex.message.contains("SWMR") || cex.message.contains("data-value"),
        "unexpected violation class: {}",
        cex.message
    );
    assert!(!cex.actions.is_empty(), "counterexample must have a trace");
    // The rendered trace must replay to the violating state.
    let text = cex.to_string();
    assert!(text.contains("step 1"), "no rendered steps:\n{text}");
}

fn small_machine() -> MachineConfig {
    let mut m = MachineConfig::paper_16core();
    m.num_cores = 4;
    m.noc = spcp_noc::NocConfig {
        width: 2,
        height: 2,
        ..spcp_noc::NocConfig::default()
    };
    m
}

fn barrier(id: u32) -> Op {
    Op::Sync(SyncPoint::barrier(StaticSyncId::new(id)))
}

fn load(block: u64) -> Op {
    Op::Load {
        addr: Addr::new(block * 64),
        pc: 0x100,
    }
}

fn store(block: u64) -> Op {
    Op::Store {
        addr: Addr::new(block * 64),
        pc: 0x200,
    }
}

fn traced_run(w: &Workload) -> Vec<spcp_trace::TraceEvent> {
    let cfg = RunConfig::new(small_machine(), ProtocolKind::Directory).tracing();
    CmpSystem::run_workload(w, &cfg).trace
}

/// A properly barrier-synchronized producer/consumer program recorded by
/// the real machine analyzes as race-free.
#[test]
fn machine_trace_of_synced_program_is_race_free() {
    let producer = vec![store(5), store(6), store(7), barrier(1), barrier(2)];
    let consumer = |_: usize| vec![barrier(1), load(5), load(6), load(7), barrier(2)];
    let w = Workload::from_threads(
        "synced",
        vec![producer, consumer(1), consumer(2), consumer(3)],
    );
    let trace = traced_run(&w);
    let report = analyze_races(4, &trace);
    assert!(
        report.checked_pairs > 0,
        "no communication observed: {}",
        report.summary()
    );
    assert!(report.is_clean(), "false races: {:?}", report.races);
}

/// Lock-based ordering recorded by the real machine is also recognized.
#[test]
fn machine_trace_of_lock_program_is_race_free() {
    let lock = LockId::new(3);
    let t0 = vec![
        Op::Sync(SyncPoint::lock(lock)),
        store(9),
        Op::Sync(SyncPoint::unlock(lock)),
        barrier(9),
    ];
    let t_reader = vec![
        Op::Sync(SyncPoint::lock(lock)),
        load(9),
        Op::Sync(SyncPoint::unlock(lock)),
        barrier(9),
    ];
    let idle = vec![barrier(9)];
    let w = Workload::from_threads("locked", vec![t0, t_reader, idle.clone(), idle]);
    let report = analyze_races(4, &traced_run(&w));
    assert!(report.is_clean(), "false races: {:?}", report.races);
}

/// Removing the ordering barrier from the producer/consumer program makes
/// the analyzer flag the sharing as unordered.
#[test]
fn machine_trace_of_unsynced_program_is_flagged() {
    let producer = vec![store(5), barrier(2)];
    // The consumer pads with private accesses so its shared load lands
    // after the producer's store in simulated time.
    let consumer = vec![
        load(100),
        load(101),
        load(102),
        load(103),
        load(5),
        barrier(2),
    ];
    let idle = vec![barrier(2)];
    let w = Workload::from_threads("racy", vec![producer, consumer, idle.clone(), idle]);
    let report = analyze_races(4, &traced_run(&w));
    assert!(
        !report.is_clean(),
        "unsynchronized sharing not flagged: {}",
        report.summary()
    );
    let f = &report.races[0];
    assert_eq!(f.block, 5, "flagged the wrong block: {f}");
}

/// The runtime invariant layer accepts a normal workload end to end (test
/// builds carry `debug_assertions`, so the audits are always compiled
/// here).
#[test]
fn run_workload_checked_accepts_clean_workload() {
    assert!(spcp_system::invariants_compiled());
    let producer = vec![store(5), barrier(1), barrier(2)];
    let consumer = |_: usize| vec![barrier(1), load(5), barrier(2)];
    let w = Workload::from_threads(
        "checked",
        vec![producer, consumer(1), consumer(2), consumer(3)],
    );
    let cfg = RunConfig::new(small_machine(), ProtocolKind::Directory);
    let stats = CmpSystem::run_workload_checked(&w, &cfg)
        .unwrap_or_else(|v| panic!("spurious violation: {v}"));
    assert!(stats.l2_misses > 0);
}
