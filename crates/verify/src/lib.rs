//! Protocol verification for the SPCP simulator.
//!
//! The paper's safety argument — a *sufficient* destination-set prediction
//! is a superset of the true coherence targets, so racing the directory can
//! never break the protocol — is only as strong as the protocol transition
//! functions themselves. This crate checks them directly instead of
//! sampling end-to-end outputs:
//!
//! * [`model`] — an exhaustive BFS model checker over small configurations
//!   (2–4 cores × 1–2 lines) driven by the *same*
//!   [`spcp_system::protocol`] transition functions the timing simulator
//!   executes, verifying SWMR, single-Forwarder, directory/cache
//!   agreement, and data-value invariants, with counterexample traces on
//!   violation;
//! * [`race`] — a happens-before analyzer over recorded
//!   [`spcp_trace::TraceEvent`] streams that flags communicating misses
//!   whose producer/consumer pair is not ordered by synchronization — a
//!   direct audit of the paper's claim that communication is localized
//!   within sync-epochs.
//!
//! The third verification layer — runtime invariant audits after every
//! transaction — lives in `spcp-system` itself (see
//! [`spcp_system::CmpSystem::run_workload_checked`]) because it needs the
//! machine's internals; `spcp check` drives all three.
//!
//! See `docs/VERIFY.md` for the invariant catalog and how to read
//! counterexample traces.

#![warn(missing_docs)]

pub mod model;
pub mod race;

pub use model::{CheckStats, Counterexample, ModelAction, ModelChecker, ModelConfig};
pub use race::{analyze_races, RaceFinding, RaceReport};
