//! Exhaustive MESIF/MESI model checker.
//!
//! Enumerates every reachable global state of a small configuration —
//! per-core line states, a real [`Directory`], and data-freshness ghost
//! bits — under all interleavings of reads, writes, and evictions, using
//! the *production* transition functions from [`spcp_system::protocol`].
//! Every visited state is checked against the invariant catalog; a
//! violation yields a [`Counterexample`]: the shortest action sequence from
//! the reset state to the broken one, with the full state rendered at each
//! step.
//!
//! Transactions in the simulator are atomic (the globally time-ordered run
//! loop commits each miss before the next begins), so there are no
//! transient protocol states to deadlock in; the no-stuck-state obligation
//! reduces to *totality* — every action must be applicable in every
//! reachable state — which the checker also enforces.

use spcp_core::AccessKind;
use spcp_mem::{BlockAddr, Directory, LineState};
use spcp_sim::{CoreId, CoreSet};
use spcp_system::protocol::{self, CommitFn};
use spcp_system::CoherenceVariant;
use std::collections::HashSet;
use std::fmt;

/// Renders a [`CoreSet`] as `{0, 2}` (the derived `Debug` shows raw bits).
fn set_str(s: CoreSet) -> String {
    let cores: Vec<String> = s.iter().map(|c| c.index().to_string()).collect();
    format!("{{{}}}", cores.join(", "))
}

/// Largest core count the checker accepts (state keys stay within `u64`).
pub const MAX_MODEL_CORES: usize = 4;
/// Largest line count the checker accepts.
pub const MAX_MODEL_LINES: usize = 2;

/// A small configuration to enumerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Number of cores (2–4).
    pub cores: usize,
    /// Number of cache lines (1–2).
    pub lines: usize,
    /// Protocol family (MESIF or plain MESI).
    pub variant: CoherenceVariant,
    /// Additionally audit the ground truth behind predicted requests
    /// racing the directory: at every miss the directory-computed target
    /// set must equal the true set of remote valid copies (writes) and the
    /// chosen supplier must actually be able to supply (reads). A
    /// *sufficient* prediction (superset of the targets) is then safe by
    /// construction.
    pub predictor_race: bool,
}

impl ModelConfig {
    /// The CI smoke configuration: 2 cores × 1 line, MESIF.
    pub fn small() -> Self {
        ModelConfig {
            cores: 2,
            lines: 1,
            variant: CoherenceVariant::Mesif,
            predictor_race: false,
        }
    }
}

/// One atomic step a core can take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelAction {
    /// A load: hit if the line is valid, otherwise a read miss.
    Read {
        /// Acting core.
        core: usize,
        /// Target line.
        line: usize,
    },
    /// A store: silent on M, upgrade on E/S/F, write miss on I.
    Write {
        /// Acting core.
        core: usize,
        /// Target line.
        line: usize,
    },
    /// A capacity eviction of the line (no-op when not resident).
    Evict {
        /// Acting core.
        core: usize,
        /// Target line.
        line: usize,
    },
}

impl fmt::Display for ModelAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelAction::Read { core, line } => write!(f, "core {core} reads line {line}"),
            ModelAction::Write { core, line } => write!(f, "core {core} writes line {line}"),
            ModelAction::Evict { core, line } => write!(f, "core {core} evicts line {line}"),
        }
    }
}

/// A global protocol state: per-core line states, the directory, and the
/// data-value ghost state (which copies hold the latest value, and whether
/// memory does).
#[derive(Clone)]
struct ModelState {
    /// `states[line * cores + core]`; Invalid ⇔ not resident.
    states: Vec<LineState>,
    dir: Directory,
    /// Per line: cores whose cached copy holds the latest written value.
    fresh: Vec<CoreSet>,
    /// Per line: whether memory holds the latest value.
    mem_fresh: Vec<bool>,
}

impl ModelState {
    fn reset(cfg: &ModelConfig) -> Self {
        ModelState {
            states: vec![LineState::Invalid; cfg.cores * cfg.lines],
            dir: Directory::new(cfg.cores),
            fresh: vec![CoreSet::empty(); cfg.lines],
            mem_fresh: vec![true; cfg.lines],
        }
    }

    #[inline]
    fn state(&self, cfg: &ModelConfig, line: usize, core: usize) -> LineState {
        self.states[line * cfg.cores + core]
    }

    #[inline]
    fn set_state(&mut self, cfg: &ModelConfig, line: usize, core: usize, s: LineState) {
        self.states[line * cfg.cores + core] = s;
    }

    fn valid_set(&self, cfg: &ModelConfig, line: usize) -> CoreSet {
        let mut v = CoreSet::empty();
        for c in 0..cfg.cores {
            if self.state(cfg, line, c).is_valid() {
                v.insert(CoreId::new(c));
            }
        }
        v
    }

    /// Canonical `u64` key; distinct states map to distinct keys for the
    /// supported sizes (≤ 4 cores × ≤ 2 lines ⇒ ~2^42 key space).
    fn key(&self, cfg: &ModelConfig) -> u64 {
        let mut k: u64 = 0;
        for line in 0..cfg.lines {
            for core in 0..cfg.cores {
                let code = match self.state(cfg, line, core) {
                    LineState::Invalid => 0,
                    LineState::Shared => 1,
                    LineState::Exclusive => 2,
                    LineState::Modified => 3,
                    LineState::Forward => 4,
                };
                k = k * 5 + code;
            }
            let entry = self.dir.entry(block(line));
            let owner_code = entry.owner.map(|o| o.index() as u64 + 1).unwrap_or(0);
            k = k * (cfg.cores as u64 + 1) + owner_code;
            let mask = (1u64 << cfg.cores) - 1;
            k = (k << cfg.cores) | (entry.sharers.bits() & mask);
            k = (k << cfg.cores) | (self.fresh[line].bits() & mask);
            k = (k << 1) | self.mem_fresh[line] as u64;
        }
        k
    }

    fn render(&self, cfg: &ModelConfig) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for line in 0..cfg.lines {
            let entry = self.dir.entry(block(line));
            let states: String = (0..cfg.cores)
                .map(|c| self.state(cfg, line, c).to_string())
                .collect::<Vec<_>>()
                .join(" ");
            let _ = write!(
                out,
                "  line {line}: caches [{states}]  dir owner={} sharers={}  fresh={} mem={}",
                entry
                    .owner
                    .map(|o| o.index().to_string())
                    .unwrap_or_else(|| "-".into()),
                set_str(entry.sharers),
                set_str(self.fresh[line]),
                if self.mem_fresh[line] {
                    "fresh"
                } else {
                    "stale"
                },
            );
            if line + 1 < cfg.lines {
                out.push('\n');
            }
        }
        out
    }
}

#[inline]
fn block(line: usize) -> BlockAddr {
    BlockAddr::from_index(line as u64)
}

/// Statistics of a successful exhaustive enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckStats {
    /// Distinct reachable global states.
    pub states: usize,
    /// Transitions explored (including self-loops and hits).
    pub transitions: usize,
}

/// A shortest-path witness of an invariant violation.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The broken invariant.
    pub message: String,
    /// The action sequence from the reset state to the violation.
    pub actions: Vec<ModelAction>,
    /// Rendered state after each action (same length as `actions`), ending
    /// in the violating state.
    pub steps: Vec<String>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.message)?;
        writeln!(
            f,
            "counterexample ({} steps from reset):",
            self.actions.len()
        )?;
        for (i, (a, s)) in self.actions.iter().zip(&self.steps).enumerate() {
            writeln!(f, "step {}: {a}", i + 1)?;
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

/// The exhaustive checker. Construct with [`ModelChecker::new`], optionally
/// swap the transition function with
/// [`with_commit`](ModelChecker::with_commit) (regression tests point it at
/// a deliberately broken table), then run [`check`](ModelChecker::check).
#[derive(Debug, Clone)]
pub struct ModelChecker {
    cfg: ModelConfig,
    commit: CommitFn,
}

impl ModelChecker {
    /// Creates a checker for `cfg` using the production
    /// [`protocol::commit_plan`] transition function.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` exceeds [`MAX_MODEL_CORES`] / [`MAX_MODEL_LINES`]
    /// (the canonical state encoding would overflow).
    pub fn new(cfg: ModelConfig) -> Self {
        assert!(
            (2..=MAX_MODEL_CORES).contains(&cfg.cores),
            "model cores must be 2..={MAX_MODEL_CORES}"
        );
        assert!(
            (1..=MAX_MODEL_LINES).contains(&cfg.lines),
            "model lines must be 1..={MAX_MODEL_LINES}"
        );
        ModelChecker {
            cfg,
            commit: protocol::commit_plan,
        }
    }

    /// Replaces the transition function (for broken-table regression
    /// tests).
    pub fn with_commit(mut self, commit: CommitFn) -> Self {
        self.commit = commit;
        self
    }

    /// BFS-enumerates every reachable state, checking each against the
    /// invariant catalog.
    ///
    /// # Errors
    ///
    /// Returns the shortest [`Counterexample`] to the first violated
    /// invariant.
    pub fn check(&self) -> Result<CheckStats, Box<Counterexample>> {
        struct Node {
            state: ModelState,
            parent: Option<(usize, ModelAction)>,
        }

        let cfg = &self.cfg;
        let mut actions = Vec::new();
        for core in 0..cfg.cores {
            for line in 0..cfg.lines {
                actions.push(ModelAction::Read { core, line });
                actions.push(ModelAction::Write { core, line });
                actions.push(ModelAction::Evict { core, line });
            }
        }

        let root = ModelState::reset(cfg);
        if let Err(message) = self.check_state(&root) {
            return Err(Box::new(Counterexample {
                message,
                actions: Vec::new(),
                steps: Vec::new(),
            }));
        }
        let mut nodes = vec![Node {
            state: root,
            parent: None,
        }];
        let mut seen: HashSet<u64> = HashSet::new();
        seen.insert(nodes[0].state.key(cfg));
        let mut frontier = 0usize;
        let mut transitions = 0usize;

        let trace_of = |nodes: &[Node], mut idx: usize, last: ModelAction| {
            let mut actions = vec![last];
            while let Some((p, a)) = nodes[idx].parent {
                actions.push(a);
                idx = p;
            }
            actions.reverse();
            actions
        };

        while frontier < nodes.len() {
            for &action in &actions {
                transitions += 1;
                let stepped = match self.apply(&nodes[frontier].state, action) {
                    Ok(s) => s,
                    Err(message) => {
                        return Err(
                            self.counterexample(message, trace_of(&nodes, frontier, action))
                        );
                    }
                };
                let Some(next) = stepped else {
                    continue; // hit or no-op: no state change
                };
                let key = next.key(cfg);
                if seen.contains(&key) {
                    continue;
                }
                if let Err(message) = self.check_state(&next) {
                    return Err(self.counterexample(message, trace_of(&nodes, frontier, action)));
                }
                seen.insert(key);
                nodes.push(Node {
                    state: next,
                    parent: Some((frontier, action)),
                });
            }
            frontier += 1;
        }

        Ok(CheckStats {
            states: nodes.len(),
            transitions,
        })
    }

    /// Rebuilds the violating run by replaying `actions` from reset,
    /// rendering each intermediate state.
    fn counterexample(&self, message: String, actions: Vec<ModelAction>) -> Box<Counterexample> {
        let mut steps = Vec::with_capacity(actions.len());
        let mut state = ModelState::reset(&self.cfg);
        for &a in &actions {
            // The final action may be the one that fails to apply; the
            // last rendered state is then the pre-action state.
            if let Ok(Some(next)) = self.apply(&state, a) {
                state = next;
            }
            steps.push(state.render(&self.cfg));
        }
        Box::new(Counterexample {
            message,
            actions,
            steps,
        })
    }

    /// Applies one action. `Ok(None)` means the action completed without
    /// a coherence transaction (cache hit / eviction of a non-resident
    /// line). `Err` is a transition-time violation: a data source that
    /// would supply stale data, a directory target set that disagrees with
    /// ground truth (predictor-race mode), or an inapplicable commit plan.
    fn apply(&self, s: &ModelState, action: ModelAction) -> Result<Option<ModelState>, String> {
        let cfg = &self.cfg;
        let mesif = cfg.variant == CoherenceVariant::Mesif;
        match action {
            ModelAction::Read { core, line } => {
                if s.state(cfg, line, core).is_valid() {
                    return Ok(None); // hit
                }
                let entry = s.dir.entry(block(line));
                let supplier = protocol::supplier_of(&entry, mesif, |o| {
                    let st = s.state(cfg, line, o.index());
                    st.is_valid().then_some(st)
                });
                let requester = CoreId::new(core);
                let targets =
                    protocol::transaction_targets(AccessKind::Read, requester, &entry, supplier);
                self.audit_targets(s, line, AccessKind::Read, requester, supplier, targets)?;
                let source = supplier.filter(|&o| o != requester);
                self.check_source(s, line, action, source)?;
                let plan = (self.commit)(AccessKind::Read, requester, &entry, mesif, targets);

                let mut next = s.clone();
                if let Some(o) = plan.downgraded_owner {
                    let old = next.state(cfg, line, o.index());
                    if old.is_valid() {
                        if old.needs_writeback() {
                            next.mem_fresh[line] = true;
                        }
                        next.set_state(cfg, line, o.index(), LineState::Shared);
                    }
                }
                self.invalidate(&mut next, line, plan.invalidated);
                if !plan.installs_line {
                    return Err(format!(
                        "{action}: commit plan upgrades a non-resident line in place"
                    ));
                }
                next.set_state(cfg, line, core, plan.requester_state);
                next.fresh[line].insert(requester);
                self.record_dir(&mut next, line, requester, plan.dir_update);
                Ok(Some(next))
            }
            ModelAction::Write { core, line } => {
                let requester = CoreId::new(core);
                match s.state(cfg, line, core) {
                    LineState::Modified | LineState::Exclusive => {
                        // Silent store (E upgrades to M without traffic).
                        let mut next = s.clone();
                        next.set_state(cfg, line, core, LineState::Modified);
                        next.fresh[line] = CoreSet::single(requester);
                        next.mem_fresh[line] = false;
                        Ok(Some(next))
                    }
                    st => {
                        let kind = if st.is_valid() {
                            AccessKind::Upgrade
                        } else {
                            AccessKind::Write
                        };
                        let entry = s.dir.entry(block(line));
                        let supplier = protocol::supplier_of(&entry, mesif, |o| {
                            let st = s.state(cfg, line, o.index());
                            st.is_valid().then_some(st)
                        });
                        let targets =
                            protocol::transaction_targets(kind, requester, &entry, supplier);
                        self.audit_targets(s, line, kind, requester, supplier, targets)?;
                        if kind == AccessKind::Write {
                            // A write miss fetches the line before
                            // modifying it; the fetch must not be stale.
                            let source = supplier.filter(|&o| o != requester);
                            self.check_source(s, line, action, source)?;
                        }
                        let plan = (self.commit)(kind, requester, &entry, mesif, targets);

                        let mut next = s.clone();
                        if let Some(o) = plan.downgraded_owner {
                            let old = next.state(cfg, line, o.index());
                            if old.is_valid() {
                                if old.needs_writeback() {
                                    next.mem_fresh[line] = true;
                                }
                                next.set_state(cfg, line, o.index(), LineState::Shared);
                            }
                        }
                        self.invalidate(&mut next, line, plan.invalidated);
                        if !plan.installs_line && !next.state(cfg, line, core).is_valid() {
                            return Err(format!(
                                "{action}: commit plan upgrades a non-resident line in place"
                            ));
                        }
                        next.set_state(cfg, line, core, plan.requester_state);
                        // The store produces a new value: only the writer
                        // is fresh, memory goes stale.
                        next.fresh[line] = CoreSet::single(requester);
                        next.mem_fresh[line] = false;
                        self.record_dir(&mut next, line, requester, plan.dir_update);
                        Ok(Some(next))
                    }
                }
            }
            ModelAction::Evict { core, line } => {
                let st = s.state(cfg, line, core);
                if !st.is_valid() {
                    return Ok(None);
                }
                let requester = CoreId::new(core);
                let mut next = s.clone();
                if st.needs_writeback() {
                    next.mem_fresh[line] = true;
                }
                next.set_state(cfg, line, core, LineState::Invalid);
                next.fresh[line].remove(requester);
                next.dir.record_drop(block(line), requester);
                Ok(Some(next))
            }
        }
    }

    /// Drops every core in `set` from the line (remote invalidation).
    fn invalidate(&self, s: &mut ModelState, line: usize, set: CoreSet) {
        for v in set.iter() {
            s.set_state(&self.cfg, line, v.index(), LineState::Invalid);
            s.fresh[line].remove(v);
        }
    }

    fn record_dir(
        &self,
        s: &mut ModelState,
        line: usize,
        requester: CoreId,
        update: protocol::DirUpdate,
    ) {
        match update {
            protocol::DirUpdate::Exclusive => s.dir.record_exclusive(block(line), requester),
            protocol::DirUpdate::Shared => s.dir.record_shared(block(line), requester),
            protocol::DirUpdate::SharedNoForward => {
                s.dir.record_shared_no_forward(block(line), requester)
            }
        }
    }

    /// Transition-time data-value check: the cache chosen to supply data
    /// must hold the latest value; a memory-serviced miss requires memory
    /// to be current.
    fn check_source(
        &self,
        s: &ModelState,
        line: usize,
        action: ModelAction,
        source: Option<CoreId>,
    ) -> Result<(), String> {
        match source {
            Some(o) => {
                if !s.fresh[line].contains(o) {
                    return Err(format!(
                        "data-value: {action} is served stale data by core {}",
                        o.index()
                    ));
                }
            }
            None => {
                if !s.mem_fresh[line] {
                    return Err(format!(
                        "data-value: {action} is served stale data by memory \
                         (a dirty copy exists but the directory found no supplier)"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Predictor-race ground-truth audit (see
    /// [`ModelConfig::predictor_race`]).
    fn audit_targets(
        &self,
        s: &ModelState,
        line: usize,
        kind: AccessKind,
        requester: CoreId,
        supplier: Option<CoreId>,
        targets: CoreSet,
    ) -> Result<(), String> {
        if !self.cfg.predictor_race {
            return Ok(());
        }
        match kind {
            AccessKind::Write | AccessKind::Upgrade => {
                let mut truly_stale = s.valid_set(&self.cfg, line);
                truly_stale.remove(requester);
                if targets != truly_stale {
                    return Err(format!(
                        "predictor-race: directory targets {} for a {kind:?} by core \
                         {} disagree with the remote valid copies {} — a \
                         sufficient prediction would skip an invalidation",
                        set_str(targets),
                        requester.index(),
                        set_str(truly_stale)
                    ));
                }
            }
            AccessKind::Read => {
                // The supplier must hold a *valid* copy. Note S suffices:
                // when the Forward owner evicts, `Directory::record_drop`
                // deliberately promotes a remaining (Shared) sharer to
                // clean-forwarder, so `can_supply_data` on the MESIF state
                // alone would be too strict. Freshness of the supplied
                // data is checked separately by `check_source` (I4).
                if let Some(o) = supplier.filter(|&o| o != requester) {
                    if !s.state(&self.cfg, line, o.index()).is_valid() {
                        return Err(format!(
                            "predictor-race: predicted supplier core {} holds no valid \
                             copy (state {})",
                            o.index(),
                            s.state(&self.cfg, line, o.index())
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Per-state invariant catalog (I1–I4 of `docs/VERIFY.md`).
    fn check_state(&self, s: &ModelState) -> Result<(), String> {
        let cfg = &self.cfg;
        for line in 0..cfg.lines {
            let mut valid = CoreSet::empty();
            let mut writable = CoreSet::empty();
            let mut suppliers = CoreSet::empty();
            let mut dirty = false;
            for core in 0..cfg.cores {
                let st = s.state(cfg, line, core);
                if st.is_valid() {
                    valid.insert(CoreId::new(core));
                    if st.is_writable() {
                        writable.insert(CoreId::new(core));
                    }
                    if st.can_supply_data() {
                        suppliers.insert(CoreId::new(core));
                    }
                    dirty |= st.needs_writeback();
                }
            }
            // I1: single writer OR multiple readers (SWMR).
            if writable.len() > 1 || (!writable.is_empty() && valid.len() > 1) {
                return Err(format!(
                    "SWMR: line {line} has writable copies at {} alongside valid \
                     copies at {}",
                    set_str(writable),
                    set_str(valid)
                ));
            }
            // I2: at most one M/E/F supplier.
            if suppliers.len() > 1 {
                return Err(format!(
                    "single-Forwarder: line {line} has {} simultaneous suppliers ({})",
                    suppliers.len(),
                    set_str(suppliers)
                ));
            }
            // I3: directory/cache agreement.
            let entry = s.dir.entry(block(line));
            if entry.sharers != valid {
                return Err(format!(
                    "dir-agreement: line {line} directory sharers {} != cached copies {}",
                    set_str(entry.sharers),
                    set_str(valid)
                ));
            }
            if let Some(sup) = suppliers.iter().next() {
                if entry.owner != Some(sup) {
                    return Err(format!(
                        "dir-agreement: line {line} supplier core {} is not the directory \
                         owner ({:?})",
                        sup.index(),
                        entry.owner
                    ));
                }
            }
            if let Some(o) = entry.owner {
                if !entry.sharers.contains(o) {
                    return Err(format!(
                        "dir-agreement: line {line} owner core {} is not a sharer",
                        o.index()
                    ));
                }
            }
            // I4: data-value — every valid copy holds the latest value, and
            // the latest value survives somewhere (a dirty copy or memory).
            if !s.fresh[line].is_superset(valid) {
                let stale = valid.difference(s.fresh[line]);
                return Err(format!(
                    "data-value: line {line} has valid but stale copies at {}",
                    set_str(stale)
                ));
            }
            if !dirty && !s.mem_fresh[line] {
                return Err(format!(
                    "data-value: line {line} has no dirty copy yet memory is stale — the \
                     latest value was lost"
                ));
            }
        }
        // Directory hygiene: no tracked entry without sharers.
        for (b, e) in s.dir.iter() {
            if e.sharers.is_empty() {
                return Err(format!("dir-agreement: {b} tracked with no sharers"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcp_mem::DirEntry;
    use spcp_system::protocol::{CommitPlan, DirUpdate};

    #[test]
    fn two_core_one_line_mesif_is_clean() {
        let stats = ModelChecker::new(ModelConfig::small())
            .check()
            .unwrap_or_else(|ce| panic!("{ce}"));
        // 2 cores x 1 line reaches a small but nontrivial space.
        assert!(stats.states > 5, "only {} states reached", stats.states);
        assert!(stats.transitions > stats.states);
    }

    #[test]
    fn mesi_variant_is_clean() {
        let cfg = ModelConfig {
            variant: CoherenceVariant::Mesi,
            ..ModelConfig::small()
        };
        ModelChecker::new(cfg)
            .check()
            .unwrap_or_else(|ce| panic!("{ce}"));
    }

    #[test]
    fn larger_configs_are_clean() {
        for (cores, lines) in [(3, 1), (2, 2), (4, 1), (4, 2)] {
            for variant in [CoherenceVariant::Mesif, CoherenceVariant::Mesi] {
                let cfg = ModelConfig {
                    cores,
                    lines,
                    variant,
                    predictor_race: false,
                };
                let stats = ModelChecker::new(cfg)
                    .check()
                    .unwrap_or_else(|ce| panic!("{cores}x{lines} {variant:?}: {ce}"));
                assert!(stats.states > 10);
            }
        }
    }

    #[test]
    fn predictor_race_audit_is_clean() {
        for cores in 2..=4 {
            let cfg = ModelConfig {
                cores,
                lines: 1,
                variant: CoherenceVariant::Mesif,
                predictor_race: true,
            };
            ModelChecker::new(cfg)
                .check()
                .unwrap_or_else(|ce| panic!("{ce}"));
        }
    }

    /// A deliberately broken transition table: writes take ownership but
    /// never invalidate the other sharers.
    fn broken_no_invalidate(
        kind: AccessKind,
        requester: CoreId,
        entry: &DirEntry,
        mesif: bool,
        targets: CoreSet,
    ) -> CommitPlan {
        let mut plan = protocol::commit_plan(kind, requester, entry, mesif, targets);
        if matches!(kind, AccessKind::Write | AccessKind::Upgrade) {
            plan.invalidated = CoreSet::empty();
        }
        plan
    }

    #[test]
    fn broken_write_path_yields_swmr_counterexample() {
        let err = ModelChecker::new(ModelConfig::small())
            .with_commit(broken_no_invalidate)
            .check()
            .expect_err("a write that skips invalidation must violate an invariant");
        // The stale copy is caught either as a second valid copy next to a
        // writable one (SWMR) or as a valid-but-stale copy (data-value),
        // whichever state BFS reaches first.
        assert!(
            err.message.contains("SWMR") || err.message.contains("data-value"),
            "unexpected violation: {}",
            err.message
        );
        assert!(!err.actions.is_empty(), "counterexample must carry a trace");
        assert_eq!(err.actions.len(), err.steps.len());
        // The printout ends at the violating state.
        let rendered = err.to_string();
        assert!(rendered.contains("counterexample"), "{rendered}");
    }

    /// A broken directory update: reads of a cached line record no owner
    /// even under MESIF, stranding the F-state copy outside the directory.
    fn broken_forward_bookkeeping(
        kind: AccessKind,
        requester: CoreId,
        entry: &DirEntry,
        mesif: bool,
        targets: CoreSet,
    ) -> CommitPlan {
        let mut plan = protocol::commit_plan(kind, requester, entry, mesif, targets);
        if kind == AccessKind::Read && plan.dir_update == DirUpdate::Shared {
            plan.dir_update = DirUpdate::SharedNoForward;
        }
        plan
    }

    #[test]
    fn broken_forward_bookkeeping_caught_by_dir_agreement() {
        let err = ModelChecker::new(ModelConfig::small())
            .with_commit(broken_forward_bookkeeping)
            .check()
            .expect_err("an F copy the directory forgot must violate agreement");
        assert!(
            err.message.contains("dir-agreement"),
            "unexpected violation: {}",
            err.message
        );
    }

    #[test]
    fn config_bounds_enforced() {
        let result = std::panic::catch_unwind(|| {
            ModelChecker::new(ModelConfig {
                cores: 5,
                ..ModelConfig::small()
            })
        });
        assert!(result.is_err());
    }
}
