//! Benchmark specifications: the parameterization of a synthetic workload.

use crate::pattern::SharingPattern;

/// Critical-section behaviour inside an epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsSpec {
    /// First lock ID of the pool this epoch contends on.
    pub lock_base: u32,
    /// Number of locks in the pool (fine-grain locking uses many).
    pub num_locks: u32,
    /// Critical sections each core executes per epoch instance.
    pub sections: u32,
    /// Memory accesses inside each critical section (migratory data).
    pub accesses: u32,
}

/// One static sync-epoch: the code between two consecutive barriers.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSpec {
    /// Static ID of the barrier *beginning* this epoch (globally unique).
    pub static_id: u32,
    /// How consumers pick producers, instance by instance.
    pub pattern: SharingPattern,
    /// Distinct producer-stripe blocks each core reads per instance.
    pub shared_reads: u32,
    /// Own-stripe blocks each core writes (produces) per instance.
    pub shared_writes: u32,
    /// Private-stream accesses per instance (cold misses to memory — the
    /// non-communicating misses of Figure 1).
    pub private_accesses: u32,
    /// Probability an instance is "noisy" (§3.4): almost no activity.
    pub noise_prob: f64,
    /// Optional critical-section activity.
    pub cs: Option<CsSpec>,
    /// Base PC for this epoch's static instructions.
    pub pc_base: u32,
    /// Distinct static load/store PCs used for shared accesses. Small
    /// values model tight loops; sharing `pc_base` across epochs models
    /// common library code (it makes INST indexing coarser than epochs).
    pub shared_pcs: u32,
    /// Non-memory work (cycles) between consecutive accesses, modelling
    /// the instruction mix. Zero packs misses back to back (the default,
    /// stressing the NoC); larger values thin the offered load.
    pub work_per_access: u32,
}

impl EpochSpec {
    /// A baseline epoch: stable pattern, moderate traffic, no noise, no
    /// critical sections. Builder-style helpers refine it.
    pub fn new(static_id: u32, pattern: SharingPattern) -> Self {
        EpochSpec {
            static_id,
            pattern,
            shared_reads: 48,
            shared_writes: 48,
            private_accesses: 24,
            noise_prob: 0.0,
            cs: None,
            pc_base: static_id * 0x1000,
            shared_pcs: 4,
            work_per_access: 0,
        }
    }

    /// Sets the shared read/write counts.
    pub fn traffic(mut self, reads: u32, writes: u32) -> Self {
        self.shared_reads = reads;
        self.shared_writes = writes;
        self
    }

    /// Sets the private-stream access count.
    pub fn private(mut self, accesses: u32) -> Self {
        self.private_accesses = accesses;
        self
    }

    /// Sets the noisy-instance probability.
    pub fn noise(mut self, prob: f64) -> Self {
        self.noise_prob = prob;
        self
    }

    /// Attaches critical-section activity.
    pub fn critical_sections(mut self, cs: CsSpec) -> Self {
        self.cs = Some(cs);
        self
    }

    /// Sets the compute work between consecutive accesses.
    pub fn work(mut self, cycles: u32) -> Self {
        self.work_per_access = cycles;
        self
    }

    /// Overrides the PC assignment (for modelling shared library code).
    pub fn pcs(mut self, pc_base: u32, shared_pcs: u32) -> Self {
        self.pc_base = pc_base;
        self.shared_pcs = shared_pcs;
        self
    }

    /// Approximate operations one core emits per (non-noisy) instance.
    pub fn ops_per_instance(&self) -> u64 {
        // Per section: jitter compute + lock + accesses + unlock.
        let cs_ops = self
            .cs
            .map(|c| c.sections as u64 * (c.accesses as u64 + 3))
            .unwrap_or(0);
        1 + self.shared_reads as u64
            + self.shared_writes as u64
            + self.private_accesses as u64
            + cs_ops
    }
}

/// A group of epochs executed together for a number of iterations (one
/// outer loop of the program).
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// The epochs executed, in order, each iteration.
    pub epochs: Vec<EpochSpec>,
    /// Number of iterations (dynamic instances of each epoch).
    pub iterations: u32,
}

impl Phase {
    /// Creates a phase.
    pub fn new(epochs: Vec<EpochSpec>, iterations: u32) -> Self {
        Phase { epochs, iterations }
    }
}

/// A complete benchmark model.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (matches the paper's Table 1).
    pub name: &'static str,
    /// The program: phases executed in order.
    pub phases: Vec<Phase>,
    /// Extra seed salt so different benchmarks decorrelate.
    pub seed_salt: u64,
    /// The paper's Figure 1 communicating-miss ratio, kept as reference
    /// metadata for the experiment reports.
    pub paper_comm_ratio: f64,
}

impl BenchmarkSpec {
    /// Total static sync-epochs (distinct barriers) in the program.
    pub fn static_epochs(&self) -> usize {
        self.phases.iter().map(|p| p.epochs.len()).sum()
    }

    /// Total static critical sections (distinct locks contended on).
    pub fn static_critical_sections(&self) -> usize {
        let mut locks = std::collections::BTreeSet::new();
        for e in self.phases.iter().flat_map(|p| &p.epochs) {
            if let Some(c) = e.cs {
                if c.sections > 0 {
                    locks.extend(c.lock_base..c.lock_base + c.num_locks);
                }
            }
        }
        locks.len()
    }

    /// Dynamic epoch instances per core.
    pub fn dynamic_epochs_per_core(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.iterations as u64 * p.epochs.len() as u64)
            .sum()
    }

    /// Approximate operations one core emits over the whole run.
    pub fn ops_per_core(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| {
                p.iterations as u64 * p.epochs.iter().map(|e| e.ops_per_instance()).sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "toy",
            phases: vec![
                Phase::new(
                    vec![
                        EpochSpec::new(1, SharingPattern::Stable { offset: 1 }),
                        EpochSpec::new(2, SharingPattern::Random).critical_sections(CsSpec {
                            lock_base: 0,
                            num_locks: 4,
                            sections: 2,
                            accesses: 6,
                        }),
                    ],
                    10,
                ),
                Phase::new(vec![EpochSpec::new(3, SharingPattern::Neighbor)], 5),
            ],
            seed_salt: 7,
            paper_comm_ratio: 0.6,
        }
    }

    #[test]
    fn static_and_dynamic_counts() {
        let s = spec();
        assert_eq!(s.static_epochs(), 3);
        assert_eq!(s.static_critical_sections(), 4);
        assert_eq!(s.dynamic_epochs_per_core(), 10 * 2 + 5);
    }

    #[test]
    fn ops_accounting_includes_cs() {
        let e = EpochSpec::new(1, SharingPattern::Random)
            .traffic(10, 10)
            .private(5)
            .critical_sections(CsSpec {
                lock_base: 0,
                num_locks: 1,
                sections: 3,
                accesses: 4,
            });
        // 1 barrier + 10 + 10 + 5 + 3*(4+3)
        assert_eq!(e.ops_per_instance(), 1 + 25 + 21);
    }

    #[test]
    fn builders_compose() {
        let e = EpochSpec::new(5, SharingPattern::Stable { offset: 2 })
            .traffic(1, 2)
            .private(3)
            .noise(0.5)
            .pcs(0x9000, 2);
        assert_eq!(e.shared_reads, 1);
        assert_eq!(e.shared_writes, 2);
        assert_eq!(e.private_accesses, 3);
        assert_eq!(e.noise_prob, 0.5);
        assert_eq!(e.pc_base, 0x9000);
        assert_eq!(e.shared_pcs, 2);
    }

    #[test]
    fn ops_per_core_scales_with_iterations() {
        let s = spec();
        assert!(s.ops_per_core() > 0);
        let mut bigger = s.clone();
        bigger.phases[0].iterations *= 2;
        assert!(bigger.ops_per_core() > s.ops_per_core());
    }
}
