//! A plain-text workload specification format.
//!
//! Lets downstream users define benchmark models without recompiling. The
//! format is line-oriented; `#` starts a comment; indentation is free-form:
//!
//! ```text
//! benchmark tree-app
//! comm-ratio 0.7
//!
//! phase 8                     # iterations
//!   epoch 1 stable 4          # static-id, pattern
//!     traffic 64 64           # shared reads, writes
//!     private 16
//!   epoch 2 switch 4 12 2     # first, second, switch-at
//!     noise 0.05
//!     cs 0 1 2 8              # lock-base, locks, sections, accesses
//! end
//!
//! phase 4
//!   epoch 3 random
//! end
//! ```
//!
//! Patterns: `stable <offset>`, `switch <first> <second> <at>`,
//! `repetitive <stride> <period>`, `neighbor`, `random`,
//! `widely <producers>`, `mixed <offset>`, `private`.

use crate::pattern::SharingPattern;
use crate::spec::{BenchmarkSpec, CsSpec, EpochSpec, Phase};
use std::fmt;

/// A malformed spec file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSpecError {}

fn parse_pattern(fields: &[&str], line: usize) -> Result<SharingPattern, ParseSpecError> {
    let err = |message: String| ParseSpecError { line, message };
    let num = |s: &str, what: &str| -> Result<usize, ParseSpecError> {
        s.parse().map_err(|_| err(format!("bad {what} '{s}'")))
    };
    match fields {
        ["stable", o] => Ok(SharingPattern::Stable {
            offset: num(o, "offset")?,
        }),
        ["switch", a, b, at] => Ok(SharingPattern::StableSwitch {
            first: num(a, "first offset")?,
            second: num(b, "second offset")?,
            switch_at: num(at, "switch instance")? as u64,
        }),
        ["repetitive", s, p] => Ok(SharingPattern::Repetitive {
            stride: num(s, "stride")?,
            period: num(p, "period")?,
        }),
        ["neighbor"] => Ok(SharingPattern::Neighbor),
        ["random"] => Ok(SharingPattern::Random),
        ["widely", n] => Ok(SharingPattern::WidelyShared {
            producers: num(n, "producer count")?,
        }),
        ["mixed", o] => Ok(SharingPattern::Mixed {
            offset: num(o, "offset")?,
        }),
        ["private"] => Ok(SharingPattern::PrivateOnly),
        other => Err(err(format!("unknown pattern '{}'", other.join(" ")))),
    }
}

/// Parses a benchmark specification from its text form.
///
/// # Errors
///
/// Returns a [`ParseSpecError`] naming the offending line.
///
/// # Examples
///
/// ```
/// let text = "benchmark demo\nphase 2\n  epoch 1 stable 1\nend\n";
/// let spec = spcp_workloads::textspec::parse_spec(text)?;
/// assert_eq!(spec.name, "demo");
/// assert_eq!(spec.static_epochs(), 1);
/// # Ok::<(), spcp_workloads::textspec::ParseSpecError>(())
/// ```
pub fn parse_spec(text: &str) -> Result<BenchmarkSpec, ParseSpecError> {
    let mut name: Option<String> = None;
    let mut comm_ratio = 0.5f64;
    let mut phases: Vec<Phase> = Vec::new();
    let mut cur_phase: Option<(u32, Vec<EpochSpec>)> = None;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let err = |message: String| ParseSpecError {
            line: lineno,
            message,
        };
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields[0] {
            "benchmark" => {
                if fields.len() != 2 {
                    return Err(err("benchmark takes exactly one name".into()));
                }
                name = Some(fields[1].to_string());
            }
            "comm-ratio" => {
                comm_ratio = fields
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .filter(|v| (0.0..=1.0).contains(v))
                    .ok_or_else(|| err("comm-ratio needs a value in [0, 1]".into()))?;
            }
            "phase" => {
                if cur_phase.is_some() {
                    return Err(err("nested phase (missing 'end'?)".into()));
                }
                let iters: u32 = fields
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or_else(|| err("phase needs a positive iteration count".into()))?;
                cur_phase = Some((iters, Vec::new()));
            }
            "end" => {
                let (iters, epochs) = cur_phase
                    .take()
                    .ok_or_else(|| err("'end' without an open phase".into()))?;
                if epochs.is_empty() {
                    return Err(err("phase has no epochs".into()));
                }
                phases.push(Phase::new(epochs, iters));
            }
            "epoch" => {
                let (_, epochs) = cur_phase
                    .as_mut()
                    .ok_or_else(|| err("'epoch' outside a phase".into()))?;
                if fields.len() < 3 {
                    return Err(err("epoch needs: epoch <static-id> <pattern...>".into()));
                }
                let static_id: u32 = fields[1]
                    .parse()
                    .map_err(|_| err(format!("bad static id '{}'", fields[1])))?;
                let pattern = parse_pattern(&fields[2..], lineno)?;
                epochs.push(EpochSpec::new(static_id, pattern));
            }
            "traffic" | "private" | "noise" | "cs" | "pcs" | "work" => {
                let (_, epochs) = cur_phase
                    .as_mut()
                    .ok_or_else(|| err(format!("'{}' outside a phase", fields[0])))?;
                let epoch = epochs
                    .last_mut()
                    .ok_or_else(|| err(format!("'{}' before any epoch", fields[0])))?;
                if fields[0] == "noise" {
                    epoch.noise_prob = fields
                        .get(1)
                        .and_then(|v| v.parse().ok())
                        .filter(|v| (0.0..=1.0).contains(v))
                        .ok_or_else(|| err("noise needs a probability in [0, 1]".into()))?;
                    continue;
                }
                let nums: Vec<u32> = fields[1..]
                    .iter()
                    .map(|v| {
                        let v = v
                            .strip_prefix("0x")
                            .map_or_else(|| v.parse::<u32>(), |hex| u32::from_str_radix(hex, 16));
                        v.map_err(|_| err("bad numeric argument".into()))
                    })
                    .collect::<Result<_, _>>()?;
                match (fields[0], nums.as_slice()) {
                    ("traffic", [r, w]) => {
                        epoch.shared_reads = *r;
                        epoch.shared_writes = *w;
                    }
                    ("private", [p]) => epoch.private_accesses = *p,
                    ("work", [w]) => epoch.work_per_access = *w,
                    ("cs", [base, locks, sections, accesses]) => {
                        if *locks == 0 {
                            return Err(err("cs needs at least one lock".into()));
                        }
                        epoch.cs = Some(CsSpec {
                            lock_base: *base,
                            num_locks: *locks,
                            sections: *sections,
                            accesses: *accesses,
                        });
                    }
                    ("pcs", [base, count]) => {
                        if *count == 0 {
                            return Err(err("pcs needs at least one static pc".into()));
                        }
                        epoch.pc_base = *base;
                        epoch.shared_pcs = *count;
                    }
                    (kw, _) => return Err(err(format!("wrong argument count for '{kw}'"))),
                }
            }
            other => return Err(err(format!("unknown directive '{other}'"))),
        }
    }

    if cur_phase.is_some() {
        return Err(ParseSpecError {
            line: text.lines().count(),
            message: "unterminated phase (missing 'end')".into(),
        });
    }
    if phases.is_empty() {
        return Err(ParseSpecError {
            line: 1,
            message: "spec defines no phases".into(),
        });
    }
    let name = name.ok_or(ParseSpecError {
        line: 1,
        message: "missing 'benchmark <name>' directive".into(),
    })?;
    Ok(BenchmarkSpec {
        // BenchmarkSpec names are `&'static str` throughout the workspace
        // (they name compiled-in models); a parsed spec lives for the rest
        // of the process, so leaking its small name string is the accepted
        // trade-off.
        name: Box::leak(name.into_boxed_str()),
        phases,
        seed_salt: PARSED_SPEC_SALT,
        paper_comm_ratio: comm_ratio,
    })
}

/// Seed salt shared by every parsed spec (distinct from all built-ins).
pub const PARSED_SPEC_SALT: u64 = 0x59ec;

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# a demo workload
benchmark demo
comm-ratio 0.7

phase 3
  epoch 1 stable 4
    traffic 32 16
    private 8
    noise 0.1
  epoch 2 switch 1 5 2
    cs 0 2 1 6
end

phase 2
  epoch 3 repetitive 2 3
    pcs 0x9000 2
  epoch 4 neighbor
  epoch 5 widely 6
  epoch 6 mixed 3
  epoch 7 private
  epoch 8 random
end
";

    #[test]
    fn parses_a_full_spec() {
        let spec = parse_spec(GOOD).expect("valid spec");
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.paper_comm_ratio, 0.7);
        assert_eq!(spec.phases.len(), 2);
        assert_eq!(spec.static_epochs(), 8);
        assert_eq!(spec.static_critical_sections(), 2);
        let e1 = &spec.phases[0].epochs[0];
        assert_eq!(e1.shared_reads, 32);
        assert_eq!(e1.shared_writes, 16);
        assert_eq!(e1.private_accesses, 8);
        assert_eq!(e1.noise_prob, 0.1);
        let e3 = &spec.phases[1].epochs[0];
        assert_eq!(e3.pc_base, 0x9000);
        assert_eq!(e3.shared_pcs, 2);
    }

    #[test]
    fn parsed_spec_generates_and_runs() {
        let spec = parse_spec(GOOD).unwrap();
        let w = spec.generate(16, 3);
        assert_eq!(w.num_cores(), 16);
        assert!(w.total_ops() > 1000);
    }

    #[test]
    fn reports_line_numbers() {
        let bad = "benchmark x\nphase 1\n  epoch 1 stable 1\n  traffic 1\nend\n";
        let err = parse_spec(bad).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("argument count"));
    }

    #[test]
    fn rejects_structural_errors() {
        assert!(parse_spec("phase 1\n  epoch 1 stable 1\nend\n")
            .unwrap_err()
            .message
            .contains("benchmark"));
        assert!(parse_spec("benchmark x\nphase 1\nend\n")
            .unwrap_err()
            .message
            .contains("no epochs"));
        assert!(parse_spec("benchmark x\nphase 1\n  epoch 1 stable 1\n")
            .unwrap_err()
            .message
            .contains("unterminated"));
        assert!(parse_spec("benchmark x\n")
            .unwrap_err()
            .message
            .contains("no phases"));
        assert!(parse_spec("benchmark x\nepoch 1 stable 1\n")
            .unwrap_err()
            .message
            .contains("outside a phase"));
    }

    #[test]
    fn rejects_bad_patterns_and_values() {
        let with_pattern = |p: &str| format!("benchmark x\nphase 1\n  epoch 1 {p}\nend\n");
        assert!(parse_spec(&with_pattern("stable")).is_err());
        assert!(parse_spec(&with_pattern("zigzag 3")).is_err());
        assert!(parse_spec(&with_pattern("repetitive 1")).is_err());
        assert!(parse_spec("benchmark x\ncomm-ratio 7\nphase 1\n  epoch 1 random\nend\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec =
            parse_spec("benchmark x # inline\n\n# full line\nphase 1\n  epoch 1 random\nend\n")
                .unwrap();
        assert_eq!(spec.name, "x");
    }
}
