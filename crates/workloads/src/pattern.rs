//! The sharing-pattern taxonomy of §3.4.

use spcp_sim::{CoreId, DetRng};

/// How an epoch's consumers choose their producers, instance by instance —
/// directly encoding the hot-communication-set patterns of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SharingPattern {
    /// Figure 6(a): a fixed producer at `offset` from the consumer; the hot
    /// set is stable across instances.
    Stable {
        /// Producer = `(consumer + offset) mod n`.
        offset: usize,
    },
    /// Figure 6(b): stable at `first` until instance `switch_at`, then
    /// stable at `second` — e.g. a tree algorithm switching direction.
    StableSwitch {
        /// Offset used for early instances.
        first: usize,
        /// Offset used from `switch_at` on.
        second: usize,
        /// Instance number at which the switch happens.
        switch_at: u64,
    },
    /// Figure 6(c): the producer offset cycles through `period` values
    /// spaced `stride` apart — a repetitive pattern with the given period.
    Repetitive {
        /// Spacing between successive offsets.
        stride: usize,
        /// Number of distinct offsets before the cycle repeats.
        period: usize,
    },
    /// Nearest-neighbour exchange (stencil codes): producers are the two
    /// adjacent cores; stable across instances.
    Neighbor,
    /// Figure 6(d): a fresh uniformly random producer every instance
    /// (migratory / non-deterministic sharing).
    Random,
    /// Widely shared data: `producers` distinct producers each instance,
    /// chosen round-robin from the whole machine.
    WidelyShared {
        /// Number of producers read from per instance.
        producers: usize,
    },
    /// No shared reads at all (private compute phase).
    PrivateOnly,
    /// Figure 6(e): one stable producer plus one fresh random producer per
    /// instance (stable + random combination).
    Mixed {
        /// Offset of the stable producer.
        offset: usize,
    },
}

impl SharingPattern {
    /// The producer cores that `consumer` reads from during dynamic
    /// instance `instance`, for an `n`-core machine.
    ///
    /// `rng` supplies the non-determinism of [`SharingPattern::Random`];
    /// deterministic patterns ignore it.
    pub fn producers(
        &self,
        consumer: CoreId,
        instance: u64,
        n: usize,
        rng: &mut DetRng,
    ) -> Vec<CoreId> {
        let c = consumer.index();
        let wrap = |o: usize| CoreId::new((c + o) % n);
        match *self {
            SharingPattern::Stable { offset } => vec![wrap(offset.max(1))],
            SharingPattern::StableSwitch {
                first,
                second,
                switch_at,
            } => {
                let o = if instance < switch_at { first } else { second };
                vec![wrap(o.max(1))]
            }
            SharingPattern::Repetitive { stride, period } => {
                let k = (instance % period.max(1) as u64) as usize;
                vec![wrap(1 + k * stride.max(1))]
            }
            SharingPattern::Neighbor => {
                vec![CoreId::new((c + 1) % n), CoreId::new((c + n - 1) % n)]
            }
            SharingPattern::Random => {
                let mut p = rng.index(n);
                if p == c {
                    p = (p + 1) % n;
                }
                vec![CoreId::new(p)]
            }
            SharingPattern::WidelyShared { producers } => {
                (0..producers.min(n - 1)).map(|i| wrap(1 + i)).collect()
            }
            SharingPattern::PrivateOnly => Vec::new(),
            SharingPattern::Mixed { offset } => {
                let stable = wrap(offset.max(1));
                let mut p = rng.index(n);
                if p == c || p == stable.index() {
                    p = (p + 1) % n;
                }
                if p == c || p == stable.index() {
                    p = (p + 1) % n;
                }
                vec![stable, CoreId::new(p)]
            }
        }
    }

    /// Whether two dynamic instances of this pattern are guaranteed the
    /// same producer set (used by tests and the characterization harness).
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, SharingPattern::Random | SharingPattern::Mixed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seeded(1)
    }

    #[test]
    fn stable_is_constant_across_instances() {
        let p = SharingPattern::Stable { offset: 3 };
        let mut r = rng();
        let a = p.producers(CoreId::new(2), 0, 16, &mut r);
        let b = p.producers(CoreId::new(2), 17, 16, &mut r);
        assert_eq!(a, b);
        assert_eq!(a, vec![CoreId::new(5)]);
    }

    #[test]
    fn stable_never_selects_self() {
        let p = SharingPattern::Stable { offset: 0 };
        let mut r = rng();
        let a = p.producers(CoreId::new(4), 0, 16, &mut r);
        assert_ne!(a[0], CoreId::new(4), "offset 0 must be promoted to 1");
    }

    #[test]
    fn switch_changes_producer_at_boundary() {
        let p = SharingPattern::StableSwitch {
            first: 1,
            second: 4,
            switch_at: 3,
        };
        let mut r = rng();
        let before = p.producers(CoreId::new(0), 2, 16, &mut r);
        let after = p.producers(CoreId::new(0), 3, 16, &mut r);
        assert_eq!(before, vec![CoreId::new(1)]);
        assert_eq!(after, vec![CoreId::new(4)]);
    }

    #[test]
    fn repetitive_cycles_with_period() {
        let p = SharingPattern::Repetitive {
            stride: 2,
            period: 3,
        };
        let mut r = rng();
        let seq: Vec<usize> = (0..6)
            .map(|k| p.producers(CoreId::new(0), k, 16, &mut r)[0].index())
            .collect();
        assert_eq!(seq, vec![1, 3, 5, 1, 3, 5]);
    }

    #[test]
    fn neighbor_returns_both_sides_with_wraparound() {
        let p = SharingPattern::Neighbor;
        let mut r = rng();
        let v = p.producers(CoreId::new(0), 0, 16, &mut r);
        assert_eq!(v, vec![CoreId::new(1), CoreId::new(15)]);
    }

    #[test]
    fn random_avoids_self_and_varies() {
        let p = SharingPattern::Random;
        let mut r = rng();
        let mut distinct = std::collections::HashSet::new();
        for k in 0..64 {
            let v = p.producers(CoreId::new(3), k, 16, &mut r);
            assert_eq!(v.len(), 1);
            assert_ne!(v[0], CoreId::new(3));
            distinct.insert(v[0].index());
        }
        assert!(distinct.len() > 4, "random pattern must spread producers");
    }

    #[test]
    fn widely_shared_caps_at_n_minus_one() {
        let p = SharingPattern::WidelyShared { producers: 100 };
        let mut r = rng();
        let v = p.producers(CoreId::new(0), 0, 16, &mut r);
        assert_eq!(v.len(), 15);
        assert!(!v.contains(&CoreId::new(0)));
    }

    #[test]
    fn private_only_has_no_producers() {
        let p = SharingPattern::PrivateOnly;
        let mut r = rng();
        assert!(p.producers(CoreId::new(0), 0, 16, &mut r).is_empty());
    }

    #[test]
    fn determinism_flags() {
        assert!(SharingPattern::Stable { offset: 1 }.is_deterministic());
        assert!(!SharingPattern::Random.is_deterministic());
        assert!(!SharingPattern::Mixed { offset: 1 }.is_deterministic());
    }

    #[test]
    fn mixed_has_stable_plus_random_member() {
        let p = SharingPattern::Mixed { offset: 4 };
        let mut r = rng();
        let mut randoms = std::collections::HashSet::new();
        for k in 0..32 {
            let v = p.producers(CoreId::new(0), k, 16, &mut r);
            assert_eq!(v.len(), 2);
            assert_eq!(v[0], CoreId::new(4), "first member is the stable producer");
            assert_ne!(v[1], CoreId::new(0));
            assert_ne!(v[1], CoreId::new(4));
            randoms.insert(v[1].index());
        }
        assert!(randoms.len() > 3, "second member must wander");
    }
}
