//! Synthetic multithreaded workload models.
//!
//! The paper evaluates on SPLASH-2 and PARSEC binaries running under a
//! full-system simulator; neither the binaries nor such a simulator are
//! available here, so this crate synthesizes the *op streams* those programs
//! would present to the memory system. Each benchmark model is parameterized
//! by the paper's published characterization:
//!
//! * Table 1 — static/dynamic sync-epoch counts and critical-section counts
//!   (dynamic instance counts are scaled down ~50× to keep runs fast; the
//!   scaling preserves every behaviour SP-prediction exploits, since history
//!   depth is 2 and patterns repeat within a handful of instances);
//! * Figure 1 — per-benchmark communicating-miss ratios, steered by the mix
//!   of shared vs. private-streaming accesses;
//! * §3.4 — the hot-set pattern taxonomy (stable, stable-switch, stride-k
//!   repetitive, random/migratory critical sections, neighbour, widely
//!   shared, noisy instances).
//!
//! The generated streams are *real programs* against the simulated memory
//! system: producers genuinely write blocks, consumers genuinely miss on
//! them, and all communication (and thus everything a predictor sees) emerges
//! from the coherence protocol — not from labels in the generator.
//!
//! # Examples
//!
//! ```
//! use spcp_workloads::suite;
//!
//! let spec = suite::bodytrack();
//! let w = spec.generate(16, 42);
//! assert_eq!(w.threads().len(), 16);
//! assert!(w.threads()[0].len() > 1000);
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod layout;
pub mod op;
pub mod pattern;
pub mod spec;
pub mod suite;
pub mod textspec;

pub use gen::Workload;
pub use op::Op;
pub use pattern::SharingPattern;
pub use spec::{BenchmarkSpec, CsSpec, EpochSpec, Phase};
