//! The synthetic address-space layout.
//!
//! All benchmark models share one simple layout so that region arithmetic is
//! auditable:
//!
//! ```text
//! [0x0000_0000 ..)            shared data, striped per owner core
//! [0x4000_0000 ..)            lock-protected (migratory) data, per lock
//! [0x8000_0000 ..)            private streaming data, per core
//! ```
//!
//! Shared region: each core *owns* `SHARED_BLOCKS_PER_CORE` consecutive
//! blocks it produces into; consumers read a producer's stripe. Lock
//! regions hold the data a critical section touches (whoever held the lock
//! last wrote them — migratory sharing). Private regions are streamed
//! cold, so every access misses to memory: these are the
//! *non-communicating* misses of Figure 1.

use spcp_mem::{Addr, BLOCK_BYTES};
use spcp_sim::CoreId;

/// Blocks in each core's shared stripe.
pub const SHARED_BLOCKS_PER_CORE: u64 = 256;
/// Blocks in each lock's protected region.
pub const LOCK_BLOCKS: u64 = 16;
/// Base of the shared segment.
pub const SHARED_BASE: u64 = 0;
/// Base of the lock-data segment.
pub const LOCK_BASE: u64 = 0x4000_0000;
/// Base of the private streaming segment.
pub const PRIVATE_BASE: u64 = 0x8000_0000;
/// Bytes reserved per core in the private segment (large enough that a
/// stream never wraps in any generated run).
pub const PRIVATE_STRIDE: u64 = 0x0100_0000;

/// Address of block `idx` in `owner`'s shared stripe.
///
/// # Panics
///
/// Panics if `idx` is outside the stripe.
pub fn shared_block(owner: CoreId, idx: u64) -> Addr {
    assert!(
        idx < SHARED_BLOCKS_PER_CORE,
        "shared stripe index out of range"
    );
    Addr::new(SHARED_BASE + (owner.index() as u64 * SHARED_BLOCKS_PER_CORE + idx) * BLOCK_BYTES)
}

/// Address of block `idx` in lock `lock_id`'s protected region.
///
/// # Panics
///
/// Panics if `idx` is outside the region.
pub fn lock_block(lock_id: u32, idx: u64) -> Addr {
    assert!(idx < LOCK_BLOCKS, "lock region index out of range");
    Addr::new(LOCK_BASE + (lock_id as u64 * LOCK_BLOCKS + idx) * BLOCK_BYTES)
}

/// Address of the `seq`-th block of `core`'s private stream.
pub fn private_block(core: CoreId, seq: u64) -> Addr {
    let base = PRIVATE_BASE + core.index() as u64 * PRIVATE_STRIDE;
    Addr::new(base + (seq % (PRIVATE_STRIDE / BLOCK_BYTES)) * BLOCK_BYTES)
}

/// The core owning a shared-segment address, if it is in the shared
/// segment.
pub fn owner_of_shared(addr: Addr) -> Option<CoreId> {
    let raw = addr.raw();
    if raw >= LOCK_BASE {
        return None;
    }
    let stripe = raw / (SHARED_BLOCKS_PER_CORE * BLOCK_BYTES);
    Some(CoreId::new(stripe as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripes_are_disjoint() {
        let a = shared_block(CoreId::new(0), SHARED_BLOCKS_PER_CORE - 1);
        let b = shared_block(CoreId::new(1), 0);
        assert!(a.raw() < b.raw());
        assert_eq!(b.raw() - a.raw(), BLOCK_BYTES);
    }

    #[test]
    fn segments_do_not_overlap() {
        let last_shared = shared_block(CoreId::new(63), SHARED_BLOCKS_PER_CORE - 1);
        assert!(last_shared.raw() < LOCK_BASE);
        let last_lock = lock_block(1000, LOCK_BLOCKS - 1);
        assert!(last_lock.raw() < PRIVATE_BASE);
    }

    #[test]
    fn owner_round_trips() {
        for c in 0..16 {
            let core = CoreId::new(c);
            for idx in [0, 100, SHARED_BLOCKS_PER_CORE - 1] {
                assert_eq!(owner_of_shared(shared_block(core, idx)), Some(core));
            }
        }
        assert_eq!(owner_of_shared(lock_block(0, 0)), None);
        assert_eq!(owner_of_shared(private_block(CoreId::new(0), 0)), None);
    }

    #[test]
    fn private_streams_never_collide_across_cores() {
        let a = private_block(CoreId::new(0), 1_000_000);
        let b = private_block(CoreId::new(1), 0);
        assert!(a.raw() < b.raw());
    }

    #[test]
    fn private_stream_addresses_are_block_aligned_and_fresh() {
        let c = CoreId::new(3);
        let a0 = private_block(c, 0);
        let a1 = private_block(c, 1);
        assert_eq!(a1.raw() - a0.raw(), BLOCK_BYTES);
        assert_ne!(a0.block(), a1.block());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shared_index_bounds_checked() {
        shared_block(CoreId::new(0), SHARED_BLOCKS_PER_CORE);
    }
}
