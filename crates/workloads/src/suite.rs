//! The 18 benchmark models of the paper's evaluation (SPLASH-2 + PARSEC).
//!
//! Each model is shaped by the paper's published statistics:
//!
//! * **static sync-epochs** and **static critical sections** match Table 1
//!   exactly;
//! * **dynamic epoch instances** are scaled down (≈50×, capped at ~120 per
//!   core) so a full-suite run takes seconds — the predictor's history depth
//!   is 2, so behaviour converges within a handful of instances and the
//!   scaling does not change any qualitative result;
//! * **communicating-miss ratios** steer toward the Figure 1 values via the
//!   shared-vs-private access mix (`paper_comm_ratio` records the paper's
//!   value for the reports);
//! * **hot-set patterns** follow the paper's per-suite descriptions: stable
//!   producer–consumer (SPLASH kernels), stride-repetitive (ocean,
//!   streamcluster), random/migratory critical sections (radiosity, dedup),
//!   fine-grain neighbour + locking (water-ns, fluidanimate), and mostly
//!   non-repeating epochs (fft, radix, ferret).

use crate::pattern::SharingPattern;
use crate::spec::{BenchmarkSpec, CsSpec, EpochSpec, Phase};

use SharingPattern::{Neighbor, Random, Repetitive, Stable, StableSwitch, WidelyShared};

/// Convenience: `n` epochs with consecutive static IDs starting at `first`,
/// all built by `f(static_id, ordinal)`.
fn epochs(first: u32, n: u32, mut f: impl FnMut(u32, u32) -> EpochSpec) -> Vec<EpochSpec> {
    (0..n).map(|i| f(first + i, i)).collect()
}

/// fmm — SPLASH-2 n-body: tree exchange between parents/children (the
/// paper's §2 example), stable per-phase partners plus 30 locks.
pub fn fmm() -> BenchmarkSpec {
    let mut phases = Vec::new();
    // Tree upward pass: stable partners, direction A.
    phases.push(Phase::new(
        epochs(1, 8, |id, i| {
            EpochSpec::new(
                id,
                Stable {
                    offset: 1 + (i as usize % 4),
                },
            )
            .traffic(48, 48)
            .private(16)
        }),
        3,
    ));
    // Tree downward pass: direction switches (interval B of the example),
    // plus lock-protected accumulation.
    phases.push(Phase::new(
        epochs(9, 12, |id, i| {
            EpochSpec::new(
                id,
                StableSwitch {
                    first: 2,
                    second: 8,
                    switch_at: 1,
                },
            )
            .traffic(40, 40)
            .private(16)
            .critical_sections(CsSpec {
                lock_base: (i * 3) % 30,
                num_locks: 3,
                sections: 1,
                accesses: 6,
            })
        }),
        3,
    ));
    BenchmarkSpec {
        name: "fmm",
        phases,
        seed_salt: 0xf33,
        paper_comm_ratio: 0.75,
    }
}

/// lu — SPLASH-2 dense LU: pipelined stable producers, few epochs, mostly
/// capacity misses (low communicating ratio).
pub fn lu() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "lu",
        phases: vec![Phase::new(
            epochs(1, 5, |id, i| {
                EpochSpec::new(
                    id,
                    Stable {
                        offset: 1 + i as usize,
                    },
                )
                .traffic(16, 16)
                .private(96)
                .critical_sections(CsSpec {
                    lock_base: 0,
                    num_locks: if i == 0 { 7 } else { 1 },
                    sections: if i == 0 { 1 } else { 0 },
                    accesses: 4,
                })
            }),
            7,
        )],
        seed_salt: 0x1c,
        paper_comm_ratio: 0.30,
    }
}

/// ocean — SPLASH-2 grid solver: red/black sweeps give strongly repetitive
/// (stride) hot-set patterns over many instances.
pub fn ocean() -> BenchmarkSpec {
    let mut phases = Vec::new();
    phases.push(Phase::new(
        epochs(1, 10, |id, i| {
            EpochSpec::new(
                id,
                Repetitive {
                    stride: 1 + i as usize % 2,
                    period: 2,
                },
            )
            .traffic(48, 48)
            .private(24)
            // Grid sweeps share the same stencil kernel code.
            .pcs(0xA000, 4)
        }),
        10,
    ));
    phases.push(Phase::new(
        epochs(11, 9, |id, _| {
            EpochSpec::new(id, Neighbor)
                .traffic(40, 40)
                .private(20)
                .pcs(0xA000, 4)
        }),
        10,
    ));
    // 28 static critical sections (global reductions).
    phases.push(Phase::new(
        vec![EpochSpec::new(21, Random)
            .traffic(8, 8)
            .private(8)
            .critical_sections(CsSpec {
                lock_base: 0,
                num_locks: 28,
                sections: 2,
                accesses: 6,
            })],
        10,
    ));
    BenchmarkSpec {
        name: "ocean",
        phases,
        seed_salt: 0x0cea,
        paper_comm_ratio: 0.65,
    }
}

/// radiosity — SPLASH-2: task-stealing with heavy, random critical-section
/// communication and noisy instances.
pub fn radiosity() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "radiosity",
        phases: vec![Phase::new(
            epochs(1, 12, |id, i| {
                EpochSpec::new(id, Random)
                    .traffic(32, 32)
                    .private(16)
                    .noise(0.10)
                    .critical_sections(CsSpec {
                        lock_base: (i * 3) % 34,
                        num_locks: 3.min(34 - (i * 3) % 34),
                        sections: 2,
                        accesses: 8,
                    })
            }),
            10,
        )],
        seed_salt: 0x12ad,
        paper_comm_ratio: 0.70,
    }
}

/// raytrace — SPLASH-2: a read-mostly scene graph broadcast to every core
/// at startup, then lock-based task stealing with random victim choice.
pub fn raytrace() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "raytrace",
        phases: vec![
            // Scene-graph construction: one producer side widely read by
            // all renderers (BVH nodes touched by every ray).
            Phase::new(
                epochs(1, 2, |id, i| {
                    EpochSpec::new(
                        id,
                        WidelyShared {
                            producers: 2 + i as usize,
                        },
                    )
                    .traffic(56, 40)
                    .private(24)
                }),
                1,
            ),
            // Rendering: per-tile task queues with random stealing; the
            // stolen-task handoff is pure critical-section communication.
            Phase::new(
                epochs(3, 8, |id, i| {
                    EpochSpec::new(id, Random)
                        .traffic(32, 32)
                        .private(24)
                        .noise(0.15)
                        .critical_sections(CsSpec {
                            lock_base: (i * 4) % 25,
                            num_locks: 4.min(25 - (i * 4) % 25),
                            sections: 2,
                            accesses: 6,
                        })
                }),
                12,
            ),
        ],
        seed_salt: 0x7ace,
        paper_comm_ratio: 0.55,
    }
}

/// water-ns — SPLASH-2 molecular dynamics (spatial): neighbour exchange
/// plus fine-grain per-molecule locking.
pub fn water_ns() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "water-ns",
        phases: vec![Phase::new(
            epochs(1, 8, |id, i| {
                EpochSpec::new(id, Neighbor)
                    .traffic(48, 48)
                    .private(10)
                    .critical_sections(CsSpec {
                        lock_base: (i * 2) % 20,
                        num_locks: if i == 7 { 6 } else { 4 },
                        sections: 2,
                        accesses: 6,
                    })
            }),
            5,
        )],
        seed_salt: 0x3a7e,
        paper_comm_ratio: 0.85,
    }
}

/// cholesky — SPLASH-2 sparse factorization: irregular task graph, mixed
/// stable/random partners, modest sharing.
pub fn cholesky() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "cholesky",
        phases: vec![Phase::new(
            epochs(1, 27, |id, i| {
                let pattern = if i % 3 == 0 {
                    Random
                } else {
                    Stable {
                        offset: 1 + i as usize % 5,
                    }
                };
                EpochSpec::new(id, pattern)
                    .traffic(24, 24)
                    .private(48)
                    .noise(0.05)
                    .critical_sections(CsSpec {
                        lock_base: i % 28,
                        num_locks: if i == 26 { 2 } else { 1 },
                        sections: 1,
                        accesses: 4,
                    })
            }),
            2,
        )],
        seed_salt: 0xc401,
        paper_comm_ratio: 0.45,
    }
}

/// fft — SPLASH-2: a handful of transpose epochs that execute once or
/// twice; prediction must rely on within-epoch (d = 0) extraction.
pub fn fft() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "fft",
        phases: vec![
            Phase::new(
                epochs(1, 6, |id, i| {
                    EpochSpec::new(
                        id,
                        WidelyShared {
                            producers: 4 + i as usize,
                        },
                    )
                    .traffic(64, 64)
                    .private(72)
                    .critical_sections(CsSpec {
                        lock_base: i % 8,
                        num_locks: 1,
                        sections: 1,
                        accesses: 4,
                    })
                }),
                2,
            ),
            Phase::new(
                epochs(7, 2, |id, i| {
                    EpochSpec::new(id, Stable { offset: 8 })
                        .traffic(64, 64)
                        .private(72)
                        .critical_sections(CsSpec {
                            lock_base: 6 + i,
                            num_locks: 1,
                            sections: 1,
                            accesses: 4,
                        })
                }),
                2,
            ),
        ],
        seed_salt: 0xff7,
        paper_comm_ratio: 0.45,
    }
}

/// radix — SPLASH-2 sort: few epochs, permutation writes dominated by
/// capacity misses (lowest communicating ratio of the suite).
pub fn radix() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "radix",
        phases: vec![Phase::new(
            epochs(1, 4, |id, i| {
                EpochSpec::new(
                    id,
                    Stable {
                        offset: 1 + i as usize * 2,
                    },
                )
                .traffic(10, 10)
                .private(110)
                .critical_sections(CsSpec {
                    lock_base: (i * 2) % 8,
                    num_locks: 2,
                    sections: 1,
                    accesses: 4,
                })
            }),
            9,
        )],
        seed_salt: 0x4ad1,
        paper_comm_ratio: 0.20,
    }
}

/// water-sp — SPLASH-2 (spatial variant): a single static epoch repeated
/// throughout, perfectly stable partners.
pub fn water_sp() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "water-sp",
        phases: vec![Phase::new(
            vec![EpochSpec::new(1, Stable { offset: 1 })
                .traffic(32, 32)
                .private(6)
                .critical_sections(CsSpec {
                    lock_base: 0,
                    num_locks: 17,
                    sections: 1,
                    accesses: 4,
                })],
            83,
        )],
        seed_salt: 0x3a70,
        paper_comm_ratio: 0.85,
    }
}

/// bodytrack — PARSEC: per-frame stages with stable-then-switching hot
/// sets (the paper's Figure 2 subject).
pub fn bodytrack() -> BenchmarkSpec {
    let mut phases = Vec::new();
    phases.push(Phase::new(
        epochs(1, 10, |id, i| {
            let pattern = match i % 3 {
                0 => Stable { offset: 5 },
                1 => StableSwitch {
                    first: 5,
                    second: 2,
                    switch_at: 1,
                },
                _ => Repetitive {
                    stride: 3,
                    period: 2,
                },
            };
            EpochSpec::new(id, pattern)
                .traffic(40, 40)
                .private(28)
                .noise(0.05)
        }),
        2,
    ));
    phases.push(Phase::new(
        epochs(11, 10, |id, i| {
            EpochSpec::new(
                id,
                Stable {
                    offset: 3 + i as usize % 3,
                },
            )
            .traffic(36, 36)
            .private(24)
            .critical_sections(CsSpec {
                lock_base: (i * 2) % 16,
                num_locks: 2,
                sections: 1,
                accesses: 6,
            })
        }),
        2,
    ));
    BenchmarkSpec {
        name: "bodytrack",
        phases,
        seed_salt: 0xb0d7,
        paper_comm_ratio: 0.60,
    }
}

/// fluidanimate — PARSEC: grid-partitioned fluid with neighbour exchange
/// and very fine-grain cell locking.
pub fn fluidanimate() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "fluidanimate",
        phases: vec![Phase::new(
            epochs(1, 20, |id, i| {
                EpochSpec::new(id, Neighbor)
                    .traffic(36, 36)
                    .private(18)
                    .critical_sections(CsSpec {
                        lock_base: i % 11,
                        num_locks: 2.min(11 - i % 11),
                        sections: 2,
                        accesses: 4,
                    })
            }),
            5,
        )],
        seed_salt: 0xf1d,
        paper_comm_ratio: 0.70,
    }
}

/// streamcluster — PARSEC: the most barrier-intensive PARSEC code; long
/// runs of strongly repetitive epochs with one global lock.
pub fn streamcluster() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "streamcluster",
        phases: vec![Phase::new(
            epochs(1, 24, |id, i| {
                let e = EpochSpec::new(
                    id,
                    Repetitive {
                        stride: 1 + i as usize % 3,
                        period: 2,
                    },
                )
                .traffic(52, 52)
                .private(8)
                // Shared kernel code across all sweep epochs.
                .pcs(0x5C00, 4);
                if i == 0 {
                    e.critical_sections(CsSpec {
                        lock_base: 0,
                        num_locks: 1,
                        sections: 1,
                        accesses: 4,
                    })
                } else {
                    e
                }
            }),
            10,
        )],
        seed_salt: 0x57c1,
        paper_comm_ratio: 0.90,
    }
}

/// vips — PARSEC image pipeline: moderate stable sharing between stage
/// neighbours.
pub fn vips() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "vips",
        phases: vec![Phase::new(
            epochs(1, 8, |id, i| {
                EpochSpec::new(
                    id,
                    Stable {
                        offset: 1 + i as usize % 2,
                    },
                )
                .traffic(28, 28)
                .private(40)
                .critical_sections(CsSpec {
                    lock_base: (i * 2) % 14,
                    num_locks: 2,
                    sections: 1,
                    accesses: 4,
                })
            }),
            3,
        )],
        seed_salt: 0x1b5,
        paper_comm_ratio: 0.50,
    }
}

/// facesim — PARSEC physics: three static epochs iterated many times with
/// stable partition neighbours.
pub fn facesim() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "facesim",
        phases: vec![Phase::new(
            epochs(1, 3, |id, i| {
                EpochSpec::new(
                    id,
                    Stable {
                        offset: 1 + i as usize * 4,
                    },
                )
                .traffic(40, 40)
                .private(28)
                .critical_sections(CsSpec {
                    lock_base: i % 2,
                    num_locks: 1,
                    sections: 1,
                    accesses: 4,
                })
            }),
            30,
        )],
        seed_salt: 0xface,
        paper_comm_ratio: 0.60,
    }
}

/// ferret — PARSEC pipeline: few dynamic epochs, random stage-to-stage
/// communication; d = 0 prediction dominates.
pub fn ferret() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "ferret",
        phases: vec![Phase::new(
            epochs(1, 6, |id, i| {
                EpochSpec::new(id, Random)
                    .traffic(36, 36)
                    .private(40)
                    .critical_sections(CsSpec {
                        lock_base: i % 4,
                        num_locks: 1,
                        sections: 1,
                        accesses: 6,
                    })
            }),
            4,
        )],
        seed_salt: 0xfe44,
        paper_comm_ratio: 0.50,
    }
}

/// dedup — PARSEC pipeline: hashed work distribution gives random
/// partners and contended queues.
pub fn dedup() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "dedup",
        phases: vec![Phase::new(
            epochs(1, 4, |id, i| {
                EpochSpec::new(id, Random)
                    .traffic(28, 28)
                    .private(44)
                    .noise(0.08)
                    .critical_sections(CsSpec {
                        lock_base: i % 3,
                        num_locks: 1,
                        sections: 2,
                        accesses: 6,
                    })
            }),
            5,
        )],
        seed_salt: 0xdedb,
        paper_comm_ratio: 0.45,
    }
}

/// x264 — PARSEC video encoder: few epochs, stable reference-frame
/// neighbours (the paper's best accuracy case).
pub fn x264() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "x264",
        phases: vec![Phase::new(
            epochs(1, 3, |id, i| {
                EpochSpec::new(
                    id,
                    Stable {
                        offset: 1 + i as usize,
                    },
                )
                .traffic(44, 44)
                .private(20)
                .critical_sections(CsSpec {
                    lock_base: i % 2,
                    num_locks: 1,
                    sections: 1,
                    accesses: 4,
                })
            }),
            18,
        )],
        seed_salt: 0x264,
        paper_comm_ratio: 0.70,
    }
}

/// Every benchmark of the study, in the paper's Figure 1 order.
pub fn all() -> Vec<BenchmarkSpec> {
    vec![
        fmm(),
        lu(),
        ocean(),
        radiosity(),
        raytrace(),
        water_ns(),
        cholesky(),
        fft(),
        radix(),
        water_sp(),
        bodytrack(),
        fluidanimate(),
        streamcluster(),
        vips(),
        facesim(),
        ferret(),
        dedup(),
        x264(),
    ]
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
    all().into_iter().find(|s| s.name == name)
}

/// Scales a benchmark's input size by multiplying every phase's iteration
/// count (more dynamic instances of every epoch — larger program inputs
/// mean more outer-loop iterations in the modelled codes).
///
/// The paper reports (without figures) that input-size sensitivity "shows
/// expected observations and trends"; `ext_input_size` regenerates that
/// check.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn scaled(mut spec: BenchmarkSpec, factor: u32) -> BenchmarkSpec {
    assert!(factor > 0, "scale factor must be positive");
    for phase in &mut spec.phases {
        phase.iterations *= factor;
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_18_benchmarks_with_unique_names() {
        let suite = all();
        assert_eq!(suite.len(), 18);
        let mut names: Vec<_> = suite.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn static_epoch_counts_match_table_1() {
        // (benchmark, static sync-epochs) from the paper's Table 1.
        let expect = [
            ("fmm", 20),
            ("lu", 5),
            ("ocean", 20),
            ("radiosity", 12),
            ("raytrace", 10),
            ("water-ns", 8),
            ("cholesky", 27),
            ("fft", 8),
            ("radix", 4),
            ("water-sp", 1),
            ("bodytrack", 20),
            ("fluidanimate", 20),
            ("streamcluster", 24),
            ("vips", 8),
            ("facesim", 3),
            ("ferret", 6),
            ("dedup", 4),
            ("x264", 3),
        ];
        for (name, statics) in expect {
            let spec = by_name(name).unwrap();
            assert_eq!(spec.static_epochs(), statics, "{name}");
        }
    }

    #[test]
    fn static_critical_section_counts_match_table_1() {
        let expect = [
            ("fmm", 30),
            ("lu", 7),
            ("ocean", 28),
            ("radiosity", 34),
            ("raytrace", 25),
            ("water-ns", 20),
            ("cholesky", 28),
            ("fft", 8),
            ("radix", 8),
            ("water-sp", 17),
            ("bodytrack", 16),
            ("fluidanimate", 11),
            ("streamcluster", 1),
            ("vips", 14),
            ("facesim", 2),
            ("ferret", 4),
            ("dedup", 3),
            ("x264", 2),
        ];
        for (name, cs) in expect {
            let spec = by_name(name).unwrap();
            assert_eq!(spec.static_critical_sections(), cs, "{name}");
        }
    }

    #[test]
    fn every_spec_generates_for_16_cores() {
        for spec in all() {
            let w = spec.generate(16, 7);
            assert_eq!(w.num_cores(), 16, "{}", spec.name);
            assert!(w.total_ops() > 1000, "{} too small", spec.name);
            assert!(w.total_ops() < 5_000_000, "{} too large", spec.name);
        }
    }

    #[test]
    fn dynamic_epoch_scaling_is_bounded() {
        for spec in all() {
            let d = spec.dynamic_epochs_per_core();
            assert!((8..=250).contains(&d), "{}: {d}", spec.name);
        }
    }

    #[test]
    fn comm_ratio_metadata_present() {
        for spec in all() {
            assert!(spec.paper_comm_ratio > 0.0 && spec.paper_comm_ratio < 1.0);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("ocean").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn scaling_multiplies_dynamic_epochs_only() {
        let base = x264();
        let big = scaled(x264(), 3);
        assert_eq!(big.static_epochs(), base.static_epochs());
        assert_eq!(
            big.static_critical_sections(),
            base.static_critical_sections()
        );
        assert_eq!(
            big.dynamic_epochs_per_core(),
            3 * base.dynamic_epochs_per_core()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        scaled(x264(), 0);
    }
}
