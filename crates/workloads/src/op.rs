//! The operations a synthetic thread presents to the memory system.

use spcp_mem::Addr;
use spcp_sync::SyncPoint;
use std::fmt;

/// One operation in a thread's instruction stream, as seen by the memory
/// system and the synchronization runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// A load from `addr` issued by the static instruction at `pc`.
    Load {
        /// Referenced address.
        addr: Addr,
        /// Program counter of the load.
        pc: u32,
    },
    /// A store to `addr` issued by the static instruction at `pc`.
    Store {
        /// Referenced address.
        addr: Addr,
        /// Program counter of the store.
        pc: u32,
    },
    /// A synchronization routine invocation.
    Sync(SyncPoint),
    /// Non-memory work consuming the given number of cycles.
    Compute(u32),
}

impl Op {
    /// The referenced address, for memory operations.
    pub fn addr(&self) -> Option<Addr> {
        match self {
            Op::Load { addr, .. } | Op::Store { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// Whether this is a load or store.
    pub fn is_memory(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Load { addr, pc } => write!(f, "LD {addr} @0x{pc:x}"),
            Op::Store { addr, pc } => write!(f, "ST {addr} @0x{pc:x}"),
            Op::Sync(p) => write!(f, "SYNC {p}"),
            Op::Compute(c) => write!(f, "COMPUTE {c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcp_sync::{StaticSyncId, SyncPoint};

    #[test]
    fn addr_extraction() {
        let l = Op::Load {
            addr: Addr::new(64),
            pc: 4,
        };
        assert_eq!(l.addr(), Some(Addr::new(64)));
        assert!(l.is_memory());
        let s = Op::Sync(SyncPoint::barrier(StaticSyncId::new(1)));
        assert_eq!(s.addr(), None);
        assert!(!s.is_memory());
        assert!(!Op::Compute(5).is_memory());
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(
            Op::Store {
                addr: Addr::new(0),
                pc: 1
            }
            .to_string(),
            "ST 0x0 @0x1"
        );
        assert_eq!(Op::Compute(3).to_string(), "COMPUTE 3");
    }
}
