//! Turning a [`BenchmarkSpec`] into concrete per-core op streams.

use crate::layout::{lock_block, private_block, shared_block, LOCK_BLOCKS, SHARED_BLOCKS_PER_CORE};
use crate::op::Op;
use crate::spec::BenchmarkSpec;
use spcp_sim::{CoreId, DetRng};
use spcp_sync::{LockId, StaticSyncId, SyncPoint};
use std::collections::HashMap;

/// A fully generated workload: one op stream per core.
///
/// Generation is deterministic in `(spec, num_cores, seed)`; the simulator
/// replays the streams against the coherence protocol, so all communication
/// emerges from genuine reads-after-remote-writes.
#[derive(Debug, Clone)]
pub struct Workload {
    name: &'static str,
    threads: Vec<Vec<Op>>,
    paper_comm_ratio: f64,
}

impl Workload {
    /// Builds a workload directly from hand-written per-core op streams.
    ///
    /// Useful for protocol unit tests and custom microbenchmarks that need
    /// precise control over individual accesses.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty.
    pub fn from_threads(name: &'static str, threads: Vec<Vec<Op>>) -> Self {
        assert!(!threads.is_empty(), "a workload needs at least one thread");
        Workload {
            name,
            threads,
            paper_comm_ratio: 0.0,
        }
    }

    /// Benchmark name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Per-core op streams.
    pub fn threads(&self) -> &[Vec<Op>] {
        &self.threads
    }

    /// Number of cores (threads).
    pub fn num_cores(&self) -> usize {
        self.threads.len()
    }

    /// Total operations across all cores.
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(|t| t.len()).sum()
    }

    /// The paper's Figure 1 reference communicating-miss ratio.
    pub fn paper_comm_ratio(&self) -> f64 {
        self.paper_comm_ratio
    }
}

impl BenchmarkSpec {
    /// Generates the op streams for a `num_cores` machine.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or an epoch requests more shared
    /// blocks than a stripe holds.
    pub fn generate(&self, num_cores: usize, seed: u64) -> Workload {
        assert!(num_cores > 0);
        let mut master = DetRng::seeded(seed ^ self.seed_salt.wrapping_mul(0x517c_c1b7_2722_0a95));
        let mut threads: Vec<Vec<Op>> = (0..num_cores)
            .map(|_| Vec::with_capacity(self.ops_per_core() as usize + 16))
            .collect();
        let mut rngs: Vec<DetRng> = (0..num_cores).map(|c| master.fork(c as u64)).collect();

        // Per-(core, epoch) dynamic instance counters and private-stream
        // cursors.
        let mut instances: Vec<HashMap<u32, u64>> = vec![HashMap::new(); num_cores];
        let mut private_seq: Vec<u64> = vec![0; num_cores];

        for phase in &self.phases {
            for _iter in 0..phase.iterations {
                for epoch in &phase.epochs {
                    for core_idx in 0..num_cores {
                        let core = CoreId::new(core_idx);
                        let rng = &mut rngs[core_idx];
                        let ops = &mut threads[core_idx];

                        // Epoch-begin barrier (also the previous epoch's
                        // end).
                        ops.push(Op::Sync(SyncPoint::barrier(StaticSyncId::new(
                            epoch.static_id,
                        ))));

                        let instance = {
                            let e = instances[core_idx].entry(epoch.static_id).or_insert(0);
                            let v = *e;
                            *e += 1;
                            v
                        };

                        let noisy = rng.chance(epoch.noise_prob);
                        if noisy {
                            // A couple of private touches only (§3.4).
                            for _ in 0..2 {
                                let seq = private_seq[core_idx];
                                private_seq[core_idx] += 1;
                                ops.push(Op::Load {
                                    addr: private_block(core, seq),
                                    pc: epoch.pc_base + 0x200,
                                });
                            }
                            continue;
                        }

                        // Consumer side: read the producers' stripes;
                        // producer side: write this core's own stripe;
                        // private work: stream cold blocks. Real code
                        // interleaves all three, so shuffle them together
                        // (block sets are disjoint, so order is free).
                        let producers = epoch.pattern.producers(core, instance, num_cores, rng);
                        assert!(
                            epoch.shared_reads as u64 <= SHARED_BLOCKS_PER_CORE,
                            "epoch reads more blocks than a stripe holds"
                        );
                        assert!(
                            epoch.shared_writes as u64 <= SHARED_BLOCKS_PER_CORE,
                            "epoch writes more blocks than a stripe holds"
                        );
                        let mut body = Vec::with_capacity(
                            (epoch.shared_reads + epoch.shared_writes + epoch.private_accesses)
                                as usize,
                        );
                        if !producers.is_empty() {
                            for i in 0..epoch.shared_reads {
                                let producer = producers[i as usize % producers.len()];
                                body.push(Op::Load {
                                    addr: shared_block(producer, i as u64),
                                    pc: epoch.pc_base + 4 * (i % epoch.shared_pcs),
                                });
                            }
                        }
                        for i in 0..epoch.shared_writes {
                            body.push(Op::Store {
                                addr: shared_block(core, i as u64),
                                pc: epoch.pc_base + 0x100 + 4 * (i % epoch.shared_pcs),
                            });
                        }
                        // Shared accesses stay bursty (a consume phase then
                        // a produce phase, as in real data-parallel loops);
                        // private work is sprinkled throughout the epoch.
                        for _ in 0..epoch.private_accesses {
                            let seq = private_seq[core_idx];
                            private_seq[core_idx] += 1;
                            let at = rng.index(body.len() + 1);
                            body.insert(
                                at,
                                Op::Load {
                                    addr: private_block(core, seq),
                                    pc: epoch.pc_base + 0x200,
                                },
                            );
                        }
                        if epoch.work_per_access > 0 {
                            for op in body {
                                ops.push(Op::Compute(epoch.work_per_access));
                                ops.push(op);
                            }
                        } else {
                            ops.extend(body);
                        }

                        // Critical sections on migratory lock data.
                        if let Some(cs) = epoch.cs {
                            for _ in 0..cs.sections {
                                let lock_id =
                                    cs.lock_base + rng.index(cs.num_locks as usize) as u32;
                                let lock = LockId::new(lock_id);
                                // Threads reach the lock after varying
                                // amounts of local work, so acquisition
                                // order is a timing race (the paper's
                                // "random" critical-section pattern).
                                ops.push(Op::Compute(rng.range(0, 120) as u32));
                                ops.push(Op::Sync(SyncPoint::lock(lock)));
                                for a in 0..cs.accesses {
                                    let addr = lock_block(lock_id, (a as u64) % LOCK_BLOCKS);
                                    let pc = epoch.pc_base + 0x300 + 4 * (a % 2);
                                    // Read-modify-write the protected data so
                                    // each holder both consumes the previous
                                    // holder's writes and produces for the
                                    // next.
                                    if a % 2 == 0 {
                                        ops.push(Op::Load { addr, pc });
                                    } else {
                                        ops.push(Op::Store { addr, pc });
                                    }
                                }
                                ops.push(Op::Sync(SyncPoint::unlock(lock)));
                            }
                        }
                    }
                }
            }
        }

        Workload {
            name: self.name,
            threads,
            paper_comm_ratio: self.paper_comm_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::SharingPattern;
    use crate::spec::{CsSpec, EpochSpec, Phase};
    use spcp_sync::SyncKind;

    fn toy_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "toy",
            phases: vec![Phase::new(
                vec![
                    EpochSpec::new(1, SharingPattern::Stable { offset: 1 }).traffic(8, 8),
                    EpochSpec::new(2, SharingPattern::Random)
                        .traffic(4, 4)
                        .critical_sections(CsSpec {
                            lock_base: 0,
                            num_locks: 2,
                            sections: 1,
                            accesses: 4,
                        }),
                ],
                5,
            )],
            seed_salt: 3,
            paper_comm_ratio: 0.5,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = toy_spec();
        let a = spec.generate(16, 42);
        let b = spec.generate(16, 42);
        assert_eq!(a.threads(), b.threads());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = toy_spec();
        let a = spec.generate(16, 1);
        let b = spec.generate(16, 2);
        assert_ne!(a.threads(), b.threads());
    }

    #[test]
    fn every_core_gets_a_stream_with_barriers() {
        let w = toy_spec().generate(16, 0);
        assert_eq!(w.num_cores(), 16);
        for t in w.threads() {
            let barriers = t
                .iter()
                .filter(|o| matches!(o, Op::Sync(p) if p.kind == SyncKind::Barrier))
                .count();
            // 2 epochs * 5 iterations
            assert_eq!(barriers, 10);
        }
    }

    #[test]
    fn barrier_sequences_are_identical_across_cores() {
        let w = toy_spec().generate(8, 0);
        let seq = |t: &[Op]| -> Vec<u32> {
            t.iter()
                .filter_map(|o| match o {
                    Op::Sync(p) if p.kind == SyncKind::Barrier => Some(p.static_id.raw()),
                    _ => None,
                })
                .collect()
        };
        let first = seq(&w.threads()[0]);
        for t in w.threads() {
            assert_eq!(seq(t), first);
        }
    }

    #[test]
    fn locks_are_balanced_pairs() {
        let w = toy_spec().generate(16, 0);
        for t in w.threads() {
            let locks = t
                .iter()
                .filter(|o| matches!(o, Op::Sync(p) if p.kind == SyncKind::Lock))
                .count();
            let unlocks = t
                .iter()
                .filter(|o| matches!(o, Op::Sync(p) if p.kind == SyncKind::Unlock))
                .count();
            assert_eq!(locks, unlocks);
            assert_eq!(locks, 5); // 1 section * 5 iterations
        }
    }

    #[test]
    fn consumers_read_producer_stripe() {
        // Stable offset 1: core 0 reads core 1's stripe.
        let spec = BenchmarkSpec {
            name: "stable",
            phases: vec![Phase::new(
                vec![EpochSpec::new(1, SharingPattern::Stable { offset: 1 }).traffic(4, 4)],
                1,
            )],
            seed_salt: 0,
            paper_comm_ratio: 0.5,
        };
        let w = spec.generate(4, 0);
        let reads: Vec<_> = w.threads()[0]
            .iter()
            .filter_map(|o| match o {
                Op::Load { addr, .. } => crate::layout::owner_of_shared(*addr),
                _ => None,
            })
            .collect();
        assert!(!reads.is_empty());
        assert!(reads.iter().all(|&p| p == CoreId::new(1)));
    }

    #[test]
    fn writes_stay_in_own_stripe() {
        let w = toy_spec().generate(8, 0);
        for (c, t) in w.threads().iter().enumerate() {
            for o in t {
                if let Op::Store { addr, .. } = o {
                    if let Some(owner) = crate::layout::owner_of_shared(*addr) {
                        assert_eq!(owner, CoreId::new(c));
                    }
                }
            }
        }
    }

    #[test]
    fn noisy_epochs_shrink_streams() {
        let mut spec = toy_spec();
        spec.phases[0].epochs[0] = spec.phases[0].epochs[0].clone().noise(1.0);
        let noisy = spec.generate(16, 0);
        let normal = toy_spec().generate(16, 0);
        assert!(noisy.total_ops() < normal.total_ops());
    }

    #[test]
    fn total_ops_matches_estimate_roughly() {
        let spec = toy_spec();
        let w = spec.generate(16, 0);
        let est = spec.ops_per_core() * 16;
        let actual = w.total_ops() as u64;
        // The estimate ignores noise; toy spec has none, so it is exact.
        assert_eq!(actual, est);
    }
}
