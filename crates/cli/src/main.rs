//! `spcp` — command-line driver for the SP-prediction reproduction.
//!
//! ```text
//! spcp list
//! spcp run --bench ocean --protocol sp [--seed 7] [--filter] [--json]
//! spcp compare --bench x264 [--seed 7]
//! spcp characterize --bench streamcluster [--core 0]
//! ```

mod args;
mod report;

use args::Args;
use spcp_harness::{golden, RunMatrix, StreamConfig, SweepEngine, SweepSummary};
use spcp_system::{
    CmpSystem, CoherenceVariant, MachineConfig, PredictorKind, ProtocolKind, RunConfig, RunStats,
};
use spcp_verify::{analyze_races, ModelChecker, ModelConfig};
use spcp_workloads::suite;

const USAGE: &str = "spcp — synchronization-point coherence prediction simulator

USAGE:
  spcp list                                     list benchmark models
  spcp run --bench <name> --protocol <p>        simulate one run
      [--seed <n>] [--filter] [--json]
      (--spec-file <path> runs a text workload spec instead of --bench)
      protocols: directory broadcast sp addr inst uni multicast
  spcp compare --bench <name> [--seed <n>]      all protocols side by side
      [--jobs <n>] [--out <dir>] [--resume] [--flush-every <n>]
  spcp sweep [--benches a,b,..] [--protocols p,q,..]
      [--seeds 7,11,..] [--jobs <n>]            parallel run matrix
      [--out <dir>]                             stream results to spool shards
      [--resume]                                continue an interrupted sweep,
                                                re-running only missing cells
      [--flush-every <n>]                       records between spool fsyncs
                                                (default 32)
      [--golden <file>] [--update-golden]       verify/write a golden snapshot
      [--timing]                                per-run wall-clock + ops/s
                                                report on stderr
                                                (in-memory path only)
  spcp characterize --bench <name> [--core <n>] sync-epoch hot sets
  spcp trace --bench <name> --out <file>        collect a miss/sync trace
  spcp analyze --trace <file> [--cores <n>]     characterize a trace file
  spcp matrix --bench <name> [--protocol <p>]   communication-matrix heatmap
  spcp check [--bench <name>] [--protocol <p>]  run with coherence audits on
      [--seed <n>]                              (all benchmarks when no --bench)
  spcp check --model [--cores 2..4] [--lines 1..2]
      [--mesi] [--no-predictor-race]            exhaustive protocol model check
  spcp check --trace <file> [--cores <n>]       sync-epoch race analysis
      exit status is nonzero on any violation / race
";

fn protocol_from(name: &str) -> Result<ProtocolKind, String> {
    Ok(match name {
        "directory" | "dir" => ProtocolKind::Directory,
        "broadcast" | "bc" => ProtocolKind::Broadcast,
        "sp" => ProtocolKind::Predicted(PredictorKind::sp_default()),
        "addr" => ProtocolKind::Predicted(PredictorKind::Addr {
            entries: None,
            macroblock_bytes: 256,
        }),
        "inst" => ProtocolKind::Predicted(PredictorKind::Inst { entries: None }),
        "uni" => ProtocolKind::Predicted(PredictorKind::Uni),
        "multicast" | "mc" => ProtocolKind::MulticastSnoop(PredictorKind::sp_default()),
        other => return Err(format!("unknown protocol '{other}'")),
    })
}

fn cmd_list() -> Result<(), String> {
    println!(
        "{:<14} {:>9} {:>9} {:>11} {:>11}",
        "benchmark", "statEp", "statCS", "dynEp/core", "~ops/core"
    );
    for s in suite::all() {
        println!(
            "{:<14} {:>9} {:>9} {:>11} {:>11}",
            s.name,
            s.static_epochs(),
            s.static_critical_sections(),
            s.dynamic_epochs_per_core(),
            s.ops_per_core(),
        );
    }
    Ok(())
}

fn load_spec(args: &Args) -> Result<spcp_workloads::BenchmarkSpec, String> {
    if let Some(path) = args.opt("spec-file") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        return spcp_workloads::textspec::parse_spec(&text).map_err(|e| e.to_string());
    }
    let bench = args
        .opt("bench")
        .ok_or("run requires --bench <name> or --spec-file <path>")?;
    suite::by_name(bench).ok_or_else(|| format!("unknown benchmark '{bench}'"))
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let spec = load_spec(args)?;
    let protocol = protocol_from(args.opt("protocol").unwrap_or("sp"))?;
    let seed: u64 = args.opt_parse("seed", 7)?;
    let workload = spec.generate(16, seed);
    let mut cfg = RunConfig::new(MachineConfig::paper_16core(), protocol);
    if args.flag("filter") {
        cfg = cfg.with_snoop_filter();
    }
    let stats = CmpSystem::run_workload(&workload, &cfg);
    if args.flag("json") {
        println!("{}", report::json_summary(&stats));
    } else {
        print!("{}", report::text_summary(&stats));
    }
    Ok(())
}

/// `--jobs <n>` with the machine's parallelism as the default.
fn jobs_arg(args: &Args) -> Result<usize, String> {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    Ok(args.opt_parse("jobs", default)?.max(1))
}

/// `--out/--resume/--flush-every`: the streamed-spool options shared by
/// `sweep` and `compare`. `None` selects the in-memory path.
fn stream_config_from(args: &Args) -> Result<Option<StreamConfig>, String> {
    let Some(dir) = args.opt("out") else {
        if args.flag("resume") {
            return Err("--resume requires --out <dir>".into());
        }
        if args.opt("flush-every").is_some() {
            return Err("--flush-every requires --out <dir>".into());
        }
        return Ok(None);
    };
    let flush: usize = args.opt_parse("flush-every", spcp_harness::stream::DEFAULT_FLUSH_EVERY)?;
    if flush == 0 {
        return Err("--flush-every must be at least 1".into());
    }
    Ok(Some(
        StreamConfig::new(dir)
            .flush_every(flush)
            .resume(args.flag("resume")),
    ))
}

const ALL_PROTOCOLS: [&str; 7] = [
    "directory",
    "broadcast",
    "sp",
    "addr",
    "inst",
    "uni",
    "multicast",
];

fn cmd_compare(args: &Args) -> Result<(), String> {
    let bench = args.opt("bench").ok_or("compare requires --bench <name>")?;
    let spec = suite::by_name(bench).ok_or_else(|| format!("unknown benchmark '{bench}'"))?;
    let seed: u64 = args.opt_parse("seed", 7)?;
    let mut matrix = RunMatrix::new().bench(spec).seeds(&[seed]);
    for name in ALL_PROTOCOLS {
        matrix = matrix.protocol(name, protocol_from(name)?);
    }
    let engine = SweepEngine::new(jobs_arg(args)?);
    let print_header = || {
        println!(
            "{:<12} {:>10} {:>9} {:>12} {:>9} {:>11}",
            "protocol", "exec", "misslat", "byte-hops", "accuracy", "storage(KB)"
        )
    };
    let print_row = |label: &str, s: &RunStats| {
        println!(
            "{:<12} {:>10} {:>9.1} {:>12} {:>8.1}% {:>11.2}",
            label,
            s.exec_cycles,
            s.miss_latency.mean(),
            s.noc.byte_hops,
            s.accuracy() * 100.0,
            s.predictor_storage_bits as f64 / 8.0 / 1024.0,
        )
    };
    if let Some(cfg) = stream_config_from(args)? {
        let streamed = engine
            .run_streamed(&matrix, &cfg)
            .map_err(|e| e.to_string())?;
        eprintln!("[harness] {}", streamed.status_line());
        print_header();
        streamed
            .for_each_run(|spec, rec| print_row(&spec.protocol_label, &rec.stats))
            .map_err(|e| e.to_string())?;
    } else {
        let result = engine.run(&matrix);
        eprintln!("[harness] {}", result.timing_line());
        print_header();
        for r in &result.runs {
            print_row(&r.spec.protocol_label, &r.stats);
        }
    }
    Ok(())
}

/// Splits a comma-separated option; `None` when absent.
fn list_opt<'a>(args: &'a Args, key: &str) -> Option<Vec<&'a str>> {
    args.opt(key).map(|v| {
        v.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect()
    })
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let mut matrix = RunMatrix::new();
    match list_opt(args, "benches") {
        Some(names) => {
            for name in names {
                let spec =
                    suite::by_name(name).ok_or_else(|| format!("unknown benchmark '{name}'"))?;
                matrix = matrix.bench(spec);
            }
        }
        None => matrix = matrix.benches(suite::all()),
    }
    for name in list_opt(args, "protocols").unwrap_or_else(|| vec!["directory", "sp"]) {
        matrix = matrix.protocol(name, protocol_from(name)?);
    }
    if let Some(seeds) = list_opt(args, "seeds") {
        let parsed: Vec<u64> = seeds
            .iter()
            .map(|s| s.parse().map_err(|_| format!("invalid seed '{s}'")))
            .collect::<Result<_, String>>()?;
        matrix = matrix.seeds(&parsed);
    }
    if args.flag("filter") {
        matrix = matrix.with_snoop_filter();
    }
    if matrix.is_empty() {
        return Err("sweep matrix is empty".into());
    }

    if let Some(cfg) = stream_config_from(args)? {
        if args.flag("timing") {
            return Err("--timing applies to the in-memory path; drop --out".into());
        }
        let streamed = SweepEngine::new(jobs_arg(args)?)
            .run_streamed(&matrix, &cfg)
            .map_err(|e| e.to_string())?;
        eprintln!("[harness] {}", streamed.status_line());
        if let Some(path) = args.opt("golden") {
            let rendered = streamed.render_golden().map_err(|e| e.to_string())?;
            return golden_out(args, path, &rendered);
        }
        // Bounded-memory reporting: rows and the summary come from one
        // replay of the spool, never a buffered run list. stdout is
        // byte-identical to the in-memory path below.
        sweep_rows_header();
        let mut summary = SweepSummary::new();
        streamed
            .for_each_run(|spec, rec| {
                sweep_row(&spec.id(), &rec.stats);
                summary.observe(&rec.stats);
            })
            .map_err(|e| e.to_string())?;
        sweep_footer(&summary);
        return Ok(());
    }

    let result = SweepEngine::new(jobs_arg(args)?).run(&matrix);
    // Timing goes to stderr only: stdout (and golden files) must stay
    // bit-identical across hosts and worker counts.
    if args.flag("timing") {
        eprint!("[harness] per-run timing\n{}", result.timing_report());
    } else {
        eprintln!("[harness] {}", result.timing_line());
    }

    if let Some(path) = args.opt("golden") {
        return golden_out(args, path, &golden::render(&result));
    }

    sweep_rows_header();
    for r in &result.runs {
        sweep_row(&r.spec.id(), &r.stats);
    }
    sweep_footer(&result.summary());
    Ok(())
}

fn sweep_rows_header() {
    println!(
        "{:<30} {:>10} {:>9} {:>12} {:>9}",
        "run", "exec", "misslat", "byte-hops", "accuracy"
    );
}

fn sweep_row(id: &str, s: &RunStats) {
    println!(
        "{:<30} {:>10} {:>9.1} {:>12} {:>8.1}%",
        id,
        s.exec_cycles,
        s.miss_latency.mean(),
        s.noc.byte_hops,
        s.accuracy() * 100.0,
    );
}

fn sweep_footer(summary: &SweepSummary) {
    println!(
        "---\n{} runs | {} ops | mean miss latency {:.1} | accuracy {:.1}%",
        summary.runs,
        summary.total_ops,
        summary.mean_miss_latency(),
        summary.accuracy() * 100.0,
    );
}

/// Writes or verifies a golden snapshot at `path` (shared by the streamed
/// and in-memory sweep paths).
fn golden_out(args: &Args, path: &str, rendered: &str) -> Result<(), String> {
    let path = std::path::Path::new(path);
    if args.flag("update-golden") {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
            }
        }
        std::fs::write(path, rendered).map_err(|e| e.to_string())?;
        println!("wrote golden snapshot {}", path.display());
        return Ok(());
    }
    match golden::check_or_update(path, rendered) {
        Ok(true) => println!("wrote golden snapshot {}", path.display()),
        Ok(false) => println!("golden snapshot {} matches", path.display()),
        Err(e) => return Err(e.to_string()),
    }
    Ok(())
}

fn cmd_characterize(args: &Args) -> Result<(), String> {
    let bench = args
        .opt("bench")
        .ok_or("characterize requires --bench <name>")?;
    let spec = suite::by_name(bench).ok_or_else(|| format!("unknown benchmark '{bench}'"))?;
    let seed: u64 = args.opt_parse("seed", 7)?;
    let core: usize = args.opt_parse("core", 0)?;
    if core >= 16 {
        return Err("--core must be below 16".into());
    }
    let workload = spec.generate(16, seed);
    let stats = CmpSystem::run_workload(
        &workload,
        &RunConfig::new(MachineConfig::paper_16core(), ProtocolKind::Directory).recording(),
    );
    println!(
        "{bench}, core {core}: {} epoch instances",
        stats.epoch_records[core].len()
    );
    println!("{:<26} {:>8} {:>5}  hot set", "epoch", "volume", "size");
    for r in stats.epoch_records[core].iter().take(50) {
        let hot = r.hot_set(0.10);
        let bits: String = (0..16)
            .map(|i| {
                if hot.contains(spcp_sim::CoreId::new(i)) {
                    'X'
                } else {
                    '.'
                }
            })
            .collect();
        println!(
            "{:<26} {:>8} {:>5}  {}",
            format!("({}, {})", r.id, r.instance),
            r.total_volume(),
            hot.len(),
            bits
        );
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let bench = args.opt("bench").ok_or("trace requires --bench <name>")?;
    let out = args.opt("out").ok_or("trace requires --out <file>")?;
    let spec = suite::by_name(bench).ok_or_else(|| format!("unknown benchmark '{bench}'"))?;
    let seed: u64 = args.opt_parse("seed", 7)?;
    let workload = spec.generate(16, seed);
    let stats = CmpSystem::run_workload(
        &workload,
        &RunConfig::new(MachineConfig::paper_16core(), ProtocolKind::Directory).tracing(),
    );
    let file = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    spcp_trace::write_trace(&mut w, &stats.trace).map_err(|e| format!("write failed: {e}"))?;
    println!(
        "wrote {} events ({} misses) for {bench} to {out}",
        stats.trace.len(),
        stats.l2_misses
    );
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let path = args.opt("trace").ok_or("analyze requires --trace <file>")?;
    let cores: usize = args.opt_parse("cores", 16)?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let events =
        spcp_trace::read_trace(std::io::BufReader::new(file)).map_err(|e| format!("{e}"))?;
    let a = spcp_trace::TraceAnalyzer::from_events(cores, &events);
    println!("events               {}", events.len());
    println!("L2 misses            {}", a.total_misses());
    println!(
        "communicating        {} ({:.1}%)",
        a.comm_misses(),
        a.comm_ratio() * 100.0
    );
    println!("static epochs/core   {:.1}", a.static_epochs_per_core());
    println!("dynamic epochs/core  {:.1}", a.dynamic_epochs_per_core());
    let dist = a.hot_set_size_distribution(0.10);
    let total: u64 = dist.iter().sum();
    if total > 0 {
        println!(
            "hot-set sizes        1:{:.0}% 2:{:.0}% 3:{:.0}% 4:{:.0}% >=5:{:.0}%",
            dist[0] as f64 / total as f64 * 100.0,
            dist[1] as f64 / total as f64 * 100.0,
            dist[2] as f64 / total as f64 * 100.0,
            dist[3] as f64 / total as f64 * 100.0,
            dist[4] as f64 / total as f64 * 100.0,
        );
    }
    Ok(())
}

fn cmd_matrix(args: &Args) -> Result<(), String> {
    let bench = args.opt("bench").ok_or("matrix requires --bench <name>")?;
    let spec = suite::by_name(bench).ok_or_else(|| format!("unknown benchmark '{bench}'"))?;
    let protocol = protocol_from(args.opt("protocol").unwrap_or("directory"))?;
    let seed: u64 = args.opt_parse("seed", 7)?;
    let workload = spec.generate(16, seed);
    let stats = CmpSystem::run_workload(
        &workload,
        &RunConfig::new(MachineConfig::paper_16core(), protocol),
    );
    let max = stats.comm_matrix.max().max(1);
    // Log-ish shading so sparse rows stay visible.
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    println!("{bench}: communication volume, source rows x target columns");
    println!(
        "      {}",
        (0..16).map(|i| format!("{i:>3}")).collect::<String>()
    );
    for (src, row) in stats.comm_matrix.rows().enumerate() {
        print!("  {src:>2} |");
        for &v in row {
            let shade = if v == 0 {
                shades[0]
            } else {
                let idx = 1
                    + ((v as f64).ln_1p() / (max as f64).ln_1p() * (shades.len() - 2) as f64)
                        .round() as usize;
                shades[idx.min(shades.len() - 1)]
            };
            print!("  {shade}");
        }
        println!(" | {}", row.iter().sum::<u64>());
    }
    println!("(max cell = {max} communication events)");
    Ok(())
}

/// `spcp check --model`: exhaustive state enumeration of the protocol
/// transition tables on a small configuration.
fn cmd_check_model(args: &Args) -> Result<(), String> {
    let cores: usize = args.opt_parse("cores", 2)?;
    let lines: usize = args.opt_parse("lines", 1)?;
    if !(2..=4).contains(&cores) {
        return Err("--cores must be 2..=4 (exhaustive enumeration)".into());
    }
    if !(1..=2).contains(&lines) {
        return Err("--lines must be 1..=2 (exhaustive enumeration)".into());
    }
    let cfg = ModelConfig {
        cores,
        lines,
        variant: if args.flag("mesi") {
            CoherenceVariant::Mesi
        } else {
            CoherenceVariant::Mesif
        },
        predictor_race: !args.flag("no-predictor-race"),
    };
    let label = format!(
        "{} cores x {} lines, {:?}{}",
        cfg.cores,
        cfg.lines,
        cfg.variant,
        if cfg.predictor_race {
            ", predictor-race audit"
        } else {
            ""
        }
    );
    match ModelChecker::new(cfg).check() {
        Ok(stats) => {
            println!(
                "model check ok: {label}; {} states, {} transitions, 0 violations",
                stats.states, stats.transitions
            );
            Ok(())
        }
        Err(cex) => Err(format!("model check FAILED: {label}\n{cex}")),
    }
}

/// `spcp check --trace <file>`: happens-before race analysis of a recorded
/// trace.
fn cmd_check_trace(args: &Args, path: &str) -> Result<(), String> {
    let cores: usize = args.opt_parse("cores", 16)?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let events =
        spcp_trace::read_trace(std::io::BufReader::new(file)).map_err(|e| format!("{e}"))?;
    let report = analyze_races(cores, &events);
    println!("{path}: {}", report.summary());
    if report.is_clean() {
        return Ok(());
    }
    let mut msg = format!("{} unordered communication pair(s):", report.races.len());
    for f in report.races.iter().take(20) {
        msg.push_str(&format!("\n  {f}"));
    }
    if report.races.len() > 20 {
        msg.push_str(&format!("\n  ... and {} more", report.races.len() - 20));
    }
    Err(msg)
}

/// `spcp check`: one benchmark (or the whole suite) under the runtime
/// coherence audit layer; any violation aborts with a nonzero exit.
fn cmd_check(args: &Args) -> Result<(), String> {
    if args.flag("model") {
        return cmd_check_model(args);
    }
    if let Some(path) = args.opt("trace") {
        return cmd_check_trace(args, path);
    }
    if !spcp_system::invariants_compiled() {
        return Err(
            "this binary was built without the runtime invariant layer; \
             rebuild with `cargo build --features invariants` \
             (debug builds always include it)"
                .into(),
        );
    }
    let protocol = protocol_from(args.opt("protocol").unwrap_or("sp"))?;
    let seed: u64 = args.opt_parse("seed", 7)?;
    let specs = match args.opt("bench") {
        Some(_) => vec![load_spec(args)?],
        None if args.opt("spec-file").is_some() => vec![load_spec(args)?],
        None => suite::all(),
    };
    let mut transactions = 0u64;
    for spec in &specs {
        let workload = spec.generate(16, seed);
        let cfg = RunConfig::new(MachineConfig::paper_16core(), protocol.clone());
        let stats = CmpSystem::run_workload_checked(&workload, &cfg)
            .map_err(|v| format!("{}: {v}", spec.name))?;
        println!(
            "{:<14} ok  {:>8} misses audited, {:>10} cycles",
            spec.name, stats.l2_misses, stats.exec_cycles
        );
        transactions += stats.l2_misses;
    }
    println!(
        "check ok: {} benchmark(s), {} transactions audited, 0 violations",
        specs.len(),
        transactions
    );
    Ok(())
}

fn dispatch(args: &Args) -> Result<(), String> {
    match args.command.as_str() {
        "list" => cmd_list(),
        "run" => cmd_run(args),
        "compare" => cmd_compare(args),
        "sweep" => cmd_sweep(args),
        "characterize" => cmd_characterize(args),
        "trace" => cmd_trace(args),
        "analyze" => cmd_analyze(args),
        "matrix" => cmd_matrix(args),
        "check" => cmd_check(args),
        "" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    if let Err(e) = dispatch(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_parsing_covers_all_schemes() {
        for p in [
            "directory",
            "broadcast",
            "sp",
            "addr",
            "inst",
            "uni",
            "multicast",
        ] {
            assert!(protocol_from(p).is_ok(), "{p}");
        }
        assert!(protocol_from("bogus").is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_command() {
        let a = Args::parse(["frobnicate".to_string()]);
        assert!(dispatch(&a).is_err());
    }

    #[test]
    fn run_requires_bench() {
        let a = Args::parse(["run".to_string()]);
        assert!(dispatch(&a).unwrap_err().contains("--bench"));
    }

    #[test]
    fn run_from_spec_file() {
        let path = std::env::temp_dir().join("spcp-cli-test.spec");
        std::fs::write(
            &path,
            "benchmark filetest
phase 2
  epoch 1 stable 2
    traffic 16 16
end
",
        )
        .unwrap();
        let a = Args::parse(
            format!("run --spec-file {} --protocol sp --json", path.display())
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).is_ok());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_spec_file_reports_line() {
        let path = std::env::temp_dir().join("spcp-cli-bad.spec");
        std::fs::write(
            &path,
            "benchmark x
phase 0
end
",
        )
        .unwrap();
        let a = Args::parse(
            format!("run --spec-file {}", path.display())
                .split_whitespace()
                .map(String::from),
        );
        let err = dispatch(&a).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn list_succeeds() {
        assert!(cmd_list().is_ok());
    }

    #[test]
    fn trace_then_analyze_round_trip() {
        let dir = std::env::temp_dir().join("spcp-cli-test-trace.txt");
        let path = dir.to_str().unwrap().to_string();
        let t = Args::parse(
            format!("trace --bench x264 --out {path}")
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&t).is_ok());
        let a = Args::parse(
            format!("analyze --trace {path}")
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).is_ok());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn matrix_smoke() {
        let a = Args::parse("matrix --bench x264".split_whitespace().map(String::from));
        assert!(dispatch(&a).is_ok());
    }

    #[test]
    fn analyze_missing_file_errors() {
        let a = Args::parse(
            "analyze --trace /nonexistent/x.trace"
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).is_err());
    }

    #[test]
    fn compare_smoke_with_jobs() {
        let a = Args::parse(
            "compare --bench x264 --jobs 2"
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).is_ok());
    }

    #[test]
    fn sweep_smoke() {
        let a = Args::parse(
            "sweep --benches fft,lu --protocols dir,sp --seeds 7 --jobs 2"
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).is_ok());
    }

    #[test]
    fn sweep_rejects_unknown_benchmark() {
        let a = Args::parse(
            "sweep --benches nosuch --jobs 1"
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).unwrap_err().contains("nosuch"));
    }

    #[test]
    fn sweep_golden_write_then_verify() {
        let path = std::env::temp_dir().join("spcp-cli-test-sweep.golden");
        let p = path.display();
        let write = Args::parse(
            format!("sweep --benches fft --protocols dir --jobs 1 --golden {p} --update-golden")
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&write).is_ok());
        let verify = Args::parse(
            format!("sweep --benches fft --protocols dir --jobs 1 --golden {p}")
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&verify).is_ok());
        let drifted = Args::parse(
            format!("sweep --benches fft --protocols sp --jobs 1 --golden {p}")
                .split_whitespace()
                .map(String::from),
        );
        if !spcp_harness::golden::update_requested() {
            assert!(dispatch(&drifted).unwrap_err().contains("mismatch"));
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn sweep_streamed_then_resume_and_golden() {
        let dir = std::env::temp_dir().join(format!("spcp-cli-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let gold = dir.join("stream.golden");
        let d = dir.display();
        let g = gold.display();
        // Streamed sweep writing a golden snapshot.
        let write = Args::parse(
            format!(
                "sweep --benches fft --protocols dir,sp --jobs 2 \
                 --out {d} --flush-every 1 --golden {g} --update-golden"
            )
            .split_whitespace()
            .map(String::from),
        );
        assert!(dispatch(&write).is_ok());
        // Same spool without --resume is refused; with --resume it is a
        // no-op and still verifies the golden byte for byte.
        let dirty = Args::parse(
            format!("sweep --benches fft --protocols dir,sp --jobs 2 --out {d} --golden {g}")
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&dirty).unwrap_err().contains("--resume"));
        if !spcp_harness::golden::update_requested() {
            let resume = Args::parse(
                format!(
                    "sweep --benches fft --protocols dir,sp --jobs 2 \
                     --out {d} --resume --golden {g}"
                )
                .split_whitespace()
                .map(String::from),
            );
            assert!(dispatch(&resume).is_ok());
            // The streamed golden matches the in-memory render.
            let verify = Args::parse(
                format!("sweep --benches fft --protocols dir,sp --jobs 1 --golden {g}")
                    .split_whitespace()
                    .map(String::from),
            );
            assert!(dispatch(&verify).is_ok());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compare_streamed_smoke() {
        let dir = std::env::temp_dir().join(format!("spcp-cli-cmpstream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = Args::parse(
            format!("compare --bench x264 --jobs 2 --out {}", dir.display())
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_flags_require_out() {
        let a = Args::parse(
            "sweep --benches fft --protocols dir --resume"
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).unwrap_err().contains("--out"));
        let a = Args::parse(
            "sweep --benches fft --protocols dir --flush-every 4"
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).unwrap_err().contains("--out"));
    }

    #[test]
    fn streamed_timing_is_rejected() {
        let a = Args::parse(
            "sweep --benches fft --protocols dir --out /tmp/spcp-unused --timing"
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).unwrap_err().contains("in-memory"));
    }

    #[test]
    fn check_model_smoke() {
        let a = Args::parse(
            "check --model --cores 2 --lines 1"
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).is_ok());
    }

    #[test]
    fn check_model_rejects_large_configs() {
        let a = Args::parse(
            "check --model --cores 9"
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).unwrap_err().contains("--cores"));
    }

    #[test]
    fn check_workload_smoke() {
        // Test builds carry debug_assertions, so the audits are compiled.
        let a = Args::parse(
            "check --bench x264 --protocol sp"
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).is_ok());
    }

    #[test]
    fn check_trace_flags_unordered_sharing() {
        use spcp_core::AccessKind;
        use spcp_sim::{CoreId, CoreSet};
        let racy = vec![
            spcp_trace::TraceEvent::Miss {
                core: CoreId::new(0),
                block: spcp_mem::BlockAddr::from_index(5),
                pc: 0,
                kind: AccessKind::Write,
                targets: CoreSet::empty(),
            },
            spcp_trace::TraceEvent::Miss {
                core: CoreId::new(1),
                block: spcp_mem::BlockAddr::from_index(5),
                pc: 0,
                kind: AccessKind::Read,
                targets: CoreSet::single(CoreId::new(0)),
            },
        ];
        let path = std::env::temp_dir().join("spcp-cli-check-racy.trace");
        let mut buf = Vec::new();
        spcp_trace::write_trace(&mut buf, &racy).unwrap();
        std::fs::write(&path, &buf).unwrap();
        let a = Args::parse(
            format!("check --trace {} --cores 2", path.display())
                .split_whitespace()
                .map(String::from),
        );
        let err = dispatch(&a).unwrap_err();
        assert!(err.contains("unordered"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn run_smoke_on_small_benchmark() {
        let a = Args::parse(
            "run --bench x264 --protocol sp --json"
                .split_whitespace()
                .map(String::from),
        );
        assert!(dispatch(&a).is_ok());
    }
}
