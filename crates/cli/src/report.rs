//! Human- and machine-readable run summaries.

use spcp_system::RunStats;

/// Formats a one-run summary as a human-readable block.
pub fn text_summary(s: &RunStats) -> String {
    let mut out = String::new();
    out.push_str(&format!("benchmark            {}\n", s.benchmark));
    out.push_str(&format!("protocol             {}\n", s.protocol));
    out.push_str(&format!("execution time       {} cycles\n", s.exec_cycles));
    out.push_str(&format!(
        "L2 misses            {} ({:.1}% communicating)\n",
        s.l2_misses,
        s.comm_ratio() * 100.0
    ));
    out.push_str(&format!(
        "avg miss latency     {:.1} cycles (communicating: {:.1})\n",
        s.miss_latency.mean(),
        s.comm_miss_latency.mean()
    ));
    if let (Some(p50), Some(p95)) = (s.latency_percentile(0.5), s.latency_percentile(0.95)) {
        let fmt = |v: u64| {
            if v == u64::MAX {
                ">512".to_string()
            } else {
                format!("<={v}")
            }
        };
        out.push_str(&format!(
            "latency percentiles  P50 {} cycles, P95 {} cycles\n",
            fmt(p50),
            fmt(p95)
        ));
    }
    out.push_str(&format!(
        "NoC traffic          {} byte-hops, energy {:.0}\n",
        s.noc.byte_hops,
        s.energy()
    ));
    if s.predictions > 0 {
        out.push_str(&format!(
            "predictions          {} ({:.1}% of communicating misses sufficient)\n",
            s.predictions,
            s.accuracy() * 100.0
        ));
        out.push_str(&format!(
            "predictor storage    {:.2} KB\n",
            s.predictor_storage_bits as f64 / 8.0 / 1024.0
        ));
    }
    if s.filtered_predictions > 0 {
        out.push_str(&format!(
            "filtered predictions {}\n",
            s.filtered_predictions
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Formats a one-run summary as a flat JSON object (no dependencies).
pub fn json_summary(s: &RunStats) -> String {
    let fields: Vec<(&str, String)> = vec![
        ("benchmark", format!("\"{}\"", json_escape(&s.benchmark))),
        ("protocol", format!("\"{}\"", json_escape(&s.protocol))),
        ("exec_cycles", s.exec_cycles.to_string()),
        ("l2_misses", s.l2_misses.to_string()),
        ("comm_misses", s.comm_misses.to_string()),
        ("noncomm_misses", s.noncomm_misses.to_string()),
        ("comm_ratio", format!("{:.6}", s.comm_ratio())),
        ("miss_latency_mean", format!("{:.3}", s.miss_latency.mean())),
        (
            "comm_miss_latency_mean",
            format!("{:.3}", s.comm_miss_latency.mean()),
        ),
        ("byte_hops", s.noc.byte_hops.to_string()),
        ("ctrl_byte_hops", s.noc.ctrl_byte_hops.to_string()),
        ("energy", format!("{:.3}", s.energy())),
        ("predictions", s.predictions.to_string()),
        ("pred_sufficient_comm", s.pred_sufficient_comm.to_string()),
        ("accuracy", format!("{:.6}", s.accuracy())),
        ("indirections", s.indirections.to_string()),
        (
            "predictor_storage_bits",
            s.predictor_storage_bits.to_string(),
        ),
        ("filtered_predictions", s.filtered_predictions.to_string()),
        ("migrations", s.migrations.to_string()),
    ];
    let body: Vec<String> = fields
        .into_iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RunStats {
        RunStats {
            benchmark: "x264".into(),
            protocol: "predicted-SP".into(),
            exec_cycles: 1000,
            l2_misses: 10,
            comm_misses: 8,
            noncomm_misses: 2,
            predictions: 8,
            pred_sufficient_comm: 6,
            ..RunStats::default()
        }
    }

    #[test]
    fn text_contains_key_lines() {
        let t = text_summary(&stats());
        assert!(t.contains("benchmark            x264"));
        assert!(t.contains("80.0% communicating"));
        assert!(t.contains("75.0% of communicating misses sufficient"));
    }

    #[test]
    fn json_is_flat_and_parsable_shape() {
        let j = json_summary(&stats());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"benchmark\":\"x264\""));
        assert!(j.contains("\"accuracy\":0.75"));
        // Basic structural sanity: balanced braces and quotes.
        assert_eq!(j.matches('{').count(), 1);
        assert_eq!(j.matches('}').count(), 1);
        assert_eq!(j.matches('"').count() % 2, 0);
    }

    #[test]
    fn json_escapes_quotes() {
        let mut s = stats();
        s.benchmark = "we\"ird".into();
        assert!(json_summary(&s).contains("we\\\"ird"));
    }
}
