//! Minimal dependency-free argument parsing for the `spcp` binary.

use std::collections::HashMap;

/// A parsed command line: subcommand, `--key value` options, and `--flag`
/// switches.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` pairs.
    pub options: HashMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
}

impl Args {
    /// Parses an argument list (without the program name).
    ///
    /// Every `--key` consumes the following token as its value unless that
    /// token is itself an option, in which case `--key` is a flag.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Args {
        let mut args = Args::default();
        let tokens: Vec<String> = argv.into_iter().collect();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(key) = tok.strip_prefix("--") {
                let has_value = tokens
                    .get(i + 1)
                    .map(|n| !n.starts_with("--"))
                    .unwrap_or(false);
                if has_value {
                    args.options.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.flags.push(key.to_string());
                    i += 1;
                }
            } else {
                if args.command.is_empty() {
                    args.command = tok.clone();
                }
                i += 1;
            }
        }
        args
    }

    /// The value of `--key`, if given.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// The value of `--key` parsed as `T`, or `default`.
    ///
    /// # Errors
    ///
    /// Returns an error string when the value does not parse.
    pub fn opt_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// Whether `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse("run --bench ocean --seed 9");
        assert_eq!(a.command, "run");
        assert_eq!(a.opt("bench"), Some("ocean"));
        assert_eq!(a.opt_parse("seed", 7u64).unwrap(), 9);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("run");
        assert_eq!(a.opt("bench"), None);
        assert_eq!(a.opt_parse("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn flags_have_no_value() {
        let a = parse("run --json --bench x264");
        assert!(a.flag("json"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.opt("bench"), Some("x264"));
    }

    #[test]
    fn trailing_flag_before_option() {
        let a = parse("run --filter --seed 3");
        assert!(a.flag("filter"));
        assert_eq!(a.opt("seed"), Some("3"));
    }

    #[test]
    fn bad_numeric_value_errors() {
        let a = parse("run --seed banana");
        assert!(a.opt_parse("seed", 7u64).is_err());
    }

    #[test]
    fn empty_command_line() {
        let a = parse("");
        assert_eq!(a.command, "");
    }
}
