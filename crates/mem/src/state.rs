//! MESIF cache-line states.

use std::fmt;

/// The MESIF coherence state of a cache line.
///
/// MESIF extends MESI with a **Forward** state: exactly one of the sharers
/// of a clean line is designated the forwarder and answers cache-to-cache
/// transfer requests for clean data, which is what lets a directory protocol
/// service read misses from a peer cache instead of memory. The paper's
/// baseline protocol is a distributed directory-based MESIF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LineState {
    /// Dirty, exclusive to this cache.
    Modified,
    /// Clean, exclusive to this cache.
    Exclusive,
    /// Clean, possibly in other caches; this copy does not forward.
    Shared,
    /// Not present / stale.
    #[default]
    Invalid,
    /// Clean, shared, and designated to forward data to requesters.
    Forward,
}

impl LineState {
    /// Whether the line holds usable data.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != LineState::Invalid
    }

    /// Whether a cache holding the line in this state answers a predicted
    /// or forwarded request with data (§4.5: Exclusive, Modified, or
    /// Forwarding state).
    #[inline]
    pub fn can_supply_data(self) -> bool {
        matches!(
            self,
            LineState::Modified | LineState::Exclusive | LineState::Forward
        )
    }

    /// Whether the local core may write without a coherence transaction.
    #[inline]
    pub fn is_writable(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }

    /// Whether eviction of the line must write data back to memory.
    #[inline]
    pub fn needs_writeback(self) -> bool {
        self == LineState::Modified
    }
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LineState::Modified => "M",
            LineState::Exclusive => "E",
            LineState::Shared => "S",
            LineState::Invalid => "I",
            LineState::Forward => "F",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_invalid() {
        assert_eq!(LineState::default(), LineState::Invalid);
        assert!(!LineState::Invalid.is_valid());
    }

    #[test]
    fn suppliers_are_m_e_f() {
        assert!(LineState::Modified.can_supply_data());
        assert!(LineState::Exclusive.can_supply_data());
        assert!(LineState::Forward.can_supply_data());
        assert!(!LineState::Shared.can_supply_data());
        assert!(!LineState::Invalid.can_supply_data());
    }

    #[test]
    fn writable_states() {
        assert!(LineState::Modified.is_writable());
        assert!(LineState::Exclusive.is_writable());
        assert!(!LineState::Shared.is_writable());
        assert!(!LineState::Forward.is_writable());
        assert!(!LineState::Invalid.is_writable());
    }

    #[test]
    fn only_modified_writes_back() {
        assert!(LineState::Modified.needs_writeback());
        for s in [
            LineState::Exclusive,
            LineState::Shared,
            LineState::Invalid,
            LineState::Forward,
        ] {
            assert!(!s.needs_writeback());
        }
    }

    #[test]
    fn display_single_letters() {
        assert_eq!(LineState::Modified.to_string(), "M");
        assert_eq!(LineState::Forward.to_string(), "F");
    }
}
