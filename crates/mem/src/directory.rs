//! Full-map distributed coherence directory.

use crate::addr::BlockAddr;
use spcp_sim::{CoreId, CoreSet, FlatMap};

/// The directory's view of one cache block.
///
/// * `owner` — the cache responsible for supplying data: the holder of the
///   line in Modified/Exclusive state, or the designated Forward-state
///   sharer of a clean line. `None` means memory must supply the data.
/// * `sharers` — every cache with a valid copy (including the owner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirEntry {
    /// Supplier of data for the next request, if any cache can supply.
    pub owner: Option<CoreId>,
    /// All caches holding a valid copy.
    pub sharers: CoreSet,
}

impl DirEntry {
    /// Whether no cache holds the block.
    pub fn is_uncached(&self) -> bool {
        self.sharers.is_empty()
    }

    /// The cores a read by `requester` must communicate with: the owner if
    /// one exists (cache-to-cache transfer), otherwise nobody (memory).
    pub fn read_targets(&self, requester: CoreId) -> CoreSet {
        match self.owner {
            Some(o) if o != requester => CoreSet::single(o),
            _ => CoreSet::empty(),
        }
    }

    /// The cores a write/upgrade by `requester` must communicate with:
    /// every other valid copy must be invalidated, and the owner (if remote)
    /// must supply data.
    pub fn write_targets(&self, requester: CoreId) -> CoreSet {
        let mut t = self.sharers;
        t.remove(requester);
        t
    }
}

/// A full-map directory covering the whole physical address space.
///
/// In the modelled machine the directory is *distributed*: block `b` is
/// managed by tile `b % num_tiles` ([`BlockAddr::home`]). This structure
/// stores the union of all slices; the protocol engine consults
/// [`BlockAddr::home`] for message routing while using one logical map,
/// which is behaviourally identical and simpler to test.
///
/// The map is an open-addressing [`FlatMap`] keyed by the block index:
/// directory state is touched on every L2 miss and every eviction, so the
/// per-access cost must be a single multiplicative hash and a short probe,
/// with no steady-state heap traffic. Entries are removed when the last
/// sharer drops, so the live set — and therefore the table size — is
/// bounded by the machine's total cache capacity.
///
/// # Examples
///
/// ```
/// use spcp_mem::{BlockAddr, Directory};
/// use spcp_sim::CoreId;
///
/// let mut dir = Directory::new(16);
/// let b = BlockAddr::from_index(7);
/// dir.record_exclusive(b, CoreId::new(2));
/// assert_eq!(dir.entry(b).owner, Some(CoreId::new(2)));
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    num_tiles: usize,
    entries: FlatMap<DirEntry>,
}

impl Directory {
    /// Creates an empty directory for a machine with `num_tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` is zero.
    pub fn new(num_tiles: usize) -> Self {
        assert!(num_tiles > 0);
        Directory {
            num_tiles,
            entries: FlatMap::new(),
        }
    }

    /// Number of tiles the directory is striped across.
    pub fn num_tiles(&self) -> usize {
        self.num_tiles
    }

    /// The home tile of a block.
    pub fn home_of(&self, block: BlockAddr) -> CoreId {
        block.home(self.num_tiles)
    }

    /// The directory's current view of `block` (all-invalid when never
    /// referenced).
    pub fn entry(&self, block: BlockAddr) -> DirEntry {
        self.entries.get(block.index()).copied().unwrap_or_default()
    }

    /// Records that `core` obtained the block exclusively (E or M): it
    /// becomes owner and sole sharer.
    pub fn record_exclusive(&mut self, block: BlockAddr, core: CoreId) {
        self.entries.insert(
            block.index(),
            DirEntry {
                owner: Some(core),
                sharers: CoreSet::single(core),
            },
        );
    }

    /// Records that `core` obtained a shared copy. Under MESIF the newest
    /// sharer becomes the Forward-state owner for clean lines, so ownership
    /// transfers to `core`.
    pub fn record_shared(&mut self, block: BlockAddr, core: CoreId) {
        let e = self
            .entries
            .get_or_insert_with(block.index(), DirEntry::default);
        e.sharers.insert(core);
        e.owner = Some(core);
    }

    /// Records that `core` obtained a shared copy under a protocol
    /// *without* clean forwarding (plain MESI): the line has no supplier —
    /// subsequent reads go to memory.
    pub fn record_shared_no_forward(&mut self, block: BlockAddr, core: CoreId) {
        let e = self
            .entries
            .get_or_insert_with(block.index(), DirEntry::default);
        e.sharers.insert(core);
        e.owner = None;
    }

    /// Records that `core` dropped its copy (eviction or invalidation).
    ///
    /// If `core` was the owner, ownership falls to the lowest-numbered
    /// remaining sharer (which then forwards clean data), or to memory when
    /// none remain.
    pub fn record_drop(&mut self, block: BlockAddr, core: CoreId) {
        if let Some(e) = self.entries.get_mut(block.index()) {
            e.sharers.remove(core);
            if e.owner == Some(core) {
                e.owner = e.sharers.iter().next();
            }
            if e.sharers.is_empty() {
                self.entries.remove(block.index());
            }
        }
    }

    /// Number of blocks with at least one cached copy.
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over every tracked `(block, entry)` pair in unspecified
    /// order (used by coherence-invariant validation).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &DirEntry)> {
        self.entries
            .iter()
            .map(|(i, e)| (BlockAddr::from_index(i), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    fn core(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn unreferenced_block_is_uncached() {
        let dir = Directory::new(16);
        let e = dir.entry(blk(1));
        assert!(e.is_uncached());
        assert_eq!(e.owner, None);
    }

    #[test]
    fn exclusive_then_shared_transfers_forwarding() {
        let mut dir = Directory::new(16);
        dir.record_exclusive(blk(1), core(0));
        // Core 3 reads: it becomes a sharer and (MESIF) the new forwarder.
        dir.record_shared(blk(1), core(3));
        let e = dir.entry(blk(1));
        assert_eq!(e.owner, Some(core(3)));
        assert!(e.sharers.contains(core(0)));
        assert!(e.sharers.contains(core(3)));
    }

    #[test]
    fn read_targets_point_at_owner() {
        let mut dir = Directory::new(16);
        dir.record_exclusive(blk(2), core(5));
        let e = dir.entry(blk(2));
        assert_eq!(e.read_targets(core(0)), CoreSet::single(core(5)));
        // The owner itself reads from memory/no one.
        assert!(e.read_targets(core(5)).is_empty());
    }

    #[test]
    fn write_targets_are_all_other_sharers() {
        let mut dir = Directory::new(16);
        dir.record_exclusive(blk(2), core(1));
        dir.record_shared(blk(2), core(2));
        dir.record_shared(blk(2), core(3));
        let e = dir.entry(blk(2));
        let t = e.write_targets(core(2));
        assert!(t.contains(core(1)));
        assert!(!t.contains(core(2)));
        assert!(t.contains(core(3)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn drop_owner_falls_back_to_sharer() {
        let mut dir = Directory::new(16);
        dir.record_exclusive(blk(4), core(7));
        dir.record_shared(blk(4), core(2));
        // Owner is now core 2 (last reader). Drop it.
        dir.record_drop(blk(4), core(2));
        let e = dir.entry(blk(4));
        assert_eq!(e.owner, Some(core(7)));
        assert_eq!(e.sharers.len(), 1);
    }

    #[test]
    fn drop_last_sharer_untracks_block() {
        let mut dir = Directory::new(16);
        dir.record_exclusive(blk(4), core(7));
        dir.record_drop(blk(4), core(7));
        assert!(dir.entry(blk(4)).is_uncached());
        assert_eq!(dir.tracked_blocks(), 0);
    }

    #[test]
    fn drop_of_unknown_block_is_noop() {
        let mut dir = Directory::new(16);
        dir.record_drop(blk(9), core(0));
        assert_eq!(dir.tracked_blocks(), 0);
    }

    #[test]
    fn home_matches_block_interleave() {
        let dir = Directory::new(16);
        assert_eq!(dir.home_of(blk(21)).index(), 5);
        assert_eq!(dir.num_tiles(), 16);
    }
}
