//! Memory substrate: addresses, set-associative caches, MESIF line states
//! and the full-map coherence directory.
//!
//! The paper's machine (Table 4) has per-tile private L1 (16 KB,
//! direct-mapped) and L2 (1 MB, 8-way, 64 B lines, LRU) caches kept coherent
//! by a distributed full-map directory implementing the MESIF protocol. This
//! crate supplies those structures as data types; the protocol *logic* lives
//! in `spcp-system`.
//!
//! # Examples
//!
//! ```
//! use spcp_mem::{Addr, CacheConfig, SetAssocCache};
//!
//! let mut l2: SetAssocCache<()> = SetAssocCache::new(CacheConfig::l2_1mb());
//! let block = Addr::new(0x4000).block();
//! assert!(l2.lookup(block).is_none());
//! l2.insert(block, ());
//! assert!(l2.lookup(block).is_some());
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod directory;
pub mod state;

pub use addr::{Addr, BlockAddr, MacroBlockAddr, BLOCK_BYTES};
pub use cache::{CacheConfig, SetAssocCache};
pub use directory::{DirEntry, Directory};
pub use state::LineState;
