//! Physical address newtypes.

use spcp_sim::CoreId;
use std::fmt;

/// Cache block (line) size in bytes, fixed at 64 B as in Table 4.
pub const BLOCK_BYTES: u64 = 64;

const BLOCK_SHIFT: u32 = BLOCK_BYTES.trailing_zeros();

/// A byte-granularity physical address.
///
/// # Examples
///
/// ```
/// use spcp_mem::Addr;
///
/// let a = Addr::new(0x1234);
/// assert_eq!(a.block().base().raw(), 0x1200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache block containing this address.
    #[inline]
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }

    /// Byte offset within the containing block.
    #[inline]
    pub const fn block_offset(self) -> u64 {
        self.0 & (BLOCK_BYTES - 1)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A cache-block-granularity address (byte address / 64).
///
/// This is the granularity at which coherence is maintained and at which
/// the directory and the ADDR predictor are indexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a block number.
    #[inline]
    pub const fn from_index(index: u64) -> Self {
        BlockAddr(index)
    }

    /// The block number.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The first byte address of the block.
    #[inline]
    pub const fn base(self) -> Addr {
        Addr(self.0 << BLOCK_SHIFT)
    }

    /// The macroblock of `macro_bytes` containing this block.
    ///
    /// Macroblock indexing is the space optimization used by the paper's
    /// ADDR comparison predictor (256 B macroblocks by default).
    ///
    /// # Panics
    ///
    /// Panics if `macro_bytes` is not a power of two or is smaller than the
    /// block size.
    #[inline]
    pub fn macro_block(self, macro_bytes: u64) -> MacroBlockAddr {
        assert!(
            macro_bytes.is_power_of_two() && macro_bytes >= BLOCK_BYTES,
            "macroblock size must be a power of two ≥ {BLOCK_BYTES}"
        );
        let blocks_per = macro_bytes / BLOCK_BYTES;
        MacroBlockAddr(self.0 / blocks_per)
    }

    /// The home tile of this block under address interleaving.
    ///
    /// The distributed directory stripes blocks across the `num_tiles` tiles
    /// round-robin by block number, the standard tiled-CMP arrangement.
    #[inline]
    pub fn home(self, num_tiles: usize) -> CoreId {
        CoreId::new((self.0 % num_tiles as u64) as usize)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:0x{:x}", self.0)
    }
}

/// A macroblock address (group of consecutive blocks) for coarse-grain
/// predictor indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacroBlockAddr(u64);

impl MacroBlockAddr {
    /// The macroblock number.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MacroBlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mblk:0x{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_extraction_and_offset() {
        let a = Addr::new(0x1234);
        assert_eq!(a.block().index(), 0x1234 / 64);
        assert_eq!(a.block_offset(), 0x34);
        assert_eq!(a.block().base().raw(), 0x1200);
    }

    #[test]
    fn addresses_in_same_block_share_block_addr() {
        let base = Addr::new(0x4000);
        for off in 0..BLOCK_BYTES {
            assert_eq!(Addr::new(0x4000 + off).block(), base.block());
        }
        assert_ne!(Addr::new(0x4000 + BLOCK_BYTES).block(), base.block());
    }

    #[test]
    fn block_index_round_trip() {
        let b = BlockAddr::from_index(99);
        assert_eq!(b.index(), 99);
        assert_eq!(b.base().raw(), 99 * BLOCK_BYTES);
        assert_eq!(b.base().block(), b);
    }

    #[test]
    fn macroblock_grouping_256b() {
        // 256 B macroblock = 4 consecutive 64 B blocks.
        let m0 = BlockAddr::from_index(0).macro_block(256);
        assert_eq!(BlockAddr::from_index(3).macro_block(256), m0);
        assert_ne!(BlockAddr::from_index(4).macro_block(256), m0);
        assert_eq!(BlockAddr::from_index(4).macro_block(256).index(), 1);
    }

    #[test]
    fn macroblock_of_block_size_is_identity() {
        let b = BlockAddr::from_index(17);
        assert_eq!(b.macro_block(BLOCK_BYTES).index(), 17);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn macroblock_rejects_non_power_of_two() {
        BlockAddr::from_index(0).macro_block(100);
    }

    #[test]
    fn home_is_round_robin_interleaved() {
        assert_eq!(BlockAddr::from_index(0).home(16).index(), 0);
        assert_eq!(BlockAddr::from_index(5).home(16).index(), 5);
        assert_eq!(BlockAddr::from_index(16).home(16).index(), 0);
        assert_eq!(BlockAddr::from_index(21).home(16).index(), 5);
    }

    #[test]
    fn homes_cover_all_tiles() {
        let mut seen = [false; 16];
        for i in 0..64 {
            seen[BlockAddr::from_index(i).home(16).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(BlockAddr::from_index(16).to_string(), "blk:0x10");
        assert_eq!(
            BlockAddr::from_index(16).macro_block(256).to_string(),
            "mblk:0x4"
        );
    }
}
