//! Generic set-associative cache with true-LRU replacement.

use crate::addr::{BlockAddr, BLOCK_BYTES};

/// Geometry and timing of one cache level.
///
/// # Examples
///
/// ```
/// use spcp_mem::CacheConfig;
///
/// let l2 = CacheConfig::l2_1mb();
/// assert_eq!(l2.num_sets(), 2048);
/// assert_eq!(l2.assoc, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub assoc: usize,
    /// Line size in bytes (fixed at 64 in this study).
    pub block_bytes: u64,
    /// Tag array access latency in cycles.
    pub tag_cycles: u64,
    /// Data array access latency in cycles.
    pub data_cycles: u64,
}

impl CacheConfig {
    /// The paper's private L2: 1 MB, 8-way, 64 B lines, 2-cycle tag,
    /// 6-cycle data (Table 4).
    pub fn l2_1mb() -> Self {
        CacheConfig {
            size_bytes: 1 << 20,
            assoc: 8,
            block_bytes: BLOCK_BYTES,
            tag_cycles: 2,
            data_cycles: 6,
        }
    }

    /// The paper's L1: 16 KB, direct-mapped, 64 B lines, 2-cycle
    /// load-to-use (Table 4).
    pub fn l1_16kb() -> Self {
        CacheConfig {
            size_bytes: 16 << 10,
            assoc: 1,
            block_bytes: BLOCK_BYTES,
            tag_cycles: 1,
            data_cycles: 1,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or sets are zero.
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / self.block_bytes;
        let sets = lines / self.assoc as u64;
        assert!(
            sets > 0 && sets * self.assoc as u64 * self.block_bytes == self.size_bytes,
            "invalid cache geometry: {self:?}"
        );
        sets as usize
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> usize {
        (self.size_bytes / self.block_bytes) as usize
    }
}

#[derive(Debug, Clone)]
struct Way<T> {
    tag: BlockAddr,
    payload: T,
    stamp: u64,
}

/// A set-associative cache mapping [`BlockAddr`] to a caller-chosen payload
/// with true-LRU replacement.
///
/// The same structure backs the L1/L2 models (payload = MESIF state) and the
/// finite-capacity predictor tables of the comparison study (payload =
/// predictor entry).
///
/// # Examples
///
/// ```
/// use spcp_mem::{BlockAddr, CacheConfig, SetAssocCache};
///
/// let mut c: SetAssocCache<u32> = SetAssocCache::new(CacheConfig::l1_16kb());
/// c.insert(BlockAddr::from_index(1), 42);
/// assert_eq!(c.lookup(BlockAddr::from_index(1)), Some(&mut 42));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<T> {
    cfg: CacheConfig,
    sets: Vec<Vec<Way<T>>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl<T> SetAssocCache<T> {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        // Full associativity up front: sets never grow, so the demand
        // insert/evict path stays allocation-free for the whole run.
        SetAssocCache {
            cfg,
            sets: (0..num_sets)
                .map(|_| Vec::with_capacity(cfg.assoc))
                .collect(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_index(&self, block: BlockAddr) -> usize {
        (block.index() % self.sets.len() as u64) as usize
    }

    /// Looks up a block, refreshing its LRU position on a hit.
    pub fn lookup(&mut self, block: BlockAddr) -> Option<&mut T> {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(block);
        let way = self.sets[idx].iter_mut().find(|w| w.tag == block);
        match way {
            Some(w) => {
                self.hits += 1;
                w.stamp = clock;
                Some(&mut w.payload)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a block without touching LRU state or hit/miss counters
    /// (a coherence *probe*, as opposed to a demand access).
    pub fn probe(&self, block: BlockAddr) -> Option<&T> {
        let idx = self.set_index(block);
        self.sets[idx]
            .iter()
            .find(|w| w.tag == block)
            .map(|w| &w.payload)
    }

    /// Mutable probe without LRU/counter side effects.
    pub fn probe_mut(&mut self, block: BlockAddr) -> Option<&mut T> {
        let idx = self.set_index(block);
        self.sets[idx]
            .iter_mut()
            .find(|w| w.tag == block)
            .map(|w| &mut w.payload)
    }

    /// Inserts a block, returning the victim `(block, payload)` if a line
    /// had to be evicted.
    ///
    /// Inserting a block that is already present replaces its payload and
    /// returns the old payload as a pseudo-victim of the same block.
    pub fn insert(&mut self, block: BlockAddr, payload: T) -> Option<(BlockAddr, T)> {
        self.clock += 1;
        let clock = self.clock;
        let assoc = self.cfg.assoc;
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];

        if let Some(w) = set.iter_mut().find(|w| w.tag == block) {
            w.stamp = clock;
            let old = std::mem::replace(&mut w.payload, payload);
            return Some((block, old));
        }

        if set.len() < assoc {
            set.push(Way {
                tag: block,
                payload,
                stamp: clock,
            });
            return None;
        }

        // Evict the least recently used way.
        let (victim_idx, _) = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.stamp)
            .expect("non-empty set");
        let victim = std::mem::replace(
            &mut set[victim_idx],
            Way {
                tag: block,
                payload,
                stamp: clock,
            },
        );
        Some((victim.tag, victim.payload))
    }

    /// Removes a block, returning its payload if it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<T> {
        let idx = self.set_index(block);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|w| w.tag == block)?;
        Some(set.swap_remove(pos).payload)
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Demand-access hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand-access misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Iterates over all resident `(block, payload)` pairs in unspecified
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &T)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|w| (w.tag, &w.payload)))
    }

    /// Removes every line.
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: usize, sets: usize) -> SetAssocCache<u64> {
        SetAssocCache::new(CacheConfig {
            size_bytes: (assoc * sets) as u64 * BLOCK_BYTES,
            assoc,
            block_bytes: BLOCK_BYTES,
            tag_cycles: 1,
            data_cycles: 1,
        })
    }

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn geometry_of_paper_caches() {
        assert_eq!(CacheConfig::l2_1mb().num_sets(), 2048);
        assert_eq!(CacheConfig::l2_1mb().num_lines(), 16384);
        assert_eq!(CacheConfig::l1_16kb().num_sets(), 256);
        assert_eq!(CacheConfig::l1_16kb().assoc, 1);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny(2, 2);
        assert!(c.lookup(blk(0)).is_none());
        c.insert(blk(0), 7);
        assert_eq!(c.lookup(blk(0)), Some(&mut 7));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, 1);
        c.insert(blk(0), 0);
        c.insert(blk(1), 1);
        // Touch block 0 so block 1 becomes LRU.
        c.lookup(blk(0));
        let victim = c.insert(blk(2), 2).expect("set full, must evict");
        assert_eq!(victim, (blk(1), 1));
        assert!(c.probe(blk(0)).is_some());
        assert!(c.probe(blk(1)).is_none());
        assert!(c.probe(blk(2)).is_some());
    }

    #[test]
    fn probe_does_not_refresh_lru() {
        let mut c = tiny(2, 1);
        c.insert(blk(0), 0);
        c.insert(blk(1), 1);
        // Probe (not lookup) block 0: it must remain LRU.
        assert_eq!(c.probe(blk(0)), Some(&0));
        let victim = c.insert(blk(2), 2).unwrap();
        assert_eq!(victim.0, blk(0));
    }

    #[test]
    fn reinsert_replaces_payload() {
        let mut c = tiny(2, 1);
        c.insert(blk(0), 1);
        let old = c.insert(blk(0), 2);
        assert_eq!(old, Some((blk(0), 1)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.probe(blk(0)), Some(&2));
    }

    #[test]
    fn blocks_map_to_distinct_sets() {
        let mut c = tiny(1, 4);
        // Blocks 0..4 land in different sets of a 4-set cache: no evictions.
        for i in 0..4 {
            assert!(c.insert(blk(i), i).is_none());
        }
        assert_eq!(c.len(), 4);
        // Block 4 conflicts with block 0 (direct-mapped).
        let victim = c.insert(blk(4), 4).unwrap();
        assert_eq!(victim.0, blk(0));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny(2, 2);
        c.insert(blk(3), 33);
        assert_eq!(c.invalidate(blk(3)), Some(33));
        assert_eq!(c.invalidate(blk(3)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn probe_mut_allows_state_updates() {
        let mut c = tiny(2, 2);
        c.insert(blk(1), 5);
        *c.probe_mut(blk(1)).unwrap() = 9;
        assert_eq!(c.probe(blk(1)), Some(&9));
        // Neither insert nor probe_mut counts as a demand access.
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn iter_visits_all_lines() {
        let mut c = tiny(2, 2);
        c.insert(blk(0), 0);
        c.insert(blk(1), 1);
        c.insert(blk(2), 2);
        let mut blocks: Vec<u64> = c.iter().map(|(b, _)| b.index()).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![0, 1, 2]);
    }

    #[test]
    fn clear_empties() {
        let mut c = tiny(2, 2);
        c.insert(blk(0), 0);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn bad_geometry_rejected() {
        let _ = CacheConfig {
            size_bytes: 100, // not divisible by 64
            assoc: 1,
            block_bytes: BLOCK_BYTES,
            tag_cycles: 1,
            data_cycles: 1,
        }
        .num_sets();
    }
}
