//! Generic set-associative cache with true-LRU replacement.
//!
//! The store is structure-of-arrays: per set, a packed lane of tags plus a
//! validity bitmask is scanned before any payload is touched, so the
//! per-access tag match walks contiguous `u64`s — the same discipline a
//! hardware tag array imposes — instead of striding over interleaved
//! `(tag, payload, stamp)` records.

use crate::addr::{BlockAddr, BLOCK_BYTES};

/// Geometry and timing of one cache level.
///
/// # Examples
///
/// ```
/// use spcp_mem::CacheConfig;
///
/// let l2 = CacheConfig::l2_1mb();
/// assert_eq!(l2.num_sets(), 2048);
/// assert_eq!(l2.assoc, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub assoc: usize,
    /// Line size in bytes (fixed at 64 in this study).
    pub block_bytes: u64,
    /// Tag array access latency in cycles.
    pub tag_cycles: u64,
    /// Data array access latency in cycles.
    pub data_cycles: u64,
}

impl CacheConfig {
    /// The paper's private L2: 1 MB, 8-way, 64 B lines, 2-cycle tag,
    /// 6-cycle data (Table 4).
    pub fn l2_1mb() -> Self {
        CacheConfig {
            size_bytes: 1 << 20,
            assoc: 8,
            block_bytes: BLOCK_BYTES,
            tag_cycles: 2,
            data_cycles: 6,
        }
    }

    /// The paper's L1: 16 KB, direct-mapped, 64 B lines, 2-cycle
    /// load-to-use (Table 4).
    pub fn l1_16kb() -> Self {
        CacheConfig {
            size_bytes: 16 << 10,
            assoc: 1,
            block_bytes: BLOCK_BYTES,
            tag_cycles: 1,
            data_cycles: 1,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or sets are zero.
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / self.block_bytes;
        let sets = lines / self.assoc as u64;
        assert!(
            sets > 0 && sets * self.assoc as u64 * self.block_bytes == self.size_bytes,
            "invalid cache geometry: {self:?}"
        );
        sets as usize
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> usize {
        (self.size_bytes / self.block_bytes) as usize
    }
}

/// A set-associative cache mapping [`BlockAddr`] to a caller-chosen payload
/// with true-LRU replacement.
///
/// The same structure backs the L1/L2 models (payload = MESIF state) and the
/// finite-capacity predictor tables of the comparison study (payload =
/// predictor entry).
///
/// # Layout
///
/// Ways are stored structure-of-arrays. Set `s` owns way slots
/// `s * assoc .. (s + 1) * assoc` of three parallel arrays — `tags`
/// (packed block indices), `stamps` (LRU clocks) and `payloads` — plus one
/// validity bitmask word in `valid` (bit `w` set ⇔ way `w` resident). A
/// lookup scans only the valid lanes of the contiguous tag array; payloads
/// are touched exactly once, on the matching way. LRU refreshes are
/// in-place stamp stores. The global stamp clock ticks on every demand
/// access and insert, so resident stamps are pairwise distinct and LRU
/// victim choice is order-independent.
///
/// # Examples
///
/// ```
/// use spcp_mem::{BlockAddr, CacheConfig, SetAssocCache};
///
/// let mut c: SetAssocCache<u32> = SetAssocCache::new(CacheConfig::l1_16kb());
/// c.insert(BlockAddr::from_index(1), 42);
/// assert_eq!(c.lookup(BlockAddr::from_index(1)), Some(&mut 42));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<T> {
    cfg: CacheConfig,
    num_sets: usize,
    /// `num_sets - 1` when the set count is a power of two (every standard
    /// geometry): set selection is then a mask instead of a `u64` modulo.
    /// `u64::MAX` marks a non-power-of-two count, which falls back to `%`.
    set_mask: u64,
    /// One validity bitmask per set; bit `w` covers way slot
    /// `set * assoc + w`. Caps associativity at 64 ways.
    valid: Vec<u64>,
    /// Packed per-set tag lanes (block indices), `num_sets * assoc` long.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    /// Payloads parallel to `tags`; `None` in invalid slots so evicted
    /// payloads drop promptly.
    payloads: Vec<Option<T>>,
    /// Resident-line count (kept incrementally: `len` is O(1)).
    lines: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl<T> SetAssocCache<T> {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry or associativity above 64 (the validity
    /// bitmask is one `u64` per set).
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        assert!(
            cfg.assoc <= 64,
            "associativity {} exceeds the 64-way bitmask lane",
            cfg.assoc
        );
        let slots = num_sets * cfg.assoc;
        // Full capacity up front: the arrays never grow, so the demand
        // insert/evict path stays allocation-free for the whole run.
        SetAssocCache {
            cfg,
            num_sets,
            set_mask: if num_sets.is_power_of_two() {
                num_sets as u64 - 1
            } else {
                u64::MAX
            },
            valid: vec![0; num_sets],
            tags: vec![0; slots],
            stamps: vec![0; slots],
            payloads: (0..slots).map(|_| None).collect(),
            lines: 0,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_index(&self, block: BlockAddr) -> usize {
        if self.set_mask != u64::MAX {
            (block.index() & self.set_mask) as usize
        } else {
            (block.index() % self.num_sets as u64) as usize
        }
    }

    /// The set a block maps to (exposed for audits and property tests).
    pub fn set_of(&self, block: BlockAddr) -> usize {
        self.set_index(block)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Scans set `set`'s packed tag lane for `tag`, returning the matching
    /// way slot index into the parallel arrays. Touches no payload.
    #[inline]
    fn find_slot(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.cfg.assoc;
        let mask = self.valid[set];
        if mask == 0 {
            return None;
        }
        // Linear scan over the packed tag lane: each compare is independent
        // (no loop-carried dependency like a `trailing_zeros` bit walk), so
        // the comparisons pipeline. The valid test guards stale tags left
        // behind by `invalidate`.
        let tags = &self.tags[base..base + self.cfg.assoc];
        for (way, &t) in tags.iter().enumerate() {
            if t == tag && mask & (1 << way) != 0 {
                return Some(base + way);
            }
        }
        None
    }

    /// Looks up a block, refreshing its LRU position on a hit.
    pub fn lookup(&mut self, block: BlockAddr) -> Option<&mut T> {
        self.clock += 1;
        let set = self.set_index(block);
        match self.find_slot(set, block.index()) {
            Some(slot) => {
                self.hits += 1;
                self.stamps[slot] = self.clock;
                self.payloads[slot].as_mut()
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a block without touching LRU state or hit/miss counters
    /// (a coherence *probe*, as opposed to a demand access).
    pub fn probe(&self, block: BlockAddr) -> Option<&T> {
        let set = self.set_index(block);
        self.find_slot(set, block.index())
            .and_then(|slot| self.payloads[slot].as_ref())
    }

    /// Mutable probe without LRU/counter side effects.
    pub fn probe_mut(&mut self, block: BlockAddr) -> Option<&mut T> {
        let set = self.set_index(block);
        self.find_slot(set, block.index())
            .and_then(|slot| self.payloads[slot].as_mut())
    }

    /// Inserts a block, returning the victim `(block, payload)` if a line
    /// had to be evicted.
    ///
    /// Inserting a block that is already present replaces its payload and
    /// returns the old payload as a pseudo-victim of the same block.
    pub fn insert(&mut self, block: BlockAddr, payload: T) -> Option<(BlockAddr, T)> {
        self.clock += 1;
        let clock = self.clock;
        let tag = block.index();
        let set = self.set_index(block);
        let base = set * self.cfg.assoc;

        if let Some(slot) = self.find_slot(set, tag) {
            self.stamps[slot] = clock;
            let old = self.payloads[slot].replace(payload).expect("valid slot");
            return Some((block, old));
        }

        let mask = self.valid[set];
        let full_mask = if self.cfg.assoc == 64 {
            u64::MAX
        } else {
            (1u64 << self.cfg.assoc) - 1
        };
        let full = mask == full_mask;
        if !full {
            // First free way of the lane.
            let way = (!mask).trailing_zeros() as usize;
            let slot = base + way;
            self.valid[set] |= 1 << way;
            self.tags[slot] = tag;
            self.stamps[slot] = clock;
            self.payloads[slot] = Some(payload);
            self.lines += 1;
            return None;
        }

        // Evict the least recently used way. Stamps are globally unique
        // (the clock ticks on every stamping operation), so the minimum is
        // unique and slot order cannot influence the choice.
        let mut victim = base;
        for slot in base + 1..base + self.cfg.assoc {
            if self.stamps[slot] < self.stamps[victim] {
                victim = slot;
            }
        }
        let victim_tag = BlockAddr::from_index(self.tags[victim]);
        let old = self.payloads[victim].replace(payload).expect("full set");
        self.tags[victim] = tag;
        self.stamps[victim] = clock;
        Some((victim_tag, old))
    }

    /// Removes a block, returning its payload if it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<T> {
        let set = self.set_index(block);
        let slot = self.find_slot(set, block.index())?;
        self.valid[set] &= !(1 << (slot - set * self.cfg.assoc));
        self.lines -= 1;
        self.payloads[slot].take()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.lines
    }

    /// Whether the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.lines == 0
    }

    /// Demand-access hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand-access misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Iterates over all resident `(block, payload)` pairs in unspecified
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &T)> {
        self.valid.iter().enumerate().flat_map(move |(set, &mask)| {
            let base = set * self.cfg.assoc;
            let mut m = mask;
            std::iter::from_fn(move || {
                if m == 0 {
                    return None;
                }
                let way = m.trailing_zeros() as usize;
                m &= m - 1;
                let slot = base + way;
                Some((
                    BlockAddr::from_index(self.tags[slot]),
                    self.payloads[slot].as_ref().expect("valid slot"),
                ))
            })
        })
    }

    /// Resident `(block, lru_stamp)` pairs of one set, in way-slot order.
    ///
    /// Introspection hook for the invariant audits and the differential
    /// test harness; not part of the timing model.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn set_ways(&self, set: usize) -> impl Iterator<Item = (BlockAddr, u64)> + '_ {
        assert!(set < self.num_sets, "set {set} of {}", self.num_sets);
        let base = set * self.cfg.assoc;
        let mut mask = self.valid[set];
        std::iter::from_fn(move || {
            if mask == 0 {
                return None;
            }
            let way = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let slot = base + way;
            Some((BlockAddr::from_index(self.tags[slot]), self.stamps[slot]))
        })
    }

    /// Removes every line.
    pub fn clear(&mut self) {
        self.valid.fill(0);
        for p in &mut self.payloads {
            *p = None;
        }
        self.lines = 0;
    }

    /// Checks the SoA bookkeeping: the validity bitmasks agree with the
    /// payload slots and the resident-line counter, no mask bit exceeds
    /// the associativity, and resident tags are unique within their set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn audit(&self) -> Result<(), String> {
        let assoc = self.cfg.assoc;
        let mut lines = 0usize;
        for set in 0..self.num_sets {
            let mask = self.valid[set];
            if assoc < 64 && mask >> assoc != 0 {
                return Err(format!(
                    "set {set}: valid mask {mask:#x} beyond {assoc} ways"
                ));
            }
            lines += mask.count_ones() as usize;
            for way in 0..assoc {
                let slot = set * assoc + way;
                let bit = mask & (1 << way) != 0;
                if bit != self.payloads[slot].is_some() {
                    return Err(format!(
                        "set {set} way {way}: valid bit {bit} but payload present = {}",
                        self.payloads[slot].is_some()
                    ));
                }
                if bit && self.set_index(BlockAddr::from_index(self.tags[slot])) != set {
                    return Err(format!(
                        "set {set} way {way}: tag {} maps elsewhere",
                        self.tags[slot]
                    ));
                }
            }
            for (i, (a, _)) in self.set_ways(set).enumerate() {
                for (b, _) in self.set_ways(set).skip(i + 1) {
                    if a == b {
                        return Err(format!("set {set}: duplicate resident tag {a:?}"));
                    }
                }
            }
        }
        if lines != self.lines {
            return Err(format!(
                "resident counter {} disagrees with masks ({lines})",
                self.lines
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: usize, sets: usize) -> SetAssocCache<u64> {
        SetAssocCache::new(CacheConfig {
            size_bytes: (assoc * sets) as u64 * BLOCK_BYTES,
            assoc,
            block_bytes: BLOCK_BYTES,
            tag_cycles: 1,
            data_cycles: 1,
        })
    }

    fn blk(i: u64) -> BlockAddr {
        BlockAddr::from_index(i)
    }

    #[test]
    fn geometry_of_paper_caches() {
        assert_eq!(CacheConfig::l2_1mb().num_sets(), 2048);
        assert_eq!(CacheConfig::l2_1mb().num_lines(), 16384);
        assert_eq!(CacheConfig::l1_16kb().num_sets(), 256);
        assert_eq!(CacheConfig::l1_16kb().assoc, 1);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny(2, 2);
        assert!(c.lookup(blk(0)).is_none());
        c.insert(blk(0), 7);
        assert_eq!(c.lookup(blk(0)), Some(&mut 7));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, 1);
        c.insert(blk(0), 0);
        c.insert(blk(1), 1);
        // Touch block 0 so block 1 becomes LRU.
        c.lookup(blk(0));
        let victim = c.insert(blk(2), 2).expect("set full, must evict");
        assert_eq!(victim, (blk(1), 1));
        assert!(c.probe(blk(0)).is_some());
        assert!(c.probe(blk(1)).is_none());
        assert!(c.probe(blk(2)).is_some());
    }

    #[test]
    fn probe_does_not_refresh_lru() {
        let mut c = tiny(2, 1);
        c.insert(blk(0), 0);
        c.insert(blk(1), 1);
        // Probe (not lookup) block 0: it must remain LRU.
        assert_eq!(c.probe(blk(0)), Some(&0));
        let victim = c.insert(blk(2), 2).unwrap();
        assert_eq!(victim.0, blk(0));
    }

    #[test]
    fn reinsert_replaces_payload() {
        let mut c = tiny(2, 1);
        c.insert(blk(0), 1);
        let old = c.insert(blk(0), 2);
        assert_eq!(old, Some((blk(0), 1)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.probe(blk(0)), Some(&2));
    }

    #[test]
    fn blocks_map_to_distinct_sets() {
        let mut c = tiny(1, 4);
        // Blocks 0..4 land in different sets of a 4-set cache: no evictions.
        for i in 0..4 {
            assert!(c.insert(blk(i), i).is_none());
        }
        assert_eq!(c.len(), 4);
        // Block 4 conflicts with block 0 (direct-mapped).
        let victim = c.insert(blk(4), 4).unwrap();
        assert_eq!(victim.0, blk(0));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny(2, 2);
        c.insert(blk(3), 33);
        assert_eq!(c.invalidate(blk(3)), Some(33));
        assert_eq!(c.invalidate(blk(3)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn probe_mut_allows_state_updates() {
        let mut c = tiny(2, 2);
        c.insert(blk(1), 5);
        *c.probe_mut(blk(1)).unwrap() = 9;
        assert_eq!(c.probe(blk(1)), Some(&9));
        // Neither insert nor probe_mut counts as a demand access.
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn iter_visits_all_lines() {
        let mut c = tiny(2, 2);
        c.insert(blk(0), 0);
        c.insert(blk(1), 1);
        c.insert(blk(2), 2);
        let mut blocks: Vec<u64> = c.iter().map(|(b, _)| b.index()).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![0, 1, 2]);
    }

    #[test]
    fn clear_empties() {
        let mut c = tiny(2, 2);
        c.insert(blk(0), 0);
        c.clear();
        assert!(c.is_empty());
        assert!(c.audit().is_ok());
    }

    #[test]
    fn reuse_of_invalidated_way_keeps_lane_consistent() {
        let mut c = tiny(4, 1);
        for i in 0..4 {
            c.insert(blk(i), i);
        }
        // Free way 1 (block 1), then insert: the freed lane is reused.
        c.invalidate(blk(1));
        assert!(c.insert(blk(9), 9).is_none(), "freed way absorbs insert");
        assert_eq!(c.len(), 4);
        assert!(c.audit().is_ok());
        // Next insert must evict the oldest remaining stamp: block 0.
        let victim = c.insert(blk(13), 13).unwrap();
        assert_eq!(victim, (blk(0), 0));
        assert!(c.audit().is_ok());
    }

    #[test]
    fn set_ways_reports_resident_stamps() {
        let mut c = tiny(2, 1);
        c.insert(blk(0), 0);
        c.insert(blk(1), 1);
        c.lookup(blk(0));
        let ways: Vec<(BlockAddr, u64)> = c.set_ways(0).collect();
        assert_eq!(ways.len(), 2);
        let s0 = ways.iter().find(|(b, _)| *b == blk(0)).unwrap().1;
        let s1 = ways.iter().find(|(b, _)| *b == blk(1)).unwrap().1;
        assert!(s0 > s1, "refreshed way carries the newer stamp");
    }

    #[test]
    fn full_width_64_way_set_works() {
        let mut c = tiny(64, 1);
        for i in 0..64 {
            assert!(c.insert(blk(i), i).is_none());
        }
        assert_eq!(c.len(), 64);
        let victim = c.insert(blk(64), 64).unwrap();
        assert_eq!(victim.0, blk(0));
        assert!(c.audit().is_ok());
    }

    #[test]
    fn audit_accepts_random_churn() {
        let mut c = tiny(4, 4);
        // A deterministic little churn loop: insert/lookup/invalidate.
        for i in 0..200u64 {
            let b = blk(i * 7 % 32);
            match i % 3 {
                0 => {
                    c.insert(b, i);
                }
                1 => {
                    c.lookup(b);
                }
                _ => {
                    c.invalidate(b);
                }
            }
            c.audit().expect("bookkeeping stays consistent");
        }
    }

    #[test]
    #[should_panic(expected = "invalid cache geometry")]
    fn bad_geometry_rejected() {
        let _ = CacheConfig {
            size_bytes: 100, // not divisible by 64
            assoc: 1,
            block_bytes: BLOCK_BYTES,
            tag_cycles: 1,
            data_cycles: 1,
        }
        .num_sets();
    }

    #[test]
    #[should_panic(expected = "exceeds the 64-way bitmask lane")]
    fn over_wide_associativity_rejected() {
        let _ = tiny(128, 1);
    }
}
