//! Per-destination communication counters and hot-set extraction (§3.3,
//! §4.2).

use spcp_sim::{CoreId, CoreSet};

/// Communication-volume counters for one core over one sync-epoch.
///
/// The L2 controller increments one counter per remote data response
/// (read/write misses serviced cache-to-cache) and per invalidation
/// acknowledgment. At epoch end the **hot communication set** is extracted:
/// every core that contributed at least `threshold` (default 10%) of the
/// epoch's total communication volume (§3.3).
///
/// # Examples
///
/// ```
/// use spcp_core::CommCounters;
/// use spcp_sim::CoreId;
///
/// let mut c = CommCounters::new(16);
/// for _ in 0..9 {
///     c.record(CoreId::new(5));
/// }
/// c.record(CoreId::new(2));
/// let hot = c.hot_set(0.10, None);
/// assert!(hot.contains(CoreId::new(5)));
/// assert!(hot.contains(CoreId::new(2))); // exactly 10% still qualifies
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommCounters {
    counts: Vec<u32>,
    total: u64,
}

impl CommCounters {
    /// Creates counters for a machine with `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(num_cores: usize) -> Self {
        assert!(num_cores > 0);
        CommCounters {
            counts: vec![0; num_cores],
            total: 0,
        }
    }

    /// Number of cores tracked.
    pub fn num_cores(&self) -> usize {
        self.counts.len()
    }

    /// Records one communication event towards `target` (a data response
    /// from, or an invalidation ack by, that core).
    pub fn record(&mut self, target: CoreId) {
        self.counts[target.index()] = self.counts[target.index()].saturating_add(1);
        self.total += 1;
    }

    /// Records one event towards every core in `targets` (an invalidation
    /// fan-out's ack set).
    pub fn record_set(&mut self, targets: CoreSet) {
        for t in targets.iter() {
            self.record(t);
        }
    }

    /// Total events recorded this epoch.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw per-core volume.
    pub fn volume(&self, target: CoreId) -> u32 {
        self.counts[target.index()]
    }

    /// Clears all counters (the epoch-begin reset of Table 2).
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }

    /// Extracts the hot communication set: cores with at least
    /// `threshold` fraction of the total volume, optionally capped to the
    /// `max_size` hottest cores (the bandwidth-bounding knob of §5.2).
    ///
    /// Returns the empty set when nothing was recorded.
    pub fn hot_set(&self, threshold: f64, max_size: Option<usize>) -> CoreSet {
        if self.total == 0 {
            return CoreSet::empty();
        }
        let cutoff = (self.total as f64 * threshold).ceil() as u64;
        let cutoff = cutoff.max(1);
        let mut hot: Vec<(u32, usize)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v as u64 >= cutoff)
            .map(|(i, &v)| (v, i))
            .collect();
        if let Some(cap) = max_size {
            // Keep the `cap` hottest; ties broken by lower core index for
            // determinism.
            hot.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            hot.truncate(cap);
        }
        hot.into_iter().map(|(_, i)| CoreId::new(i)).collect()
    }

    /// Cumulative fraction of total volume covered by the `k` hottest
    /// cores, for the Figure 4 locality curves.
    pub fn coverage_by_top(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut v: Vec<u32> = self.counts.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let covered: u64 = v.iter().take(k).map(|&x| x as u64).sum();
        covered as f64 / self.total as f64
    }

    /// The full sorted (descending) volume distribution, for
    /// characterization plots.
    pub fn sorted_volumes(&self) -> Vec<u32> {
        let mut v = self.counts.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn empty_counters_have_empty_hot_set() {
        let c = CommCounters::new(16);
        assert!(c.hot_set(0.10, None).is_empty());
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn record_accumulates() {
        let mut c = CommCounters::new(16);
        c.record(core(3));
        c.record(core(3));
        c.record(core(1));
        assert_eq!(c.volume(core(3)), 2);
        assert_eq!(c.volume(core(1)), 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn record_set_counts_each_member() {
        let mut c = CommCounters::new(16);
        let set = CoreSet::from_bits(0b1011);
        c.record_set(set);
        assert_eq!(c.total(), 3);
        assert_eq!(c.volume(core(0)), 1);
        assert_eq!(c.volume(core(1)), 1);
        assert_eq!(c.volume(core(3)), 1);
    }

    #[test]
    fn threshold_selects_hot_cores() {
        let mut c = CommCounters::new(16);
        // 90 events to core 5, 10 to core 2, 1 to core 7 (101 total).
        for _ in 0..90 {
            c.record(core(5));
        }
        for _ in 0..10 {
            c.record(core(2));
        }
        c.record(core(7));
        let hot = c.hot_set(0.10, None);
        assert!(hot.contains(core(5)));
        assert!(!hot.contains(core(2)), "9.9% is below a 10% threshold");
        assert!(!hot.contains(core(7)));
    }

    #[test]
    fn exact_threshold_is_inclusive() {
        let mut c = CommCounters::new(16);
        for _ in 0..9 {
            c.record(core(0));
        }
        c.record(core(1)); // exactly 10% of 10
        let hot = c.hot_set(0.10, None);
        assert!(hot.contains(core(1)));
    }

    #[test]
    fn max_size_keeps_hottest() {
        let mut c = CommCounters::new(16);
        for (i, n) in [(0usize, 50u32), (1, 30), (2, 20)] {
            for _ in 0..n {
                c.record(core(i));
            }
        }
        let hot = c.hot_set(0.10, Some(2));
        assert_eq!(hot.len(), 2);
        assert!(hot.contains(core(0)));
        assert!(hot.contains(core(1)));
        assert!(!hot.contains(core(2)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = CommCounters::new(8);
        c.record(core(1));
        c.reset();
        assert_eq!(c.total(), 0);
        assert_eq!(c.volume(core(1)), 0);
        assert!(c.hot_set(0.1, None).is_empty());
    }

    #[test]
    fn coverage_is_cumulative_and_monotonic() {
        let mut c = CommCounters::new(16);
        for _ in 0..60 {
            c.record(core(0));
        }
        for _ in 0..30 {
            c.record(core(1));
        }
        for _ in 0..10 {
            c.record(core(2));
        }
        assert!((c.coverage_by_top(1) - 0.6).abs() < 1e-9);
        assert!((c.coverage_by_top(2) - 0.9).abs() < 1e-9);
        assert!((c.coverage_by_top(16) - 1.0).abs() < 1e-9);
        let mut prev = 0.0;
        for k in 0..=16 {
            let cov = c.coverage_by_top(k);
            assert!(cov >= prev);
            prev = cov;
        }
    }

    #[test]
    fn sorted_volumes_descend() {
        let mut c = CommCounters::new(4);
        c.record(core(2));
        c.record(core(2));
        c.record(core(0));
        assert_eq!(c.sorted_volumes(), vec![2, 1, 0, 0]);
    }

    #[test]
    fn single_event_is_its_own_hot_set() {
        let mut c = CommCounters::new(16);
        c.record(core(9));
        assert_eq!(c.hot_set(0.10, None), CoreSet::single(core(9)));
    }
}
