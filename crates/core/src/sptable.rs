//! The SP-table: tiny signature-history storage (§4.3).

use spcp_sim::{CoreId, CoreSet};
use spcp_sync::{EpochId, LockId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::rc::Rc;

/// A bounded sequence of communication signatures for one static sync-epoch,
/// newest last.
///
/// The history depth `d` bounds the sequence; storing a new signature shifts
/// the oldest one out. The structure also tracks whether the last store
/// completed a stride-2 repetitive pattern (§4.4, Figure 6(c)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigHistory {
    sigs: VecDeque<CoreSet>,
    depth: usize,
    stride2: bool,
}

impl SigHistory {
    /// Creates an empty history of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "history depth must be at least 1");
        SigHistory {
            sigs: VecDeque::with_capacity(depth),
            depth,
            stride2: false,
        }
    }

    /// Number of signatures currently stored.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether no signatures are stored yet.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// The most recent signature.
    pub fn newest(&self) -> Option<CoreSet> {
        self.sigs.back().copied()
    }

    /// The second most recent signature.
    pub fn previous(&self) -> Option<CoreSet> {
        if self.sigs.len() >= 2 {
            self.sigs.get(self.sigs.len() - 2).copied()
        } else {
            None
        }
    }

    /// Whether the last [`push`](SigHistory::push) detected a stride-2
    /// alternation (new signature equals the one from two instances ago but
    /// differs from the last).
    pub fn stride2_detected(&self) -> bool {
        self.stride2
    }

    /// Stores a new signature, shifting out the oldest beyond the depth.
    pub fn push(&mut self, sig: CoreSet) {
        // Stride-2 detection compares the incoming signature with the two
        // most recent stored ones *before* insertion.
        self.stride2 = match (self.previous(), self.newest()) {
            (Some(older), Some(newer)) => sig == older && sig != newer,
            _ => false,
        };
        if self.sigs.len() == self.depth {
            self.sigs.pop_front();
        }
        self.sigs.push_back(sig);
    }

    /// Union of all stored signatures (the lock-holder union of §4.4).
    pub fn union(&self) -> CoreSet {
        self.sigs
            .iter()
            .fold(CoreSet::empty(), |acc, &s| acc.union(s))
    }

    /// Intersection of the two most recent signatures — the paper's
    /// *last stable hot communication set* (d = 2 policy). Falls back to
    /// the newest signature when only one is stored.
    pub fn stable(&self) -> Option<CoreSet> {
        match (self.previous(), self.newest()) {
            (Some(p), Some(n)) => Some(p.intersect(n)),
            (None, Some(n)) => Some(n),
            _ => None,
        }
    }

    /// Storage occupied by the stored signatures, in bits, for a machine
    /// with `num_cores` cores.
    pub fn storage_bits(&self, num_cores: usize) -> u64 {
        (self.depth * num_cores) as u64
    }
}

/// One core's slice of the SP-table plus the machine-wide shared lock
/// entries.
///
/// Entries are indexed by the *static* epoch ID. Capacity may optionally be
/// bounded, in which case the least-recently-touched entry is evicted — the
/// space-sensitivity experiment of Figure 13 uses this.
///
/// # Examples
///
/// ```
/// use spcp_core::SpTable;
/// use spcp_sim::CoreSet;
/// use spcp_sync::{EpochId, StaticSyncId, SyncKind};
///
/// let mut t = SpTable::new(2, None);
/// let id = EpochId { kind: SyncKind::Barrier, static_id: StaticSyncId::new(1) };
/// t.store(id, CoreSet::from_bits(0b100));
/// assert_eq!(t.history(id).unwrap().newest(), Some(CoreSet::from_bits(0b100)));
/// ```
#[derive(Debug, Clone)]
pub struct SpTable {
    entries: HashMap<EpochId, (SigHistory, u64)>,
    depth: usize,
    capacity: Option<usize>,
    /// Optional §4.6 hardware organization: `(sets, ways)`. Entries index
    /// by `static_id % sets`; a full set evicts its LRU entry even when
    /// the table as a whole has room (set conflicts).
    set_assoc: Option<(usize, usize)>,
    clock: u64,
}

impl SpTable {
    /// Creates a table with signature depth `depth` and optional entry
    /// capacity.
    pub fn new(depth: usize, capacity: Option<usize>) -> Self {
        SpTable {
            entries: HashMap::new(),
            depth,
            capacity,
            set_assoc: None,
            clock: 0,
        }
    }

    /// Creates a set-associative table (§4.6: "a smaller set-associativity
    /// array is also possible without much cost from set conflicts").
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn set_associative(depth: usize, sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "geometry must be non-zero");
        SpTable {
            entries: HashMap::new(),
            depth,
            capacity: Some(sets * ways),
            set_assoc: Some((sets, ways)),
            clock: 0,
        }
    }

    fn set_of(&self, id: EpochId) -> Option<usize> {
        self.set_assoc
            .map(|(sets, _)| id.static_id.raw() as usize % sets)
    }

    /// The configured history depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The signature history of `id`, if resident.
    pub fn history(&mut self, id: EpochId) -> Option<&SigHistory> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&id).map(|(h, stamp)| {
            *stamp = clock;
            &*h
        })
    }

    /// Stores a signature for `id`, creating the entry if needed and
    /// evicting the least-recently-touched entry when at capacity (or when
    /// the entry's set is full, in a set-associative table).
    pub fn store(&mut self, id: EpochId, sig: CoreSet) {
        self.clock += 1;
        let clock = self.clock;
        if !self.entries.contains_key(&id) {
            if let (Some(set), Some((_, ways))) = (self.set_of(id), self.set_assoc) {
                // Evict the LRU entry of the conflicting set.
                while self
                    .entries
                    .keys()
                    .filter(|k| self.set_of(**k) == Some(set))
                    .count()
                    >= ways
                {
                    let victim = self
                        .entries
                        .iter()
                        .filter(|(k, _)| self.set_of(**k) == Some(set))
                        .min_by_key(|(_, (_, stamp))| *stamp)
                        .map(|(k, _)| *k)
                        .expect("set is full, so it has entries");
                    self.entries.remove(&victim);
                }
            } else if let Some(cap) = self.capacity {
                while self.entries.len() >= cap {
                    let victim = self
                        .entries
                        .iter()
                        .min_by_key(|(_, (_, stamp))| *stamp)
                        .map(|(k, _)| *k)
                        .expect("capacity > 0 implies at least one entry");
                    self.entries.remove(&victim);
                }
            }
            self.entries
                .insert(id, (SigHistory::new(self.depth), clock));
        }
        let (h, stamp) = self.entries.get_mut(&id).expect("just inserted");
        h.push(sig);
        *stamp = clock;
    }

    /// Storage occupied by the table in bits: per entry, `depth` signatures
    /// of `num_cores` bits each, a 32-bit tag, and one shared-entry flag —
    /// the §4.6 accounting.
    pub fn storage_bits(&self, num_cores: usize) -> u64 {
        let per_entry = (self.depth * num_cores) as u64 + 32 + 1;
        self.entries.len() as u64 * per_entry
    }
}

/// The machine-wide lock-entry table: critical sections protected by the
/// same lock share one history of recent lock holders, regardless of which
/// core executes them (§4.3).
#[derive(Debug, Clone)]
pub struct LockTable {
    entries: HashMap<LockId, SigHistory>,
    depth: usize,
}

impl LockTable {
    /// Creates an empty lock table with the given holder-history depth.
    pub fn new(depth: usize) -> Self {
        LockTable {
            entries: HashMap::new(),
            depth,
        }
    }

    /// Records that `holder` released `lock` (the critical-section
    /// signature of §4.2 encodes only the releasing processor).
    pub fn record_release(&mut self, lock: LockId, holder: CoreId) {
        self.entries
            .entry(lock)
            .or_insert_with(|| SigHistory::new(self.depth))
            .push(CoreSet::single(holder));
    }

    /// The union of the last `depth` holders of `lock`: the prediction set
    /// for a critical section protected by it.
    pub fn recent_holders(&self, lock: LockId) -> CoreSet {
        self.entries
            .get(&lock)
            .map(|h| h.union())
            .unwrap_or(CoreSet::empty())
    }

    /// Number of tracked locks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no locks are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Storage in bits (same per-entry accounting as [`SpTable`]).
    pub fn storage_bits(&self, num_cores: usize) -> u64 {
        let per_entry = (self.depth * num_cores) as u64 + 32 + 1;
        self.entries.len() as u64 * per_entry
    }
}

/// A handle to the lock table shared by every core's predictor.
///
/// The simulator is single-threaded, so plain shared ownership via
/// `Rc<RefCell<_>>` models the hardware's centralized/interleaved shared
/// entries (§4.6) without synchronization cost.
pub type SharedLockTable = Rc<RefCell<LockTable>>;

/// Creates a lock table shared across predictor instances.
pub fn shared_lock_table(depth: usize) -> SharedLockTable {
    Rc::new(RefCell::new(LockTable::new(depth)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcp_sync::{StaticSyncId, SyncKind};

    fn eid(raw: u32) -> EpochId {
        EpochId {
            kind: SyncKind::Barrier,
            static_id: StaticSyncId::new(raw),
        }
    }

    fn sig(bits: u64) -> CoreSet {
        CoreSet::from_bits(bits)
    }

    #[test]
    fn history_depth_bounds_storage() {
        let mut h = SigHistory::new(2);
        h.push(sig(0b001));
        h.push(sig(0b010));
        h.push(sig(0b100));
        assert_eq!(h.len(), 2);
        assert_eq!(h.newest(), Some(sig(0b100)));
        assert_eq!(h.previous(), Some(sig(0b010)));
    }

    #[test]
    fn stable_is_intersection_of_last_two() {
        let mut h = SigHistory::new(2);
        h.push(sig(0b011));
        assert_eq!(h.stable(), Some(sig(0b011)));
        h.push(sig(0b110));
        assert_eq!(h.stable(), Some(sig(0b010)));
    }

    #[test]
    fn union_covers_all_signatures() {
        let mut h = SigHistory::new(3);
        h.push(sig(0b001));
        h.push(sig(0b100));
        assert_eq!(h.union(), sig(0b101));
    }

    #[test]
    fn stride2_detection_fires_on_alternation() {
        let mut h = SigHistory::new(2);
        let a = sig(0b01);
        let b = sig(0b10);
        h.push(a);
        assert!(!h.stride2_detected());
        h.push(b);
        assert!(!h.stride2_detected());
        h.push(a); // matches the signature from two instances ago
        assert!(h.stride2_detected());
        h.push(b);
        assert!(h.stride2_detected());
    }

    #[test]
    fn stride2_not_fired_for_stable() {
        let mut h = SigHistory::new(2);
        let a = sig(0b01);
        h.push(a);
        h.push(a);
        h.push(a);
        assert!(!h.stride2_detected(), "stable pattern is not stride-2");
    }

    #[test]
    fn empty_history_queries() {
        let h = SigHistory::new(2);
        assert!(h.is_empty());
        assert_eq!(h.newest(), None);
        assert_eq!(h.previous(), None);
        assert_eq!(h.stable(), None);
        assert_eq!(h.union(), CoreSet::empty());
    }

    #[test]
    fn table_store_and_lookup() {
        let mut t = SpTable::new(2, None);
        assert!(t.is_empty());
        t.store(eid(1), sig(0b1));
        t.store(eid(1), sig(0b10));
        let h = t.history(eid(1)).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.newest(), Some(sig(0b10)));
        assert!(t.history(eid(2)).is_none());
    }

    #[test]
    fn capacity_evicts_lru_entry() {
        let mut t = SpTable::new(1, Some(2));
        t.store(eid(1), sig(1));
        t.store(eid(2), sig(2));
        // Touch entry 1 so entry 2 becomes LRU.
        assert!(t.history(eid(1)).is_some());
        t.store(eid(3), sig(4));
        assert_eq!(t.len(), 2);
        assert!(t.history(eid(1)).is_some());
        assert!(t.history(eid(2)).is_none(), "entry 2 was LRU");
        assert!(t.history(eid(3)).is_some());
    }

    #[test]
    fn unlimited_table_never_evicts() {
        let mut t = SpTable::new(1, None);
        for i in 0..100 {
            t.store(eid(i), sig(1));
        }
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn storage_accounting_matches_paper_shape() {
        // Two signatures of 16 bits + 32-bit tag + shared flag = 65 bits/entry.
        let mut t = SpTable::new(2, None);
        t.store(eid(1), sig(1));
        assert_eq!(t.storage_bits(16), 65);
        t.store(eid(2), sig(1));
        assert_eq!(t.storage_bits(16), 130);
    }

    #[test]
    fn set_associative_table_suffers_only_set_conflicts() {
        // 2 sets x 1 way: ids 1 and 3 conflict (both odd); id 2 does not.
        let mut t = SpTable::set_associative(1, 2, 1);
        t.store(eid(1), sig(1));
        t.store(eid(2), sig(2));
        assert_eq!(t.len(), 2);
        // id 3 evicts id 1 (same set) but leaves id 2 alone.
        t.store(eid(3), sig(4));
        assert!(t.history(eid(1)).is_none(), "conflict victim");
        assert!(t.history(eid(2)).is_some(), "other set untouched");
        assert!(t.history(eid(3)).is_some());
    }

    #[test]
    fn set_associative_ways_hold_conflicting_ids() {
        // 2 sets x 2 ways: three odd ids exceed the odd set's ways.
        let mut t = SpTable::set_associative(1, 2, 2);
        t.store(eid(1), sig(1));
        t.store(eid(3), sig(2));
        assert_eq!(t.len(), 2);
        t.store(eid(5), sig(4));
        assert_eq!(t.len(), 2, "set is bounded by its ways");
        assert!(t.history(eid(1)).is_none(), "LRU of the set evicted");
        assert!(t.history(eid(3)).is_some());
        assert!(t.history(eid(5)).is_some());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_geometry_rejected() {
        SpTable::set_associative(1, 0, 4);
    }

    #[test]
    fn lock_table_records_holder_sequence() {
        let mut lt = LockTable::new(2);
        assert!(lt.is_empty());
        lt.record_release(LockId::new(1), CoreId::new(3));
        lt.record_release(LockId::new(1), CoreId::new(8));
        let holders = lt.recent_holders(LockId::new(1));
        assert!(holders.contains(CoreId::new(3)));
        assert!(holders.contains(CoreId::new(8)));
        assert_eq!(holders.len(), 2);
        // Depth 2: a third release pushes the first holder out.
        lt.record_release(LockId::new(1), CoreId::new(0));
        let holders = lt.recent_holders(LockId::new(1));
        assert!(!holders.contains(CoreId::new(3)));
        assert_eq!(holders.len(), 2);
    }

    #[test]
    fn unknown_lock_has_no_holders() {
        let lt = LockTable::new(2);
        assert!(lt.recent_holders(LockId::new(9)).is_empty());
    }

    #[test]
    fn shared_lock_table_is_shared() {
        let shared = shared_lock_table(2);
        let clone = Rc::clone(&shared);
        clone
            .borrow_mut()
            .record_release(LockId::new(1), CoreId::new(4));
        assert!(shared
            .borrow()
            .recent_holders(LockId::new(1))
            .contains(CoreId::new(4)));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_history_rejected() {
        SigHistory::new(0);
    }
}
