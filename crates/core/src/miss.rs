//! Descriptions of the misses a target predictor is consulted about.

use spcp_mem::BlockAddr;
use std::fmt;

/// The kind of memory access that missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load miss: needs one data supplier.
    Read,
    /// Store miss: needs data plus invalidation of every sharer.
    Write,
    /// Store hit on a Shared/Forward line: needs invalidations only.
    Upgrade,
}

impl AccessKind {
    /// Whether the access requires exclusive ownership.
    pub fn is_exclusive(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Upgrade)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "RD",
            AccessKind::Write => "WR",
            AccessKind::Upgrade => "UP",
        };
        f.write_str(s)
    }
}

/// Everything a predictor may index on for one miss: the block address
/// (ADDR predictors), the static instruction (INST predictors), and the
/// access kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MissInfo {
    /// The missing cache block.
    pub block: BlockAddr,
    /// Program counter of the load/store instruction.
    pub pc: u32,
    /// Access kind.
    pub kind: AccessKind,
}

impl MissInfo {
    /// Creates a miss description.
    pub fn new(block: BlockAddr, pc: u32, kind: AccessKind) -> Self {
        MissInfo { block, pc, kind }
    }
}

impl fmt::Display for MissInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} pc=0x{:x}", self.kind, self.block, self.pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusivity() {
        assert!(!AccessKind::Read.is_exclusive());
        assert!(AccessKind::Write.is_exclusive());
        assert!(AccessKind::Upgrade.is_exclusive());
    }

    #[test]
    fn display_forms() {
        let m = MissInfo::new(BlockAddr::from_index(16), 0xff, AccessKind::Write);
        assert_eq!(m.to_string(), "WR blk:0x10 pc=0xff");
    }
}
