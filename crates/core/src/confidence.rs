//! Saturating confidence counters (§4.4's recovery mechanism).

/// An n-bit saturating up/down counter.
///
/// SP-prediction attaches a 4-bit instance to each active epoch predictor:
/// it starts fully set (high confidence), increments on sufficient
/// predictions, decrements otherwise, and reaching zero triggers predictor
/// recovery from the live communication counters.
///
/// # Examples
///
/// ```
/// use spcp_core::SatCounter;
///
/// let mut c = SatCounter::full(4);
/// assert_eq!(c.get(), 15);
/// c.dec();
/// assert_eq!(c.get(), 14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatCounter {
    value: u32,
    max: u32,
}

impl SatCounter {
    /// A counter of `bits` width starting at its maximum value.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31.
    pub fn full(bits: u32) -> Self {
        assert!((1..=31).contains(&bits), "counter width out of range");
        let max = (1 << bits) - 1;
        SatCounter { value: max, max }
    }

    /// A counter of `bits` width starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31.
    pub fn zero(bits: u32) -> Self {
        let mut c = Self::full(bits);
        c.value = 0;
        c
    }

    /// Current value.
    pub fn get(self) -> u32 {
        self.value
    }

    /// Maximum representable value.
    pub fn max(self) -> u32 {
        self.max
    }

    /// Increments, saturating at the maximum.
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    pub fn dec(&mut self) {
        self.value = self.value.saturating_sub(1);
    }

    /// Whether the counter has drained to zero (low confidence).
    pub fn is_zero(self) -> bool {
        self.value == 0
    }

    /// Resets to the maximum (fresh high confidence).
    pub fn refill(&mut self) {
        self.value = self.max;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_bit_counter_range() {
        let c = SatCounter::full(4);
        assert_eq!(c.get(), 15);
        assert_eq!(c.max(), 15);
    }

    #[test]
    fn saturates_both_ends() {
        let mut c = SatCounter::full(2);
        c.inc();
        assert_eq!(c.get(), 3);
        for _ in 0..10 {
            c.dec();
        }
        assert!(c.is_zero());
        c.dec();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn refill_restores_max() {
        let mut c = SatCounter::full(4);
        for _ in 0..15 {
            c.dec();
        }
        assert!(c.is_zero());
        c.refill();
        assert_eq!(c.get(), 15);
    }

    #[test]
    fn zero_constructor() {
        let c = SatCounter::zero(3);
        assert!(c.is_zero());
        assert_eq!(c.max(), 7);
    }

    #[test]
    fn drains_after_exactly_max_decrements() {
        let mut c = SatCounter::full(4);
        let mut steps = 0;
        while !c.is_zero() {
            c.dec();
            steps += 1;
        }
        assert_eq!(steps, 15);
    }

    #[test]
    #[should_panic(expected = "width out of range")]
    fn zero_width_rejected() {
        SatCounter::full(0);
    }
}
