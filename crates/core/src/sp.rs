//! The SP-predictor proper: prediction-policy engine of §4.

use crate::confidence::SatCounter;
use crate::counters::CommCounters;
use crate::miss::MissInfo;
use crate::predictor::{PredictionOutcome, TargetPredictor};
use crate::sptable::{shared_lock_table, SharedLockTable, SpTable};
use spcp_sim::{CoreId, CoreSet};
use spcp_sync::{EpochId, SyncKind, SyncPoint};

/// Tuning knobs of SP-prediction. Defaults reproduce the paper's evaluated
/// configuration (§5.1): history depth 2, 10% hot-set threshold, 30-miss
/// warm-up, 4-bit confidence, stride-2 pattern detection on.
#[derive(Debug, Clone, PartialEq)]
pub struct SpConfig {
    /// Signatures kept per SP-table entry (`d`). Paper: 2.
    pub history_depth: usize,
    /// Hot-set extraction threshold as a fraction of epoch volume. Paper:
    /// 0.10.
    pub hot_threshold: f64,
    /// Optional cap on hot-set size (bandwidth-bounding knob of §5.2).
    pub max_hot_set: Option<usize>,
    /// Misses to observe before a first-time epoch extracts a within-epoch
    /// predictor (`d = 0` policy). Paper: ~30.
    pub warmup_misses: u64,
    /// Minimum communication events for an instance's signature to be
    /// stored; quieter instances are "noisy" (§3.4) and excluded.
    pub noise_threshold: u64,
    /// Width of the confidence counter. Paper: 4 bits.
    pub confidence_bits: u32,
    /// Enables stride-2 repetitive-pattern prediction (§4.4).
    pub stride2_detection: bool,
    /// For critical sections, also union in the preceding epoch's
    /// signature (the coarse-critical-section extension of §4.4).
    pub lock_union_preceding: bool,
    /// Optional SP-table entry capacity (space-sensitivity study).
    pub table_capacity: Option<usize>,
    /// Optional §4.6 set-associative table organization `(sets, ways)`;
    /// overrides `table_capacity`.
    pub table_sets_ways: Option<(usize, usize)>,
}

impl Default for SpConfig {
    fn default() -> Self {
        SpConfig {
            history_depth: 2,
            hot_threshold: 0.10,
            max_hot_set: None,
            warmup_misses: 30,
            noise_threshold: 8,
            confidence_bits: 4,
            stride2_detection: true,
            lock_union_preceding: false,
            table_capacity: None,
            table_sets_ways: None,
        }
    }
}

/// Which policy produced the active predictor — the stack categories of
/// Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredSource {
    /// First-seen epoch: within-interval warm-up extraction (`d = 0`).
    D0,
    /// History-based signature prediction (`d ≥ 1`, incl. stride-2).
    History,
    /// Lock-holder union for a critical section.
    Lock,
    /// Replacement predictor installed by confidence recovery.
    Recovery,
}

/// Aggregate SP-prediction statistics for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpStats {
    /// Predictions attempted (non-empty predicted set).
    pub predictions: u64,
    /// Predictions that were sufficient, by source.
    pub correct_d0: u64,
    /// Correct history-based predictions.
    pub correct_history: u64,
    /// Correct lock-union predictions.
    pub correct_lock: u64,
    /// Correct recovery-installed predictions.
    pub correct_recovery: u64,
    /// Insufficient predictions.
    pub incorrect: u64,
    /// Misses for which no prediction was available.
    pub no_prediction: u64,
    /// Confidence-triggered recoveries.
    pub recoveries: u64,
    /// Sum of predicted-set sizes (for Table 5's mean).
    pub predicted_target_sum: u64,
    /// Epoch instances whose signature was stored.
    pub signatures_stored: u64,
    /// Epoch instances dropped as noise.
    pub noisy_instances: u64,
}

impl SpStats {
    /// Total sufficient predictions across all sources.
    pub fn correct(&self) -> u64 {
        self.correct_d0 + self.correct_history + self.correct_lock + self.correct_recovery
    }

    /// Merges another core's stats into this one.
    pub fn merge(&mut self, o: &SpStats) {
        self.predictions += o.predictions;
        self.correct_d0 += o.correct_d0;
        self.correct_history += o.correct_history;
        self.correct_lock += o.correct_lock;
        self.correct_recovery += o.correct_recovery;
        self.incorrect += o.incorrect;
        self.no_prediction += o.no_prediction;
        self.recoveries += o.recoveries;
        self.predicted_target_sum += o.predicted_target_sum;
        self.signatures_stored += o.signatures_stored;
        self.noisy_instances += o.noisy_instances;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Active {
    /// No prediction until warm-up completes, then extract from counters.
    WarmingUp,
    /// Predict with this set.
    Set(CoreSet, PredSource),
}

/// The per-core SP-predictor (§4): tracks sync-epochs, builds communication
/// signatures, and predicts miss targets from SP-table history.
///
/// # Examples
///
/// ```
/// use spcp_core::{AccessKind, MissInfo, PredictionOutcome, SpConfig, SpPredictor,
///                 TargetPredictor};
/// use spcp_mem::BlockAddr;
/// use spcp_sim::{CoreId, CoreSet};
/// use spcp_sync::{StaticSyncId, SyncPoint};
///
/// let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
/// let barrier = SyncPoint::barrier(StaticSyncId::new(1));
/// let miss = MissInfo::new(BlockAddr::from_index(0), 0, AccessKind::Read);
///
/// // Instance 0 of the epoch: communicate with core 5 a lot.
/// p.on_sync_point(barrier, None);
/// for _ in 0..20 {
///     p.train(&miss, PredictionOutcome {
///         actual: CoreSet::single(CoreId::new(5)),
///         predicted: CoreSet::empty(),
///         sufficient: false,
///     });
/// }
/// // Instance 1: history now predicts core 5.
/// p.on_sync_point(barrier, None);
/// assert!(p.predict(&miss).contains(CoreId::new(5)));
/// ```
#[derive(Debug)]
pub struct SpPredictor {
    me: CoreId,
    num_cores: usize,
    cfg: SpConfig,
    table: SpTable,
    locks: SharedLockTable,
    counters: CommCounters,
    epoch_misses: u64,
    current: Option<EpochId>,
    active: Active,
    confidence: SatCounter,
    preceding_sig: CoreSet,
    stats: SpStats,
}

impl SpPredictor {
    /// Creates a predictor for core `me` of a `num_cores` machine with a
    /// private lock table. Use [`with_lock_table`](SpPredictor::with_lock_table)
    /// to share lock entries machine-wide as the paper prescribes.
    pub fn new(me: CoreId, num_cores: usize, cfg: SpConfig) -> Self {
        let depth = cfg.history_depth;
        Self::with_lock_table(me, num_cores, cfg, shared_lock_table(depth))
    }

    /// Creates a predictor wired to a shared lock table.
    pub fn with_lock_table(
        me: CoreId,
        num_cores: usize,
        cfg: SpConfig,
        locks: SharedLockTable,
    ) -> Self {
        let confidence = SatCounter::full(cfg.confidence_bits);
        let table = match cfg.table_sets_ways {
            Some((sets, ways)) => SpTable::set_associative(cfg.history_depth, sets, ways),
            None => SpTable::new(cfg.history_depth, cfg.table_capacity),
        };
        SpPredictor {
            me,
            num_cores,
            table,
            locks,
            counters: CommCounters::new(num_cores),
            epoch_misses: 0,
            current: None,
            active: Active::WarmingUp,
            confidence,
            preceding_sig: CoreSet::empty(),
            cfg,
            stats: SpStats::default(),
        }
    }

    /// This core's accumulated statistics.
    pub fn stats(&self) -> &SpStats {
        &self.stats
    }

    /// The live communication counters (exposed for characterization
    /// harnesses).
    pub fn counters(&self) -> &CommCounters {
        &self.counters
    }

    /// The configuration in use.
    pub fn config(&self) -> &SpConfig {
        &self.cfg
    }

    /// Pre-seeds the SP-table with a profiled signature for `id` — the
    /// off-line profiling warm-start suggested in §5.2 to bridge part of
    /// the gap to ideal accuracy.
    pub fn preload(&mut self, id: EpochId, signature: CoreSet) {
        let mut sig = signature;
        sig.remove(self.me);
        self.table.store(id, sig);
    }

    /// The currently active prediction set, if any (diagnostics).
    pub fn active_set(&self) -> Option<CoreSet> {
        match self.active {
            Active::Set(s, _) => Some(s),
            Active::WarmingUp => None,
        }
    }

    fn extract_hot_set(&self) -> CoreSet {
        let mut hot = self
            .counters
            .hot_set(self.cfg.hot_threshold, self.cfg.max_hot_set);
        hot.remove(self.me);
        hot
    }

    /// Ends the current epoch: extract + store its signature (Table 2).
    fn finish_epoch(&mut self) {
        let Some(id) = self.current else { return };
        if id.kind == SyncKind::Lock {
            // Critical-section history lives in the shared lock table and
            // is recorded at release time (see `on_sync_point` for Unlock).
            return;
        }
        if self.counters.total() >= self.cfg.noise_threshold {
            let sig = self.extract_hot_set();
            self.table.store(id, sig);
            self.preceding_sig = sig;
            self.stats.signatures_stored += 1;
        } else {
            self.stats.noisy_instances += 1;
        }
    }

    /// Forms the predictor for a newly begun epoch (Table 3).
    fn form_predictor(&mut self, point: SyncPoint, prev_lock_holder: Option<CoreId>) {
        if point.kind == SyncKind::Lock {
            let lock = point.lock.expect("lock sync-point carries its lock id");
            let mut set = self.locks.borrow().recent_holders(lock);
            if let Some(h) = prev_lock_holder {
                set.insert(h);
            }
            if self.cfg.lock_union_preceding {
                set = set.union(self.preceding_sig);
            }
            set.remove(self.me);
            self.active = if set.is_empty() {
                Active::WarmingUp
            } else {
                Active::Set(set, PredSource::Lock)
            };
            return;
        }

        let id = EpochId {
            kind: point.kind,
            static_id: point.static_id,
        };
        let stride2 = self.cfg.stride2_detection;
        let formed = self.table.history(id).and_then(|h| {
            if h.is_empty() {
                None
            } else if h.len() >= 2 {
                let newer = h.newest().expect("len >= 2");
                let older = h.previous().expect("len >= 2");
                let set = if stride2 && h.stride2_detected() {
                    // Alternating pattern: the next instance repeats the
                    // older of the two stored signatures.
                    older
                } else if newer == older {
                    newer
                } else {
                    let stable = newer.intersect(older);
                    if stable.is_empty() {
                        newer
                    } else {
                        stable
                    }
                };
                Some(set)
            } else {
                h.newest()
            }
        });
        self.active = match formed {
            Some(mut set) => {
                set.remove(self.me);
                if set.is_empty() {
                    Active::WarmingUp
                } else {
                    Active::Set(set, PredSource::History)
                }
            }
            None => Active::WarmingUp,
        };
    }
}

impl TargetPredictor for SpPredictor {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn predict(&mut self, _miss: &MissInfo) -> CoreSet {
        self.epoch_misses += 1;
        if let Active::WarmingUp = self.active {
            if self.epoch_misses >= self.cfg.warmup_misses && self.counters.total() > 0 {
                let hot = self.extract_hot_set();
                if !hot.is_empty() {
                    self.active = Active::Set(hot, PredSource::D0);
                    self.confidence.refill();
                }
            }
        }
        match self.active {
            Active::Set(s, _) => s,
            Active::WarmingUp => CoreSet::empty(),
        }
    }

    fn train(&mut self, _miss: &MissInfo, outcome: PredictionOutcome) {
        // Table 2: count data responses and invalidation acks.
        self.counters.record_set(outcome.actual);

        if outcome.predicted.is_empty() {
            self.stats.no_prediction += 1;
            return;
        }
        self.stats.predictions += 1;
        self.stats.predicted_target_sum += outcome.predicted.len() as u64;

        let source = match self.active {
            Active::Set(_, src) => src,
            Active::WarmingUp => PredSource::D0,
        };
        if outcome.sufficient {
            // The Figure 7 breakdown is over *communicating* misses;
            // trivially-sufficient predictions on memory-serviced misses
            // carry no information.
            if !outcome.actual.is_empty() {
                match source {
                    PredSource::D0 => self.stats.correct_d0 += 1,
                    PredSource::History => self.stats.correct_history += 1,
                    PredSource::Lock => self.stats.correct_lock += 1,
                    PredSource::Recovery => self.stats.correct_recovery += 1,
                }
            }
            self.confidence.inc();
        } else {
            self.stats.incorrect += 1;
            self.confidence.dec();
            if self.confidence.is_zero() {
                // §4.4 recovery: rebuild from the live counters.
                self.stats.recoveries += 1;
                let hot = self.extract_hot_set();
                self.active = if hot.is_empty() {
                    Active::WarmingUp
                } else {
                    Active::Set(hot, PredSource::Recovery)
                };
                self.confidence.refill();
            }
        }
    }

    fn on_sync_point(&mut self, point: SyncPoint, prev_lock_holder: Option<CoreId>) {
        // 1. Close the ending epoch and store its signature.
        self.finish_epoch();

        // 2. A release records this core as the lock's last holder (§4.2).
        if point.kind == SyncKind::Unlock {
            if let Some(lock) = point.lock {
                self.locks.borrow_mut().record_release(lock, self.me);
            }
        }

        // 3. Begin the new epoch: reset counters, form the predictor.
        self.counters.reset();
        self.epoch_misses = 0;
        self.confidence.refill();
        self.current = Some(EpochId {
            kind: point.kind,
            static_id: point.static_id,
        });
        self.form_predictor(point, prev_lock_holder);
    }

    fn storage_bits(&self) -> u64 {
        // Per-core slice + this core's share of the machine-wide lock
        // entries + fixed cost: communication counters (1 byte per core)
        // and the predictor register (§5.4: 17 bytes fixed for 16 cores),
        // plus the 4-bit confidence counter.
        let lock_share = self.locks.borrow().storage_bits(self.num_cores) / self.num_cores as u64;
        self.table.storage_bits(self.num_cores)
            + lock_share
            + (self.num_cores as u64 * 8)
            + self.num_cores as u64
            + self.cfg.confidence_bits as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miss::AccessKind;
    use spcp_mem::BlockAddr;
    use spcp_sync::{LockId, StaticSyncId};

    fn miss() -> MissInfo {
        MissInfo::new(BlockAddr::from_index(0), 0x100, AccessKind::Read)
    }

    fn barrier(id: u32) -> SyncPoint {
        SyncPoint::barrier(StaticSyncId::new(id))
    }

    fn outcome(actual_bits: u64, predicted: CoreSet) -> PredictionOutcome {
        let actual = CoreSet::from_bits(actual_bits);
        PredictionOutcome {
            actual,
            predicted,
            sufficient: !predicted.is_empty() && predicted.is_superset(actual),
        }
    }

    /// Runs one epoch instance in which every miss communicates with
    /// `targets`, returning the predictions made.
    fn run_epoch(p: &mut SpPredictor, point: SyncPoint, targets: u64, misses: u64) -> Vec<CoreSet> {
        p.on_sync_point(point, None);
        let mut preds = Vec::new();
        for _ in 0..misses {
            let pred = p.predict(&miss());
            preds.push(pred);
            p.train(&miss(), outcome(targets, pred));
        }
        preds
    }

    #[test]
    fn no_prediction_before_history_or_warmup() {
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        p.on_sync_point(barrier(1), None);
        assert!(p.predict(&miss()).is_empty());
        assert!(p.active_set().is_none());
    }

    #[test]
    fn d0_warmup_extracts_within_epoch_hot_set() {
        let cfg = SpConfig {
            warmup_misses: 5,
            ..SpConfig::default()
        };
        let mut p = SpPredictor::new(CoreId::new(0), 16, cfg);
        let preds = run_epoch(&mut p, barrier(1), 0b10_0000, 10);
        assert!(preds[..4].iter().all(|s| s.is_empty()));
        // After 5 misses the warm-up predictor kicks in (targets = core 5).
        assert!(preds[5].contains(CoreId::new(5)));
        assert!(p.stats().correct_d0 > 0);
    }

    #[test]
    fn second_instance_predicts_from_history() {
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        run_epoch(&mut p, barrier(1), 0b100, 20); // instance 0: core 2
        let preds = run_epoch(&mut p, barrier(1), 0b100, 10);
        // From the very first miss of instance 1 the prediction is ready.
        assert_eq!(preds[0], CoreSet::from_bits(0b100));
        assert!(p.stats().correct_history >= 10);
    }

    #[test]
    fn stable_pattern_predicts_intersection() {
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        // Two instances with overlapping hot sets {1,2} then {2,3}:
        run_epoch(&mut p, barrier(1), 0b0110, 20);
        run_epoch(&mut p, barrier(1), 0b1100, 20);
        p.on_sync_point(barrier(1), None);
        // Stable destination is core 2 (bit 2).
        assert_eq!(p.predict(&miss()), CoreSet::from_bits(0b0100));
    }

    #[test]
    fn stride2_pattern_predicts_alternation() {
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        let a = 0b0010u64; // core 1
        let b = 0b1000u64; // core 3
                           // Alternating hot sets a, b, a — disjoint, so intersection would fail.
        run_epoch(&mut p, barrier(1), a, 20);
        run_epoch(&mut p, barrier(1), b, 20);
        run_epoch(&mut p, barrier(1), a, 20);
        p.on_sync_point(barrier(1), None);
        // Next in the alternation is b.
        assert_eq!(p.predict(&miss()), CoreSet::from_bits(b));
    }

    #[test]
    fn stride2_disabled_falls_back_to_newest() {
        let cfg = SpConfig {
            stride2_detection: false,
            ..SpConfig::default()
        };
        let mut p = SpPredictor::new(CoreId::new(0), 16, cfg);
        let a = 0b0010u64;
        let b = 0b1000u64;
        run_epoch(&mut p, barrier(1), a, 20);
        run_epoch(&mut p, barrier(1), b, 20);
        run_epoch(&mut p, barrier(1), a, 20);
        p.on_sync_point(barrier(1), None);
        // Disjoint intersection -> newest signature (a).
        assert_eq!(p.predict(&miss()), CoreSet::from_bits(a));
    }

    #[test]
    fn noisy_instances_store_no_signature() {
        let cfg = SpConfig {
            noise_threshold: 8,
            ..SpConfig::default()
        };
        let mut p = SpPredictor::new(CoreId::new(0), 16, cfg);
        run_epoch(&mut p, barrier(1), 0b10, 3); // below noise threshold
                                                // The instance ends at the next sync-point, where it is classified.
        p.on_sync_point(barrier(1), None);
        assert_eq!(p.stats().noisy_instances, 1);
        assert_eq!(p.stats().signatures_stored, 0);
        // The new instance therefore still has no history.
        assert!(p.predict(&miss()).is_empty());
    }

    #[test]
    fn confidence_recovery_replaces_stale_predictor() {
        let cfg = SpConfig {
            confidence_bits: 2, // drains after 3 misses
            ..SpConfig::default()
        };
        let mut p = SpPredictor::new(CoreId::new(0), 16, cfg);
        run_epoch(&mut p, barrier(1), 0b10, 20); // history: core 1
                                                 // Instance 1 actually communicates with core 7 instead.
        p.on_sync_point(barrier(1), None);
        let mut recovered = false;
        for _ in 0..20 {
            let pred = p.predict(&miss());
            p.train(&miss(), outcome(0b1000_0000, pred));
            if pred.contains(CoreId::new(7)) {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "recovery must adapt to the new hot set");
        assert!(p.stats().recoveries >= 1);
        assert!(p.stats().correct_recovery > 0);
    }

    #[test]
    fn lock_epoch_predicts_recent_holders() {
        let locks = shared_lock_table(2);
        let mut p0 = SpPredictor::with_lock_table(
            CoreId::new(0),
            16,
            SpConfig::default(),
            std::rc::Rc::clone(&locks),
        );
        let mut p1 = SpPredictor::with_lock_table(
            CoreId::new(1),
            16,
            SpConfig::default(),
            std::rc::Rc::clone(&locks),
        );
        let lock = LockId::new(7);
        // Core 1 holds and releases the lock.
        p1.on_sync_point(SyncPoint::lock(lock), None);
        p1.on_sync_point(SyncPoint::unlock(lock), None);
        // Core 0 then acquires: prediction = last holder (core 1).
        p0.on_sync_point(SyncPoint::lock(lock), None);
        assert_eq!(p0.predict(&miss()), CoreSet::single(CoreId::new(1)));
    }

    #[test]
    fn lock_prediction_never_includes_self() {
        let locks = shared_lock_table(2);
        let mut p0 = SpPredictor::with_lock_table(
            CoreId::new(0),
            16,
            SpConfig::default(),
            std::rc::Rc::clone(&locks),
        );
        let lock = LockId::new(3);
        // Core 0 itself was the last holder.
        p0.on_sync_point(SyncPoint::lock(lock), None);
        p0.on_sync_point(SyncPoint::unlock(lock), None);
        p0.on_sync_point(SyncPoint::lock(lock), None);
        assert!(p0.predict(&miss()).is_empty());
    }

    #[test]
    fn prev_lock_holder_hint_is_used() {
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        p.on_sync_point(SyncPoint::lock(LockId::new(1)), Some(CoreId::new(9)));
        assert!(p.predict(&miss()).contains(CoreId::new(9)));
    }

    #[test]
    fn self_is_never_predicted() {
        let mut p = SpPredictor::new(CoreId::new(4), 16, SpConfig::default());
        // Communicate only with "self" (degenerate input).
        p.on_sync_point(barrier(1), None);
        for _ in 0..40 {
            let pred = p.predict(&miss());
            p.train(&miss(), outcome(0b1_0000, pred)); // bit 4 = self
        }
        p.on_sync_point(barrier(1), None);
        assert!(!p.predict(&miss()).contains(CoreId::new(4)));
    }

    #[test]
    fn stats_track_prediction_counts() {
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        run_epoch(&mut p, barrier(1), 0b10, 20);
        run_epoch(&mut p, barrier(1), 0b10, 10);
        let s = p.stats();
        assert!(s.predictions > 0);
        assert!(s.correct() > 0);
        assert_eq!(
            s.correct(),
            s.correct_d0 + s.correct_history + s.correct_lock + s.correct_recovery
        );
        assert!(s.no_prediction > 0); // the pre-warm-up misses of instance 0
        assert!(s.predicted_target_sum >= s.predictions);
    }

    #[test]
    fn stats_merge_is_additive() {
        let mut a = SpStats {
            predictions: 1,
            correct_history: 1,
            ..SpStats::default()
        };
        let b = SpStats {
            predictions: 2,
            incorrect: 2,
            ..SpStats::default()
        };
        a.merge(&b);
        assert_eq!(a.predictions, 3);
        assert_eq!(a.incorrect, 2);
        assert_eq!(a.correct(), 1);
    }

    #[test]
    fn storage_is_small_and_grows_with_entries() {
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        let empty_bits = p.storage_bits();
        run_epoch(&mut p, barrier(1), 0b10, 20);
        run_epoch(&mut p, barrier(2), 0b10, 20);
        run_epoch(&mut p, barrier(3), 0b10, 20);
        assert!(p.storage_bits() > empty_bits);
        // Paper §4.6: ~2 KB aggregate is adequate; one core's slice with a
        // handful of entries must be far below that.
        assert!(p.storage_bits() < 2 * 8 * 1024);
    }

    #[test]
    fn stable_switch_adapts_after_one_wrong_instance() {
        // Hot set switches from core 1 to core 7 at instance 2 and stays:
        // d = 2 intersection should track the new stable set by instance 4.
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        run_epoch(&mut p, barrier(1), 0b0010, 20);
        run_epoch(&mut p, barrier(1), 0b0010, 20);
        run_epoch(&mut p, barrier(1), 0b1000_0000, 20); // the switch
        run_epoch(&mut p, barrier(1), 0b1000_0000, 20);
        p.on_sync_point(barrier(1), None);
        assert_eq!(p.predict(&miss()), CoreSet::from_bits(0b1000_0000));
    }

    #[test]
    fn max_hot_set_caps_predictions() {
        let cfg = SpConfig {
            max_hot_set: Some(1),
            ..SpConfig::default()
        };
        let mut p = SpPredictor::new(CoreId::new(0), 16, cfg);
        // Four equally hot targets; the cap keeps only the hottest one.
        run_epoch(&mut p, barrier(1), 0b1_1110, 40);
        p.on_sync_point(barrier(1), None);
        assert_eq!(p.predict(&miss()).len(), 1);
    }

    #[test]
    fn warmup_boundary_is_exact() {
        let cfg = SpConfig {
            warmup_misses: 3,
            ..SpConfig::default()
        };
        let mut p = SpPredictor::new(CoreId::new(0), 16, cfg);
        p.on_sync_point(barrier(1), None);
        for i in 0..2 {
            let pred = p.predict(&miss());
            assert!(pred.is_empty(), "miss {i} is still warm-up");
            p.train(&miss(), outcome(0b10, pred));
        }
        // The 3rd miss reaches the warm-up count with activity recorded,
        // so extraction happens exactly there.
        assert!(!p.predict(&miss()).is_empty());
    }

    #[test]
    fn preload_seeds_first_instance_prediction() {
        use spcp_sync::{EpochId, SyncKind};
        let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
        p.preload(
            EpochId {
                kind: SyncKind::Barrier,
                static_id: StaticSyncId::new(5),
            },
            CoreSet::from_bits(0b100),
        );
        p.on_sync_point(barrier(5), None);
        assert_eq!(p.predict(&miss()), CoreSet::from_bits(0b100));
    }

    #[test]
    fn preload_strips_self() {
        use spcp_sync::{EpochId, SyncKind};
        let mut p = SpPredictor::new(CoreId::new(2), 16, SpConfig::default());
        p.preload(
            EpochId {
                kind: SyncKind::Barrier,
                static_id: StaticSyncId::new(5),
            },
            CoreSet::from_bits(0b0110), // includes self (bit 2)
        );
        p.on_sync_point(barrier(5), None);
        assert_eq!(p.predict(&miss()), CoreSet::from_bits(0b0010));
    }

    #[test]
    fn depth_one_config_uses_last_signature_only() {
        let cfg = SpConfig {
            history_depth: 1,
            stride2_detection: false,
            ..SpConfig::default()
        };
        let mut p = SpPredictor::new(CoreId::new(0), 16, cfg);
        let a = 0b0010u64;
        let b = 0b1000u64;
        run_epoch(&mut p, barrier(1), a, 20);
        run_epoch(&mut p, barrier(1), b, 20);
        p.on_sync_point(barrier(1), None);
        // With d = 1 only the most recent signature survives.
        assert_eq!(p.predict(&miss()), CoreSet::from_bits(b));
    }

    #[test]
    fn table_capacity_limits_entries() {
        let cfg = SpConfig {
            table_capacity: Some(2),
            warmup_misses: 1000, // isolate history-based prediction
            ..SpConfig::default()
        };
        let mut p = SpPredictor::new(CoreId::new(0), 16, cfg);
        for sid in 1..=3u32 {
            run_epoch(&mut p, barrier(sid), 0b10, 20);
        }
        // Epoch 1 was evicted by epochs 2 and 3 -> no history prediction.
        p.on_sync_point(barrier(1), None);
        assert!(p.predict(&miss()).is_empty());
        // Epoch 3 is resident.
        p.on_sync_point(barrier(3), None);
        assert!(!p.predict(&miss()).is_empty());
    }
}
