//! **SP-prediction** — Synchronization-Point based coherence target
//! prediction, the primary contribution of the reproduced paper
//! (Demetriades & Cho, MICRO 2012).
//!
//! On an L2 miss that other caches must service (a *communicating miss*),
//! a directory protocol pays an indirection through the block's home node.
//! SP-prediction predicts the destination set and sends the request straight
//! to those caches, racing the directory. The predictor exploits two
//! workload properties established in the paper's §3:
//!
//! 1. **communication locality** — within one sync-epoch a core talks to a
//!    small, stable *hot communication set*;
//! 2. **epoch repeatability** — across dynamic instances of the same static
//!    epoch the hot set follows stable or periodic patterns.
//!
//! The crate provides:
//!
//! * [`TargetPredictor`] — the socket every predictor (SP and the
//!   ADDR/INST/UNI baselines in `spcp-baselines`) plugs into;
//! * [`CommCounters`] — per-destination communication-volume counters and
//!   hot-set extraction (§3.3);
//! * [`SpTable`] — the tiny signature-history table (§4.3), including the
//!   globally shared lock entries;
//! * [`SpPredictor`] — the full prediction policy engine (§4.4): d=0
//!   warm-up, d=1 last-signature, d=2 stable-intersection, stride-2 pattern
//!   detection, lock-holder-union, and confidence-triggered recovery.
//!
//! # Examples
//!
//! ```
//! use spcp_core::{AccessKind, MissInfo, SpConfig, SpPredictor, TargetPredictor};
//! use spcp_mem::BlockAddr;
//! use spcp_sim::CoreId;
//! use spcp_sync::{StaticSyncId, SyncPoint};
//!
//! let mut p = SpPredictor::new(CoreId::new(0), 16, SpConfig::default());
//! // First instance of epoch A: no history, no prediction until warm-up.
//! p.on_sync_point(SyncPoint::barrier(StaticSyncId::new(1)), None);
//! let miss = MissInfo::new(BlockAddr::from_index(64), 0x400, AccessKind::Read);
//! assert!(p.predict(&miss).is_empty());
//! ```

#![warn(missing_docs)]

pub mod confidence;
pub mod counters;
pub mod miss;
pub mod predictor;
pub mod sp;
pub mod sptable;

pub use confidence::SatCounter;
pub use counters::CommCounters;
pub use miss::{AccessKind, MissInfo};
pub use predictor::{PredictionOutcome, TargetPredictor};
pub use sp::{PredSource, SpConfig, SpPredictor, SpStats};
pub use sptable::{shared_lock_table, LockTable, SharedLockTable, SigHistory, SpTable};
