//! The common predictor interface every scheme implements.

use crate::miss::MissInfo;
use spcp_sim::{CoreId, CoreSet};
use spcp_sync::SyncPoint;

/// What actually happened for a miss, fed back to the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictionOutcome {
    /// The minimal sufficient target set as determined by the directory
    /// (empty for non-communicating misses).
    pub actual: CoreSet,
    /// The set that was predicted (empty when no prediction was attempted).
    pub predicted: CoreSet,
    /// Whether `predicted` was sufficient, i.e. a superset of `actual`
    /// *and* a prediction was actually made.
    pub sufficient: bool,
}

/// A coherence-target predictor.
///
/// One instance lives next to each L2 controller. On every miss the
/// controller calls [`predict`](TargetPredictor::predict); a non-empty
/// result causes predicted requests to be issued in parallel with the
/// directory request (§4.5). When the transaction completes the controller
/// calls [`train`](TargetPredictor::train) with the true targets.
///
/// The remaining hooks feed the information streams the different schemes
/// need and default to no-ops:
///
/// * [`on_sync_point`](TargetPredictor::on_sync_point) — SP-prediction's
///   epoch boundary notification (with the previous lock holder for lock
///   points);
/// * [`observe_remote_request`](TargetPredictor::observe_remote_request) —
///   an incoming coherence request from another core touched `block`,
///   letting ADDR/INST entries learn future owners from external requests.
pub trait TargetPredictor {
    /// Short scheme name for reports (e.g. `"SP"`, `"ADDR"`).
    fn name(&self) -> &'static str;

    /// Predicts the set of cores sufficient to satisfy `miss`. Empty means
    /// "no prediction — go through the directory only".
    fn predict(&mut self, miss: &MissInfo) -> CoreSet;

    /// Feeds back the outcome of a completed miss.
    fn train(&mut self, miss: &MissInfo, outcome: PredictionOutcome);

    /// Notifies the predictor that its core executed a sync-point.
    ///
    /// `prev_lock_holder` carries the core that last held the lock for
    /// `Lock` points (the release signature of §4.2), when known.
    fn on_sync_point(&mut self, _point: SyncPoint, _prev_lock_holder: Option<CoreId>) {}

    /// Notifies the predictor that a remote `requester` sent a coherence
    /// request for `block` (observed at this core's cache).
    fn observe_remote_request(&mut self, _miss: &MissInfo, _requester: CoreId) {}

    /// Storage the scheme currently occupies, in bits (tags included where
    /// applicable); the fig. 13 space-efficiency comparison.
    fn storage_bits(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miss::AccessKind;
    use spcp_mem::BlockAddr;

    /// A trivial predictor used to pin down the trait's object safety and
    /// default hooks.
    struct Always(CoreSet);

    impl TargetPredictor for Always {
        fn name(&self) -> &'static str {
            "ALWAYS"
        }
        fn predict(&mut self, _miss: &MissInfo) -> CoreSet {
            self.0
        }
        fn train(&mut self, _miss: &MissInfo, _outcome: PredictionOutcome) {}
        fn storage_bits(&self) -> u64 {
            64
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let set = CoreSet::from_bits(0b10);
        let mut p: Box<dyn TargetPredictor> = Box::new(Always(set));
        let miss = MissInfo::new(BlockAddr::from_index(0), 0, AccessKind::Read);
        assert_eq!(p.predict(&miss), set);
        assert_eq!(p.name(), "ALWAYS");
        // Default hooks are callable no-ops.
        p.on_sync_point(
            spcp_sync::SyncPoint::barrier(spcp_sync::StaticSyncId::new(1)),
            None,
        );
        p.observe_remote_request(&miss, CoreId::new(3));
    }

    #[test]
    fn outcome_records_sufficiency() {
        let o = PredictionOutcome {
            actual: CoreSet::from_bits(0b1),
            predicted: CoreSet::from_bits(0b11),
            sufficient: true,
        };
        assert!(o.predicted.is_superset(o.actual));
        assert!(o.sufficient);
    }
}
