//! The timed network fabric: wormhole-approximate contention, bandwidth and
//! energy accounting.

#[cfg(test)]
use crate::mesh::Link;
use crate::mesh::{Coord, Direction, Mesh};
use crate::message::MsgKind;
use spcp_sim::{CoreId, Cycle};

/// Configuration of the mesh NoC (defaults = Table 4 of the paper).
///
/// # Examples
///
/// ```
/// use spcp_noc::NocConfig;
///
/// let cfg = NocConfig::default();
/// assert_eq!(cfg.width, 4);
/// assert_eq!(cfg.router_cycles, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NocConfig {
    /// Mesh width (columns). Paper: 4.
    pub width: usize,
    /// Mesh height (rows). Paper: 4.
    pub height: usize,
    /// Router pipeline depth in cycles. Paper: 2-stage.
    pub router_cycles: u64,
    /// Link traversal latency in cycles.
    pub link_cycles: u64,
    /// Flit width in bytes (serialization granularity).
    pub flit_bytes: u64,
    /// Energy to move one byte over one link, in arbitrary units.
    pub link_energy_per_byte: f64,
    /// Energy to move one byte through one router; the paper's §5.3 model
    /// sets this to 4× the link energy.
    pub router_energy_per_byte: f64,
    /// When `false`, link contention is ignored and every message sees the
    /// uncontended pipeline latency (useful for analytic tests).
    pub model_contention: bool,
    /// Virtual channels per directed link: concurrent reservations a link
    /// can hold before the head flit must queue.
    pub virtual_channels: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        let link = 1.0;
        NocConfig {
            width: 4,
            height: 4,
            router_cycles: 2,
            link_cycles: 1,
            flit_bytes: 16,
            link_energy_per_byte: link,
            router_energy_per_byte: 4.0 * link,
            model_contention: true,
            virtual_channels: 4,
        }
    }
}

impl NocConfig {
    /// Number of nodes in the mesh.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }
}

/// Aggregate traffic statistics for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NocStats {
    /// Number of messages injected.
    pub messages: u64,
    /// Total bytes injected (sum of message sizes).
    pub bytes_injected: u64,
    /// Total byte·hops moved (bytes × links traversed); the bandwidth
    /// measure used for the paper's Figure 9.
    pub byte_hops: u64,
    /// Byte·hops of control-only messages (requests, probes, acks); the
    /// "request bandwidth" the destination-set-prediction literature
    /// compares on.
    pub ctrl_byte_hops: u64,
    /// Total energy consumed in links and routers (arbitrary units).
    pub energy: f64,
    /// Cycles messages spent waiting for contended links.
    pub contention_cycles: u64,
}

impl NocStats {
    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &NocStats) {
        self.messages += other.messages;
        self.bytes_injected += other.bytes_injected;
        self.byte_hops += other.byte_hops;
        self.ctrl_byte_hops += other.ctrl_byte_hops;
        self.energy += other.energy;
        self.contention_cycles += other.contention_cycles;
    }
}

/// The timed mesh network.
///
/// `Fabric` routes each message along its deterministic X-Y path, reserving
/// each directed link for the message's serialization time. The head flit
/// pays `router_cycles + link_cycles` per hop; the tail occupies each link
/// for `ceil(bytes / flit_bytes)` cycles, so back-to-back messages over a
/// shared link queue behind each other — a faithful first-order wormhole
/// approximation without per-flit simulation.
///
/// Zero-hop messages (to the local tile) are delivered immediately and add
/// no traffic.
///
/// # Examples
///
/// ```
/// use spcp_noc::{Fabric, MsgKind, NocConfig};
/// use spcp_sim::{CoreId, Cycle};
///
/// let mut f = Fabric::new(NocConfig::default());
/// let t1 = f.send(CoreId::new(0), CoreId::new(1), MsgKind::Request, Cycle::ZERO);
/// // one hop: 2-cycle router + 1-cycle link
/// assert_eq!(t1, Cycle::new(3));
/// assert_eq!(f.stats().messages, 1);
/// ```
#[derive(Debug)]
pub struct Fabric {
    mesh: Mesh,
    cfg: NocConfig,
    /// Virtual channels per directed link (`cfg.virtual_channels.max(1)`,
    /// cached for the indexing math below).
    vcs: usize,
    /// Next cycle at which each virtual channel of each directed link is
    /// free. The directed links of a mesh are a small dense set — at most
    /// 4 per node — so reservations live in one flat array indexed by
    /// `(node × 4 + direction) × vcs + vc`: no hashing, no per-link heap
    /// allocation, and `reset` is a `fill`.
    link_free: Vec<Cycle>,
    /// Per-link last-commit watermark: the latest reservation end ever
    /// written to any VC of the link. Every commit raises it, so no VC
    /// slot may hold a cycle beyond it — the invariant [`Fabric::audit`]
    /// checks after batched route commits.
    last_commit: Vec<Cycle>,
    /// Scratch for the batched reservation path: the dense link index
    /// (`node × 4 + direction`) of every hop of the current route, in
    /// travel order. A link's VC slot base is `link × vcs`, so staging
    /// indices instead of bases keeps the commit pass free of divisions.
    /// Reused across sends — capacity stabilizes at the mesh diameter,
    /// keeping the hot path allocation-free.
    route_links: Vec<usize>,
    stats: NocStats,
}

impl Fabric {
    /// Creates a fabric from a configuration.
    pub fn new(cfg: NocConfig) -> Self {
        let vcs = cfg.virtual_channels.max(1);
        Fabric {
            mesh: Mesh::new(cfg.width, cfg.height),
            vcs,
            link_free: vec![Cycle::ZERO; cfg.nodes() * 4 * vcs],
            last_commit: vec![Cycle::ZERO; cfg.nodes() * 4],
            route_links: Vec::with_capacity(cfg.width + cfg.height),
            cfg,
            stats: NocStats::default(),
        }
    }

    /// Start of `link`'s VC slot range inside `link_free`. The batched
    /// path derives bases from staged link indices instead; this per-link
    /// derivation remains the oracle the staging tests check against.
    #[cfg(test)]
    fn link_base(&self, link: Link) -> usize {
        debug_assert!(
            link.from < self.cfg.nodes() && link.dir.index() < 4,
            "link {:?} outside the {}-node reservation table",
            link,
            self.cfg.nodes()
        );
        let base = (link.from * 4 + link.dir.index()) * self.vcs;
        debug_assert!(
            base + self.vcs <= self.link_free.len(),
            "VC slot range [{base}, {}) exceeds reservation table of {}",
            base + self.vcs,
            self.link_free.len()
        );
        base
    }

    /// The underlying topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Resets statistics and link reservations (used between measurement
    /// phases).
    pub fn reset(&mut self) {
        self.link_free.fill(Cycle::ZERO);
        self.last_commit.fill(Cycle::ZERO);
        self.stats = NocStats::default();
    }

    /// Number of flits a message of `bytes` serializes into.
    fn flits(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.cfg.flit_bytes).max(1)
    }

    /// Sends one message, returning its arrival time at `dst`.
    ///
    /// Accounts bandwidth and energy, and models head-of-line link
    /// contention when enabled. A message to the local tile arrives
    /// immediately.
    ///
    /// Reservations are batched: [`Fabric::stage_route`] derives the VC
    /// slot base of every hop of the X-Y route once — two strided
    /// arithmetic legs, no per-hop `Link` construction or base re-derive —
    /// and [`Fabric::commit_reservations`] then commits all hops in a
    /// single pass over `link_free`.
    pub fn send(&mut self, src: CoreId, dst: CoreId, kind: MsgKind, depart: Cycle) -> Cycle {
        let bytes = kind.bytes();
        self.stats.messages += 1;
        self.stats.bytes_injected += bytes;

        if src == dst {
            return depart;
        }

        let a = self.mesh.coord_of(src);
        let b = self.mesh.coord_of(dst);
        let hops = (a.x.abs_diff(b.x) + a.y.abs_diff(b.y)) as u64;
        self.stats.byte_hops += bytes * hops;
        if !kind.carries_data() {
            self.stats.ctrl_byte_hops += bytes * hops;
        }
        // §5.3 model: each hop moves the bytes through one router + one link.
        self.stats.energy += bytes as f64
            * hops as f64
            * (self.cfg.link_energy_per_byte + self.cfg.router_energy_per_byte);

        if !self.cfg.model_contention {
            // Pure pipeline latency; no reservation state to touch.
            return depart + hops * (self.cfg.router_cycles + self.cfg.link_cycles);
        }

        let flits = self.flits(bytes);
        self.stage_route(a, b);
        self.commit_reservations(depart, flits)
    }

    /// Pass 1 of the batched reservation: fills `route_links` with the
    /// dense link index of every hop of the X-Y route `a → b`, in travel
    /// order.
    ///
    /// Adjacent hops of a leg differ by a fixed stride (±4 along a row,
    /// ±`4 × width` along a column), so the whole list is two strided
    /// walks — no per-hop `Link` construction or coordinate math.
    #[inline]
    fn stage_route(&mut self, a: Coord, b: Coord) {
        self.route_links.clear();
        let width = self.cfg.width;
        if b.x != a.x {
            let east = b.x > a.x;
            let dir = if east {
                Direction::East
            } else {
                Direction::West
            };
            let mut link = (a.y * width + a.x) * 4 + dir.index();
            for _ in 0..a.x.abs_diff(b.x) {
                self.route_links.push(link);
                if east {
                    link += 4;
                } else {
                    link -= 4;
                }
            }
        }
        if b.y != a.y {
            let north = b.y > a.y;
            let dir = if north {
                Direction::North
            } else {
                Direction::South
            };
            let mut link = (a.y * width + b.x) * 4 + dir.index();
            let col_stride = 4 * width;
            for _ in 0..a.y.abs_diff(b.y) {
                self.route_links.push(link);
                if north {
                    link += col_stride;
                } else {
                    link -= col_stride;
                }
            }
        }
    }

    /// Pass 2 of the batched reservation: commits every staged hop in one
    /// pass over `link_free`, returning the head flit's arrival time.
    ///
    /// Commits are sequential — each hop re-reads its link's slots at
    /// commit time rather than using values captured during staging — so
    /// a route that crosses the same link twice correctly queues its
    /// second crossing behind its first (see the regression test below;
    /// X-Y routing never produces such a route, but the commit protocol
    /// must not silently depend on that). Every commit also raises the
    /// link's `last_commit` watermark, which [`Fabric::audit`] checks
    /// against the slot table after a run.
    #[inline]
    fn commit_reservations(&mut self, depart: Cycle, flits: u64) -> Cycle {
        let hold = flits * self.cfg.link_cycles;
        let mut head = depart;
        for i in 0..self.route_links.len() {
            let link = self.route_links[i];
            let base = link * self.vcs;
            debug_assert!(
                base + self.vcs <= self.link_free.len(),
                "staged VC slot range [{base}, {}) exceeds reservation table of {}",
                base + self.vcs,
                self.link_free.len()
            );
            // Router pipeline for the head flit.
            head += self.cfg.router_cycles;
            let slots = &mut self.link_free[base..base + self.vcs];
            // Grab the earliest-free virtual channel (first on ties).
            let slot = slots
                .iter_mut()
                .min_by_key(|c| **c)
                .expect("at least one VC");
            if *slot > head {
                self.stats.contention_cycles += (*slot - head).as_u64();
                head = *slot;
            }
            // The channel is busy for the serialization time of the body.
            let end = head + hold;
            *slot = end;
            let mark = &mut self.last_commit[link];
            *mark = (*mark).max(end);
            head += self.cfg.link_cycles;
        }
        head
    }

    /// Accounts a message's bandwidth and energy without timing it or
    /// reserving links.
    ///
    /// Used for background traffic that real hardware aggregates or
    /// combines off the critical path (e.g. snoop responses on an ordered
    /// interconnect): the bytes are real, the serialization is not
    /// modelled.
    pub fn send_untimed(&mut self, src: CoreId, dst: CoreId, kind: MsgKind) {
        let bytes = kind.bytes();
        self.stats.messages += 1;
        self.stats.bytes_injected += bytes;
        if src == dst {
            return;
        }
        let hops = self.mesh.hops(src, dst) as u64;
        self.stats.byte_hops += bytes * hops;
        if !kind.carries_data() {
            self.stats.ctrl_byte_hops += bytes * hops;
        }
        self.stats.energy += bytes as f64
            * hops as f64
            * (self.cfg.link_energy_per_byte + self.cfg.router_energy_per_byte);
    }

    /// Sends the same message to every core in `targets`, returning the
    /// latest arrival. Used for invalidation fan-out and snoop broadcast.
    pub fn multicast(
        &mut self,
        src: CoreId,
        targets: impl IntoIterator<Item = CoreId>,
        kind: MsgKind,
        depart: Cycle,
    ) -> Cycle {
        let mut latest = depart;
        for dst in targets {
            let t = self.send(src, dst, kind, depart);
            latest = latest.max(t);
        }
        latest
    }

    /// Uncontended latency of a `bytes`-sized message over `hops` hops.
    ///
    /// This is the analytic pipeline latency (no queuing):
    /// `hops × (router + link)`.
    pub fn pipe_latency(&self, hops: u64) -> u64 {
        hops * (self.cfg.router_cycles + self.cfg.link_cycles)
    }

    /// Audits the fabric's internal accounting: the VC reservation table
    /// has exactly `nodes × 4 directions × vcs` slots, the traffic
    /// counters are mutually consistent, and the batched reservation pass
    /// left no VC slot holding a cycle beyond its link's last-commit
    /// watermark. Slots only ever move forward via commits and every
    /// commit raises the watermark, so a slot ahead of it means a staged
    /// reservation bypassed the commit bookkeeping (e.g. a stale base
    /// captured before an earlier hop of the same route moved the link).
    /// Cheap (one pass over the small slot table plus a few compares), so
    /// the runtime invariant layer can call it per transaction.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn audit(&self) -> Result<(), String> {
        let want = self.cfg.nodes() * 4 * self.vcs;
        if self.link_free.len() != want {
            return Err(format!(
                "VC reservation table has {} slots, geometry implies {want}",
                self.link_free.len()
            ));
        }
        if self.last_commit.len() != self.cfg.nodes() * 4 {
            return Err(format!(
                "last-commit table has {} links, geometry implies {}",
                self.last_commit.len(),
                self.cfg.nodes() * 4
            ));
        }
        for (slot, &free_at) in self.link_free.iter().enumerate() {
            let link = slot / self.vcs;
            if free_at > self.last_commit[link] {
                return Err(format!(
                    "VC slot {slot} free at {free_at}, beyond link {link}'s \
                     last commit {}",
                    self.last_commit[link]
                ));
            }
        }
        if self.vcs != self.cfg.virtual_channels.max(1) {
            return Err(format!(
                "cached VC count {} disagrees with config {}",
                self.vcs, self.cfg.virtual_channels
            ));
        }
        if self.stats.ctrl_byte_hops > self.stats.byte_hops {
            return Err(format!(
                "control byte-hops {} exceed total byte-hops {}",
                self.stats.ctrl_byte_hops, self.stats.byte_hops
            ));
        }
        if self.stats.messages == 0 && (self.stats.bytes_injected != 0 || self.stats.byte_hops != 0)
        {
            return Err("traffic accounted with zero messages injected".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        Fabric::new(NocConfig::default())
    }

    #[test]
    fn local_delivery_is_instant() {
        let mut f = fabric();
        let t = f.send(
            CoreId::new(3),
            CoreId::new(3),
            MsgKind::Request,
            Cycle::new(10),
        );
        assert_eq!(t, Cycle::new(10));
        assert_eq!(f.stats().byte_hops, 0);
        assert_eq!(f.stats().messages, 1);
    }

    #[test]
    fn one_hop_latency_is_router_plus_link() {
        let mut f = fabric();
        let t = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::Request,
            Cycle::ZERO,
        );
        assert_eq!(t.as_u64(), 3);
    }

    #[test]
    fn corner_to_corner_latency() {
        let mut f = fabric();
        // 6 hops * (2+1) = 18 cycles uncontended.
        let t = f.send(
            CoreId::new(0),
            CoreId::new(15),
            MsgKind::Request,
            Cycle::ZERO,
        );
        assert_eq!(t.as_u64(), 18);
    }

    #[test]
    fn bandwidth_counts_byte_hops() {
        let mut f = fabric();
        f.send(
            CoreId::new(0),
            CoreId::new(2),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        // 72 bytes * 2 hops
        assert_eq!(f.stats().byte_hops, 144);
        assert_eq!(f.stats().bytes_injected, 72);
    }

    #[test]
    fn energy_uses_router_4x_link_model() {
        let cfg = NocConfig::default();
        let mut f = Fabric::new(cfg.clone());
        f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::Request,
            Cycle::ZERO,
        );
        let expected = 8.0 * 1.0 * (cfg.link_energy_per_byte + cfg.router_energy_per_byte);
        assert!((f.stats().energy - expected).abs() < 1e-9);
    }

    #[test]
    fn contention_delays_message_when_vcs_exhausted() {
        let mut f = Fabric::new(NocConfig {
            virtual_channels: 1,
            ..NocConfig::default()
        });
        // Two data messages over the same single-VC link at the same cycle.
        let t1 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        let t2 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        assert!(t2 > t1, "second message must queue behind the first");
        assert!(f.stats().contention_cycles > 0);
    }

    #[test]
    fn virtual_channels_absorb_small_bursts() {
        let mut f = fabric(); // 4 VCs by default
        let t1 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        let t2 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        assert_eq!(t1, t2, "a 4-VC link passes two concurrent messages");
        // A fifth concurrent message exhausts the VCs.
        for _ in 0..2 {
            f.send(
                CoreId::new(0),
                CoreId::new(1),
                MsgKind::DataResponse,
                Cycle::ZERO,
            );
        }
        let t5 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        assert!(t5 > t1);
    }

    #[test]
    fn no_contention_when_disabled() {
        let mut f = Fabric::new(NocConfig {
            model_contention: false,
            ..NocConfig::default()
        });
        let t1 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        let t2 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        assert_eq!(t1, t2);
        assert_eq!(f.stats().contention_cycles, 0);
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut f = fabric();
        let t1 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::Request,
            Cycle::ZERO,
        );
        let t2 = f.send(
            CoreId::new(8),
            CoreId::new(9),
            MsgKind::Request,
            Cycle::ZERO,
        );
        assert_eq!(t1, t2);
        assert_eq!(f.stats().contention_cycles, 0);
    }

    #[test]
    fn multicast_returns_latest_arrival() {
        let mut f = fabric();
        let t = f.multicast(
            CoreId::new(0),
            [CoreId::new(1), CoreId::new(15)],
            MsgKind::Invalidate,
            Cycle::ZERO,
        );
        // Farthest target dominates: 6 hops * 3 = 18; the shared initial
        // link has spare virtual channels so nothing queues.
        assert_eq!(t.as_u64(), 18);
        assert_eq!(f.stats().messages, 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut f = fabric();
        f.send(
            CoreId::new(0),
            CoreId::new(5),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        f.reset();
        assert_eq!(*f.stats(), NocStats::default());
    }

    #[test]
    fn stats_merge_adds_fields() {
        let a = NocStats {
            messages: 1,
            bytes_injected: 8,
            byte_hops: 16,
            ctrl_byte_hops: 16,
            energy: 5.0,
            contention_cycles: 2,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.messages, 2);
        assert_eq!(b.byte_hops, 32);
        assert!((b.energy - 10.0).abs() < 1e-12);
    }

    #[test]
    fn pipe_latency_matches_uncontended_send() {
        let f = fabric();
        assert_eq!(f.pipe_latency(6), 18);
    }

    #[test]
    fn staged_bases_match_per_link_derivation() {
        // The strided staging pass must agree with link_base over every
        // route of a rectangular mesh (off the square 4×4 path).
        let mut f = Fabric::new(NocConfig {
            width: 5,
            height: 3,
            ..NocConfig::default()
        });
        for s in 0..15 {
            for d in 0..15 {
                let src = CoreId::new(s);
                let dst = CoreId::new(d);
                let a = f.mesh.coord_of(src);
                let b = f.mesh.coord_of(dst);
                f.stage_route(a, b);
                let staged: Vec<usize> = f.route_links.iter().map(|&l| l * f.vcs).collect();
                let expected: Vec<usize> = f
                    .mesh
                    .route(src, dst)
                    .into_iter()
                    .map(|l| f.link_base(l))
                    .collect();
                assert_eq!(staged, expected, "{s} -> {d}");
            }
        }
    }

    /// Regression for the per-hop path's edge case: a route crossing the
    /// same link twice. X-Y routing cannot produce one, but the commit
    /// protocol must stay sequential — a batched variant that captured
    /// slot *values* during staging would hand both crossings the same
    /// free cycle and lose the queueing. Seeded directly through the
    /// staging scratch.
    #[test]
    fn duplicate_link_route_queues_second_crossing() {
        let mut f = Fabric::new(NocConfig {
            virtual_channels: 1,
            ..NocConfig::default()
        });
        let base = f.link_base(Link {
            from: 0,
            dir: Direction::East,
        });
        let link = base / f.vcs;
        f.route_links.clear();
        f.route_links.push(link);
        f.route_links.push(link);
        // 4 flits hold the link 4 cycles per crossing (link_cycles = 1).
        let arrival = f.commit_reservations(Cycle::ZERO, 4);
        // Hop 1: router 2 → head 2, reserve [2, 6), link 1 → head 3.
        // Hop 2: router 2 → head 5, slot busy until 6 → 1 contention
        // cycle, reserve [6, 10), link 1 → arrival 7.
        assert_eq!(arrival, Cycle::new(7));
        assert_eq!(f.stats().contention_cycles, 1);
        assert_eq!(f.link_free[base], Cycle::new(10));
        assert_eq!(f.last_commit[link], Cycle::new(10));
        f.audit()
            .expect("sequential commit keeps the watermark exact");
    }

    #[test]
    fn audit_catches_slot_beyond_watermark() {
        let mut f = fabric();
        f.send(
            CoreId::new(0),
            CoreId::new(3),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        f.audit().expect("clean run");
        // Corrupt one reserved slot past its link's watermark: the audit
        // must name it.
        let base = f.link_base(Link {
            from: 0,
            dir: Direction::East,
        });
        let link = base / f.vcs;
        f.link_free[base] = f.last_commit[link] + 1;
        let err = f.audit().expect_err("corruption undetected");
        assert!(
            err.contains("last commit"),
            "unexpected audit message: {err}"
        );
    }

    #[test]
    fn watermark_survives_reset() {
        let mut f = fabric();
        f.send(
            CoreId::new(0),
            CoreId::new(5),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        f.reset();
        assert!(f.last_commit.iter().all(|&c| c == Cycle::ZERO));
        f.audit().expect("reset state is consistent");
    }
}
