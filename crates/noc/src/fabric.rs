//! The timed network fabric: wormhole-approximate contention, bandwidth and
//! energy accounting.

use crate::mesh::{Link, Mesh};
use crate::message::MsgKind;
use spcp_sim::{CoreId, Cycle};

/// Configuration of the mesh NoC (defaults = Table 4 of the paper).
///
/// # Examples
///
/// ```
/// use spcp_noc::NocConfig;
///
/// let cfg = NocConfig::default();
/// assert_eq!(cfg.width, 4);
/// assert_eq!(cfg.router_cycles, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NocConfig {
    /// Mesh width (columns). Paper: 4.
    pub width: usize,
    /// Mesh height (rows). Paper: 4.
    pub height: usize,
    /// Router pipeline depth in cycles. Paper: 2-stage.
    pub router_cycles: u64,
    /// Link traversal latency in cycles.
    pub link_cycles: u64,
    /// Flit width in bytes (serialization granularity).
    pub flit_bytes: u64,
    /// Energy to move one byte over one link, in arbitrary units.
    pub link_energy_per_byte: f64,
    /// Energy to move one byte through one router; the paper's §5.3 model
    /// sets this to 4× the link energy.
    pub router_energy_per_byte: f64,
    /// When `false`, link contention is ignored and every message sees the
    /// uncontended pipeline latency (useful for analytic tests).
    pub model_contention: bool,
    /// Virtual channels per directed link: concurrent reservations a link
    /// can hold before the head flit must queue.
    pub virtual_channels: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        let link = 1.0;
        NocConfig {
            width: 4,
            height: 4,
            router_cycles: 2,
            link_cycles: 1,
            flit_bytes: 16,
            link_energy_per_byte: link,
            router_energy_per_byte: 4.0 * link,
            model_contention: true,
            virtual_channels: 4,
        }
    }
}

impl NocConfig {
    /// Number of nodes in the mesh.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }
}

/// Aggregate traffic statistics for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NocStats {
    /// Number of messages injected.
    pub messages: u64,
    /// Total bytes injected (sum of message sizes).
    pub bytes_injected: u64,
    /// Total byte·hops moved (bytes × links traversed); the bandwidth
    /// measure used for the paper's Figure 9.
    pub byte_hops: u64,
    /// Byte·hops of control-only messages (requests, probes, acks); the
    /// "request bandwidth" the destination-set-prediction literature
    /// compares on.
    pub ctrl_byte_hops: u64,
    /// Total energy consumed in links and routers (arbitrary units).
    pub energy: f64,
    /// Cycles messages spent waiting for contended links.
    pub contention_cycles: u64,
}

impl NocStats {
    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &NocStats) {
        self.messages += other.messages;
        self.bytes_injected += other.bytes_injected;
        self.byte_hops += other.byte_hops;
        self.ctrl_byte_hops += other.ctrl_byte_hops;
        self.energy += other.energy;
        self.contention_cycles += other.contention_cycles;
    }
}

/// The timed mesh network.
///
/// `Fabric` routes each message along its deterministic X-Y path, reserving
/// each directed link for the message's serialization time. The head flit
/// pays `router_cycles + link_cycles` per hop; the tail occupies each link
/// for `ceil(bytes / flit_bytes)` cycles, so back-to-back messages over a
/// shared link queue behind each other — a faithful first-order wormhole
/// approximation without per-flit simulation.
///
/// Zero-hop messages (to the local tile) are delivered immediately and add
/// no traffic.
///
/// # Examples
///
/// ```
/// use spcp_noc::{Fabric, MsgKind, NocConfig};
/// use spcp_sim::{CoreId, Cycle};
///
/// let mut f = Fabric::new(NocConfig::default());
/// let t1 = f.send(CoreId::new(0), CoreId::new(1), MsgKind::Request, Cycle::ZERO);
/// // one hop: 2-cycle router + 1-cycle link
/// assert_eq!(t1, Cycle::new(3));
/// assert_eq!(f.stats().messages, 1);
/// ```
#[derive(Debug)]
pub struct Fabric {
    mesh: Mesh,
    cfg: NocConfig,
    /// Virtual channels per directed link (`cfg.virtual_channels.max(1)`,
    /// cached for the indexing math below).
    vcs: usize,
    /// Next cycle at which each virtual channel of each directed link is
    /// free. The directed links of a mesh are a small dense set — at most
    /// 4 per node — so reservations live in one flat array indexed by
    /// `(node × 4 + direction) × vcs + vc`: no hashing, no per-link heap
    /// allocation, and `reset` is a `fill`.
    link_free: Vec<Cycle>,
    stats: NocStats,
}

impl Fabric {
    /// Creates a fabric from a configuration.
    pub fn new(cfg: NocConfig) -> Self {
        let vcs = cfg.virtual_channels.max(1);
        Fabric {
            mesh: Mesh::new(cfg.width, cfg.height),
            vcs,
            link_free: vec![Cycle::ZERO; cfg.nodes() * 4 * vcs],
            cfg,
            stats: NocStats::default(),
        }
    }

    /// Start of `link`'s VC slot range inside `link_free`.
    #[inline]
    fn link_base(&self, link: Link) -> usize {
        debug_assert!(
            link.from < self.cfg.nodes() && link.dir.index() < 4,
            "link {:?} outside the {}-node reservation table",
            link,
            self.cfg.nodes()
        );
        let base = (link.from * 4 + link.dir.index()) * self.vcs;
        debug_assert!(
            base + self.vcs <= self.link_free.len(),
            "VC slot range [{base}, {}) exceeds reservation table of {}",
            base + self.vcs,
            self.link_free.len()
        );
        base
    }

    /// The underlying topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Resets statistics and link reservations (used between measurement
    /// phases).
    pub fn reset(&mut self) {
        self.link_free.fill(Cycle::ZERO);
        self.stats = NocStats::default();
    }

    /// Number of flits a message of `bytes` serializes into.
    fn flits(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.cfg.flit_bytes).max(1)
    }

    /// Sends one message, returning its arrival time at `dst`.
    ///
    /// Accounts bandwidth and energy, and models head-of-line link
    /// contention when enabled. A message to the local tile arrives
    /// immediately.
    pub fn send(&mut self, src: CoreId, dst: CoreId, kind: MsgKind, depart: Cycle) -> Cycle {
        let bytes = kind.bytes();
        self.stats.messages += 1;
        self.stats.bytes_injected += bytes;

        if src == dst {
            return depart;
        }

        let route = self.mesh.route_iter(src, dst);
        let hops = route.len() as u64;
        self.stats.byte_hops += bytes * hops;
        if !kind.carries_data() {
            self.stats.ctrl_byte_hops += bytes * hops;
        }
        // §5.3 model: each hop moves the bytes through one router + one link.
        self.stats.energy += bytes as f64
            * hops as f64
            * (self.cfg.link_energy_per_byte + self.cfg.router_energy_per_byte);

        let flits = self.flits(bytes);
        let mut head = depart;
        for link in route {
            // Router pipeline for the head flit.
            head += self.cfg.router_cycles;
            if self.cfg.model_contention {
                let base = self.link_base(link);
                let slots = &mut self.link_free[base..base + self.vcs];
                // Grab the earliest-free virtual channel (first on ties).
                let slot = slots
                    .iter_mut()
                    .min_by_key(|c| **c)
                    .expect("at least one VC");
                if *slot > head {
                    self.stats.contention_cycles += (*slot - head).as_u64();
                    head = *slot;
                }
                // The channel is busy for the serialization time of the
                // body.
                *slot = head + flits * self.cfg.link_cycles;
            }
            head += self.cfg.link_cycles;
        }
        head
    }

    /// Accounts a message's bandwidth and energy without timing it or
    /// reserving links.
    ///
    /// Used for background traffic that real hardware aggregates or
    /// combines off the critical path (e.g. snoop responses on an ordered
    /// interconnect): the bytes are real, the serialization is not
    /// modelled.
    pub fn send_untimed(&mut self, src: CoreId, dst: CoreId, kind: MsgKind) {
        let bytes = kind.bytes();
        self.stats.messages += 1;
        self.stats.bytes_injected += bytes;
        if src == dst {
            return;
        }
        let hops = self.mesh.hops(src, dst) as u64;
        self.stats.byte_hops += bytes * hops;
        if !kind.carries_data() {
            self.stats.ctrl_byte_hops += bytes * hops;
        }
        self.stats.energy += bytes as f64
            * hops as f64
            * (self.cfg.link_energy_per_byte + self.cfg.router_energy_per_byte);
    }

    /// Sends the same message to every core in `targets`, returning the
    /// latest arrival. Used for invalidation fan-out and snoop broadcast.
    pub fn multicast(
        &mut self,
        src: CoreId,
        targets: impl IntoIterator<Item = CoreId>,
        kind: MsgKind,
        depart: Cycle,
    ) -> Cycle {
        let mut latest = depart;
        for dst in targets {
            let t = self.send(src, dst, kind, depart);
            latest = latest.max(t);
        }
        latest
    }

    /// Uncontended latency of a `bytes`-sized message over `hops` hops.
    ///
    /// This is the analytic pipeline latency (no queuing):
    /// `hops × (router + link)`.
    pub fn pipe_latency(&self, hops: u64) -> u64 {
        hops * (self.cfg.router_cycles + self.cfg.link_cycles)
    }

    /// Audits the fabric's internal accounting: the VC reservation table
    /// has exactly `nodes × 4 directions × vcs` slots, and the traffic
    /// counters are mutually consistent. Cheap (O(1) plus a few compares),
    /// so the runtime invariant layer can call it per transaction.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn audit(&self) -> Result<(), String> {
        let want = self.cfg.nodes() * 4 * self.vcs;
        if self.link_free.len() != want {
            return Err(format!(
                "VC reservation table has {} slots, geometry implies {want}",
                self.link_free.len()
            ));
        }
        if self.vcs != self.cfg.virtual_channels.max(1) {
            return Err(format!(
                "cached VC count {} disagrees with config {}",
                self.vcs, self.cfg.virtual_channels
            ));
        }
        if self.stats.ctrl_byte_hops > self.stats.byte_hops {
            return Err(format!(
                "control byte-hops {} exceed total byte-hops {}",
                self.stats.ctrl_byte_hops, self.stats.byte_hops
            ));
        }
        if self.stats.messages == 0 && (self.stats.bytes_injected != 0 || self.stats.byte_hops != 0)
        {
            return Err("traffic accounted with zero messages injected".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        Fabric::new(NocConfig::default())
    }

    #[test]
    fn local_delivery_is_instant() {
        let mut f = fabric();
        let t = f.send(
            CoreId::new(3),
            CoreId::new(3),
            MsgKind::Request,
            Cycle::new(10),
        );
        assert_eq!(t, Cycle::new(10));
        assert_eq!(f.stats().byte_hops, 0);
        assert_eq!(f.stats().messages, 1);
    }

    #[test]
    fn one_hop_latency_is_router_plus_link() {
        let mut f = fabric();
        let t = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::Request,
            Cycle::ZERO,
        );
        assert_eq!(t.as_u64(), 3);
    }

    #[test]
    fn corner_to_corner_latency() {
        let mut f = fabric();
        // 6 hops * (2+1) = 18 cycles uncontended.
        let t = f.send(
            CoreId::new(0),
            CoreId::new(15),
            MsgKind::Request,
            Cycle::ZERO,
        );
        assert_eq!(t.as_u64(), 18);
    }

    #[test]
    fn bandwidth_counts_byte_hops() {
        let mut f = fabric();
        f.send(
            CoreId::new(0),
            CoreId::new(2),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        // 72 bytes * 2 hops
        assert_eq!(f.stats().byte_hops, 144);
        assert_eq!(f.stats().bytes_injected, 72);
    }

    #[test]
    fn energy_uses_router_4x_link_model() {
        let cfg = NocConfig::default();
        let mut f = Fabric::new(cfg.clone());
        f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::Request,
            Cycle::ZERO,
        );
        let expected = 8.0 * 1.0 * (cfg.link_energy_per_byte + cfg.router_energy_per_byte);
        assert!((f.stats().energy - expected).abs() < 1e-9);
    }

    #[test]
    fn contention_delays_message_when_vcs_exhausted() {
        let mut f = Fabric::new(NocConfig {
            virtual_channels: 1,
            ..NocConfig::default()
        });
        // Two data messages over the same single-VC link at the same cycle.
        let t1 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        let t2 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        assert!(t2 > t1, "second message must queue behind the first");
        assert!(f.stats().contention_cycles > 0);
    }

    #[test]
    fn virtual_channels_absorb_small_bursts() {
        let mut f = fabric(); // 4 VCs by default
        let t1 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        let t2 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        assert_eq!(t1, t2, "a 4-VC link passes two concurrent messages");
        // A fifth concurrent message exhausts the VCs.
        for _ in 0..2 {
            f.send(
                CoreId::new(0),
                CoreId::new(1),
                MsgKind::DataResponse,
                Cycle::ZERO,
            );
        }
        let t5 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        assert!(t5 > t1);
    }

    #[test]
    fn no_contention_when_disabled() {
        let mut f = Fabric::new(NocConfig {
            model_contention: false,
            ..NocConfig::default()
        });
        let t1 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        let t2 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        assert_eq!(t1, t2);
        assert_eq!(f.stats().contention_cycles, 0);
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut f = fabric();
        let t1 = f.send(
            CoreId::new(0),
            CoreId::new(1),
            MsgKind::Request,
            Cycle::ZERO,
        );
        let t2 = f.send(
            CoreId::new(8),
            CoreId::new(9),
            MsgKind::Request,
            Cycle::ZERO,
        );
        assert_eq!(t1, t2);
        assert_eq!(f.stats().contention_cycles, 0);
    }

    #[test]
    fn multicast_returns_latest_arrival() {
        let mut f = fabric();
        let t = f.multicast(
            CoreId::new(0),
            [CoreId::new(1), CoreId::new(15)],
            MsgKind::Invalidate,
            Cycle::ZERO,
        );
        // Farthest target dominates: 6 hops * 3 = 18; the shared initial
        // link has spare virtual channels so nothing queues.
        assert_eq!(t.as_u64(), 18);
        assert_eq!(f.stats().messages, 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut f = fabric();
        f.send(
            CoreId::new(0),
            CoreId::new(5),
            MsgKind::DataResponse,
            Cycle::ZERO,
        );
        f.reset();
        assert_eq!(*f.stats(), NocStats::default());
    }

    #[test]
    fn stats_merge_adds_fields() {
        let a = NocStats {
            messages: 1,
            bytes_injected: 8,
            byte_hops: 16,
            ctrl_byte_hops: 16,
            energy: 5.0,
            contention_cycles: 2,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.messages, 2);
        assert_eq!(b.byte_hops, 32);
        assert!((b.energy - 10.0).abs() < 1e-12);
    }

    #[test]
    fn pipe_latency_matches_uncontended_send() {
        let f = fabric();
        assert_eq!(f.pipe_latency(6), 18);
    }
}
