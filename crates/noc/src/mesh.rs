//! 2D mesh topology and deterministic X-Y routing.

use spcp_sim::CoreId;
use std::fmt;

/// A position in the mesh grid.
///
/// # Examples
///
/// ```
/// use spcp_noc::{Coord, Mesh};
///
/// let mesh = Mesh::new(4, 4);
/// let c = mesh.coord_of(spcp_sim::CoreId::new(5));
/// assert_eq!(c, Coord { x: 1, y: 1 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column index, `0..width`.
    pub x: usize,
    /// Row index, `0..height`.
    pub y: usize,
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A directed link between two adjacent routers, identified by the source
/// router's node index and the direction of travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// Node index of the router the flit departs from.
    pub from: usize,
    /// Direction of travel.
    pub dir: Direction,
}

/// One of the four mesh directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward larger `x`.
    East,
    /// Toward smaller `x`.
    West,
    /// Toward larger `y`.
    North,
    /// Toward smaller `y`.
    South,
}

impl Direction {
    /// Index in `[0, 4)` used for dense per-link tables.
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
        }
    }
}

/// A `width × height` 2D mesh with row-major node numbering.
///
/// Node `i` sits at `(i % width, i / width)`, matching the tiled-CMP layout
/// of the paper's Table 4 (a 4×4 mesh of 16 tiles). Routing is deterministic
/// X-Y: first travel along the row to the destination column, then along the
/// column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    width: usize,
    height: usize,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        Mesh { width, height }
    }

    /// Grid width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// The grid position of a core's tile.
    ///
    /// # Panics
    ///
    /// Panics if the core index is outside the mesh.
    pub fn coord_of(&self, core: CoreId) -> Coord {
        let i = core.index();
        assert!(
            i < self.nodes(),
            "core {i} outside a {}-node mesh",
            self.nodes()
        );
        Coord {
            x: i % self.width,
            y: i / self.width,
        }
    }

    /// The core whose tile sits at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the grid.
    pub fn core_at(&self, coord: Coord) -> CoreId {
        assert!(coord.x < self.width && coord.y < self.height);
        CoreId::new(coord.y * self.width + coord.x)
    }

    /// Manhattan hop distance between two tiles.
    pub fn hops(&self, src: CoreId, dst: CoreId) -> usize {
        let a = self.coord_of(src);
        let b = self.coord_of(dst);
        a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
    }

    /// Enumerates the directed links of the X-Y route from `src` to `dst`.
    ///
    /// The route is empty when `src == dst`.
    ///
    /// Allocates; the timed fabric's per-message hot path uses
    /// [`Mesh::route_iter`] instead.
    pub fn route(&self, src: CoreId, dst: CoreId) -> Vec<Link> {
        self.route_iter(src, dst).collect()
    }

    /// Iterator form of [`Mesh::route`]: walks the X-Y route lazily with
    /// no heap allocation. Used by the fabric on every send.
    ///
    /// # Examples
    ///
    /// ```
    /// use spcp_noc::Mesh;
    /// use spcp_sim::CoreId;
    ///
    /// let m = Mesh::new(4, 4);
    /// let hops = m.route_iter(CoreId::new(0), CoreId::new(10)).count();
    /// assert_eq!(hops, m.hops(CoreId::new(0), CoreId::new(10)));
    /// ```
    pub fn route_iter(&self, src: CoreId, dst: CoreId) -> RouteIter {
        RouteIter {
            cur: self.coord_of(src),
            goal: self.coord_of(dst),
            width: self.width,
        }
    }

    /// Average hop distance over all ordered pairs of distinct nodes.
    ///
    /// Useful for analytic sanity checks of the timing model.
    pub fn mean_hops(&self) -> f64 {
        let n = self.nodes();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0usize;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    total += self.hops(CoreId::new(s), CoreId::new(d));
                }
            }
        }
        total as f64 / (n * (n - 1)) as f64
    }
}

/// Lazy X-Y route walker returned by [`Mesh::route_iter`].
///
/// Yields the directed links from the current position to the goal —
/// first along the row, then along the column — without touching the
/// heap.
#[derive(Debug, Clone)]
pub struct RouteIter {
    cur: Coord,
    goal: Coord,
    width: usize,
}

impl Iterator for RouteIter {
    type Item = Link;

    fn next(&mut self) -> Option<Link> {
        let from = self.cur.y * self.width + self.cur.x;
        if self.cur.x != self.goal.x {
            let dir = if self.goal.x > self.cur.x {
                self.cur.x += 1;
                Direction::East
            } else {
                self.cur.x -= 1;
                Direction::West
            };
            Some(Link { from, dir })
        } else if self.cur.y != self.goal.y {
            let dir = if self.goal.y > self.cur.y {
                self.cur.y += 1;
                Direction::North
            } else {
                self.cur.y -= 1;
                Direction::South
            };
            Some(Link { from, dir })
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.cur.x.abs_diff(self.goal.x) + self.cur.y.abs_diff(self.goal.y);
        (left, Some(left))
    }
}

impl ExactSizeIterator for RouteIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4() -> Mesh {
        Mesh::new(4, 4)
    }

    #[test]
    fn route_iter_matches_route_exactly() {
        let m = Mesh::new(5, 3);
        for a in 0..15 {
            for b in 0..15 {
                let eager = m.route(CoreId::new(a), CoreId::new(b));
                let it = m.route_iter(CoreId::new(a), CoreId::new(b));
                assert_eq!(it.len(), eager.len());
                let lazy: Vec<Link> = it.collect();
                assert_eq!(lazy, eager, "{a} -> {b}");
            }
        }
    }

    #[test]
    fn coord_numbering_is_row_major() {
        let m = mesh4();
        assert_eq!(m.coord_of(CoreId::new(0)), Coord { x: 0, y: 0 });
        assert_eq!(m.coord_of(CoreId::new(3)), Coord { x: 3, y: 0 });
        assert_eq!(m.coord_of(CoreId::new(4)), Coord { x: 0, y: 1 });
        assert_eq!(m.coord_of(CoreId::new(15)), Coord { x: 3, y: 3 });
    }

    #[test]
    fn coord_core_roundtrip() {
        let m = mesh4();
        for i in 0..16 {
            let c = CoreId::new(i);
            assert_eq!(m.core_at(m.coord_of(c)), c);
        }
    }

    #[test]
    fn hop_distance_is_manhattan() {
        let m = mesh4();
        assert_eq!(m.hops(CoreId::new(0), CoreId::new(0)), 0);
        assert_eq!(m.hops(CoreId::new(0), CoreId::new(3)), 3);
        assert_eq!(m.hops(CoreId::new(0), CoreId::new(15)), 6);
        assert_eq!(m.hops(CoreId::new(5), CoreId::new(10)), 2);
    }

    #[test]
    fn hops_symmetric() {
        let m = mesh4();
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(
                    m.hops(CoreId::new(a), CoreId::new(b)),
                    m.hops(CoreId::new(b), CoreId::new(a))
                );
            }
        }
    }

    #[test]
    fn route_length_matches_hops() {
        let m = mesh4();
        for a in 0..16 {
            for b in 0..16 {
                let r = m.route(CoreId::new(a), CoreId::new(b));
                assert_eq!(r.len(), m.hops(CoreId::new(a), CoreId::new(b)));
            }
        }
    }

    #[test]
    fn route_is_x_then_y() {
        let m = mesh4();
        // 0 (0,0) -> 10 (2,2): two east links then two north links.
        let r = m.route(CoreId::new(0), CoreId::new(10));
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].dir, Direction::East);
        assert_eq!(r[1].dir, Direction::East);
        assert_eq!(r[2].dir, Direction::North);
        assert_eq!(r[3].dir, Direction::North);
    }

    #[test]
    fn route_to_self_is_empty() {
        let m = mesh4();
        assert!(m.route(CoreId::new(7), CoreId::new(7)).is_empty());
    }

    #[test]
    fn mean_hops_4x4_known_value() {
        // For a 4x4 mesh the mean pairwise Manhattan distance is 8/3.
        let m = mesh4();
        assert!((m.mean_hops() - 8.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        Mesh::new(0, 4);
    }

    #[test]
    fn rectangular_meshes_route_correctly() {
        let m = Mesh::new(8, 2); // wide, shallow
        assert_eq!(m.nodes(), 16);
        assert_eq!(m.coord_of(CoreId::new(9)), Coord { x: 1, y: 1 });
        assert_eq!(m.hops(CoreId::new(0), CoreId::new(15)), 7 + 1);
        for a in 0..16 {
            for b in 0..16 {
                let r = m.route(CoreId::new(a), CoreId::new(b));
                assert_eq!(r.len(), m.hops(CoreId::new(a), CoreId::new(b)));
            }
        }
    }

    #[test]
    fn single_node_mesh_degenerates() {
        let m = Mesh::new(1, 1);
        assert_eq!(m.nodes(), 1);
        assert_eq!(m.mean_hops(), 0.0);
        assert!(m.route(CoreId::new(0), CoreId::new(0)).is_empty());
    }

    #[test]
    fn column_mesh_routes_vertically() {
        let m = Mesh::new(1, 4);
        let r = m.route(CoreId::new(0), CoreId::new(3));
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|l| l.dir == Direction::North));
        let back = m.route(CoreId::new(3), CoreId::new(0));
        assert!(back.iter().all(|l| l.dir == Direction::South));
    }

    #[test]
    fn direction_indices_are_distinct() {
        use Direction::*;
        let idx: Vec<usize> = [East, West, North, South]
            .iter()
            .map(|d| d.index())
            .collect();
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }
}
