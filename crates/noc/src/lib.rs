//! Network-on-chip model: a 2D mesh with deterministic X-Y routing.
//!
//! The paper's machine (Table 4) uses a 4×4 2D mesh operating at core
//! frequency, wormhole switching, two-stage router pipelines and
//! deterministic X-Y routing. This crate models exactly that:
//!
//! * [`Mesh`] — topology, coordinate math, X-Y route enumeration;
//! * [`Fabric`] — the timed network: per-directed-link reservation gives a
//!   wormhole-style contention approximation, plus bandwidth and energy
//!   accounting (the paper's §5.3 analytical energy model: energy ∝ bytes
//!   moved, router traversal = 4× link traversal);
//! * [`Message`] / [`MsgKind`] — coherence messages with realistic sizes
//!   (8 B control header, 64 B cache-line payload).
//!
//! # Examples
//!
//! ```
//! use spcp_noc::{Fabric, Mesh, MsgKind, NocConfig};
//! use spcp_sim::{Cycle, CoreId};
//!
//! let mut fabric = Fabric::new(NocConfig::default());
//! let arrival = fabric.send(
//!     CoreId::new(0),
//!     CoreId::new(15),
//!     MsgKind::DataResponse,
//!     Cycle::ZERO,
//! );
//! assert!(arrival > Cycle::ZERO);
//! ```

#![warn(missing_docs)]

pub mod fabric;
pub mod flit;
pub mod mesh;
pub mod message;

pub use fabric::{Fabric, NocConfig, NocStats};
pub use mesh::{Coord, Direction, Link, Mesh, RouteIter};
pub use message::{Message, MsgKind};
