//! Coherence message kinds and their on-wire sizes.

use std::fmt;

/// The kind of a coherence message travelling over the NoC.
///
/// Sizes follow the usual convention for directory-protocol studies: control
/// messages carry an 8-byte header (command + block address + small bit
/// vector), data messages carry the header plus a full 64-byte cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Miss request sent to the home directory.
    Request,
    /// Miss request sent directly to a *predicted* target cache (§4.5).
    PredictedRequest,
    /// Directory-to-owner forward of a request.
    Forward,
    /// Invalidation command to a sharer.
    Invalidate,
    /// Invalidation acknowledgment back to the requester.
    InvalidateAck,
    /// Negative response from a wrongly-predicted cache.
    Nack,
    /// Control-only response (e.g. directory grant without data).
    ControlResponse,
    /// Response carrying a full cache line.
    DataResponse,
    /// Write-back of a dirty line to its home node.
    WriteBack,
    /// Sharing-state update from a predicted node to the directory (§4.5).
    DirectoryUpdate,
    /// Broadcast snoop probe (snooping protocol).
    SnoopProbe,
    /// Snoop response without data.
    SnoopResponse,
}

impl MsgKind {
    /// Size of the control header in bytes.
    pub const HEADER_BYTES: u64 = 8;
    /// Size of a cache-line payload in bytes.
    pub const LINE_BYTES: u64 = 64;

    /// On-wire size of a message of this kind, in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MsgKind::DataResponse | MsgKind::WriteBack => Self::HEADER_BYTES + Self::LINE_BYTES,
            _ => Self::HEADER_BYTES,
        }
    }

    /// Whether the message carries a data payload.
    pub fn carries_data(self) -> bool {
        matches!(self, MsgKind::DataResponse | MsgKind::WriteBack)
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MsgKind::Request => "REQ",
            MsgKind::PredictedRequest => "PRED-REQ",
            MsgKind::Forward => "FWD",
            MsgKind::Invalidate => "INV",
            MsgKind::InvalidateAck => "INV-ACK",
            MsgKind::Nack => "NACK",
            MsgKind::ControlResponse => "CTRL-RSP",
            MsgKind::DataResponse => "DATA-RSP",
            MsgKind::WriteBack => "WB",
            MsgKind::DirectoryUpdate => "DIR-UPD",
            MsgKind::SnoopProbe => "SNOOP",
            MsgKind::SnoopResponse => "SNOOP-RSP",
        };
        f.write_str(s)
    }
}

/// A fully-specified message: kind plus endpoints, used by diagnostics and
/// trace dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sending tile.
    pub src: spcp_sim::CoreId,
    /// Receiving tile.
    pub dst: spcp_sim::CoreId,
    /// Message kind (determines size).
    pub kind: MsgKind,
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}→{}", self.kind, self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcp_sim::CoreId;

    #[test]
    fn data_messages_carry_line() {
        assert_eq!(MsgKind::DataResponse.bytes(), 72);
        assert_eq!(MsgKind::WriteBack.bytes(), 72);
        assert!(MsgKind::DataResponse.carries_data());
    }

    #[test]
    fn control_messages_are_header_only() {
        for k in [
            MsgKind::Request,
            MsgKind::PredictedRequest,
            MsgKind::Forward,
            MsgKind::Invalidate,
            MsgKind::InvalidateAck,
            MsgKind::Nack,
            MsgKind::ControlResponse,
            MsgKind::DirectoryUpdate,
            MsgKind::SnoopProbe,
            MsgKind::SnoopResponse,
        ] {
            assert_eq!(k.bytes(), 8, "{k}");
            assert!(!k.carries_data());
        }
    }

    #[test]
    fn display_is_nonempty() {
        let m = Message {
            src: CoreId::new(0),
            dst: CoreId::new(3),
            kind: MsgKind::Request,
        };
        assert_eq!(m.to_string(), "REQ core0→core3");
    }
}
