//! A flit-level, cycle-stepped router network.
//!
//! The main simulator uses the transaction-level timing of [`crate::Fabric`]
//! (head-latency pipeline + virtual-channel link reservation). This module
//! provides the detailed counterpart: input-buffered routers stepped cycle
//! by cycle, with per-flit wormhole switching, credit-free bounded buffers
//! and round-robin output arbitration. It serves two purposes:
//!
//! 1. **validation** — under light load the two models must agree on
//!    latency (tests in this module and `spcp-bench`'s `noc_saturation`
//!    binary check that);
//! 2. **network evaluation** — offered-load vs. latency saturation curves,
//!    the standard NoC characterization.
//!
//! The model is intentionally classic: X-Y dimension-ordered routing (so it
//! is deadlock-free on a mesh), one flit per link per cycle, wormhole
//! allocation in which a packet holds an output port from head to tail.
//!
//! # Examples
//!
//! ```
//! use spcp_noc::flit::FlitNetwork;
//! use spcp_noc::NocConfig;
//! use spcp_sim::CoreId;
//!
//! let mut net = FlitNetwork::new(&NocConfig::default());
//! net.inject(CoreId::new(0), CoreId::new(5), 5, 0);
//! let mut delivered = Vec::new();
//! for _ in 0..100 {
//!     net.step(&mut delivered);
//! }
//! assert_eq!(delivered.len(), 1);
//! ```

use crate::mesh::{Coord, Mesh};
use crate::NocConfig;
use spcp_sim::CoreId;
use std::collections::VecDeque;

/// A delivered packet: id, destination, injection and arrival cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Caller-supplied packet id.
    pub id: u64,
    /// Destination core.
    pub dst: CoreId,
    /// Cycle the head flit was injected.
    pub injected_at: u64,
    /// Cycle the tail flit left the network.
    pub delivered_at: u64,
}

impl Delivery {
    /// End-to-end packet latency in cycles.
    pub fn latency(&self) -> u64 {
        self.delivered_at - self.injected_at
    }
}

/// One flit in flight.
#[derive(Debug, Clone, Copy)]
struct Flit {
    packet: u64,
    dst: usize,
    is_tail: bool,
    injected_at: u64,
}

/// Output directions of a router: E, W, N, S, local ejection.
const PORTS: usize = 5;
const LOCAL: usize = 4;

/// One router: an input queue per port plus wormhole output locks.
#[derive(Debug)]
struct Router {
    /// Input buffers, one per input port (E, W, N, S, injection).
    inputs: [VecDeque<Flit>; PORTS],
    /// Which input port currently owns each output port (wormhole lock),
    /// until that packet's tail passes.
    output_owner: [Option<usize>; PORTS],
    /// Round-robin arbitration pointer per output port.
    rr: [usize; PORTS],
}

impl Router {
    fn new(capacity: usize) -> Self {
        Router {
            inputs: std::array::from_fn(|_| VecDeque::with_capacity(capacity)),
            output_owner: [None; PORTS],
            rr: [0; PORTS],
        }
    }
}

/// The cycle-stepped network.
#[derive(Debug)]
pub struct FlitNetwork {
    mesh: Mesh,
    routers: Vec<Router>,
    buffer_capacity: usize,
    cycle: u64,
    next_packet: u64,
    in_flight: usize,
}

impl FlitNetwork {
    /// Builds the network for the mesh described by `cfg`, with input
    /// buffers of 8 flits.
    pub fn new(cfg: &NocConfig) -> Self {
        let mesh = Mesh::new(cfg.width, cfg.height);
        let n = mesh.nodes();
        FlitNetwork {
            mesh,
            routers: (0..n).map(|_| Router::new(8)).collect(),
            buffer_capacity: 8,
            cycle: 0,
            next_packet: 0,
            in_flight: 0,
        }
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Packets injected but not yet fully delivered.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// The output port a flit at `node` takes toward `dst` (X then Y).
    fn route_port(&self, node: usize, dst: usize) -> usize {
        let cur = self.mesh.coord_of(CoreId::new(node));
        let goal = self.mesh.coord_of(CoreId::new(dst));
        if cur.x < goal.x {
            0 // east
        } else if cur.x > goal.x {
            1 // west
        } else if cur.y < goal.y {
            2 // north
        } else if cur.y > goal.y {
            3 // south
        } else {
            LOCAL
        }
    }

    fn neighbor(&self, node: usize, port: usize) -> usize {
        let Coord { x, y } = self.mesh.coord_of(CoreId::new(node));
        let c = match port {
            0 => Coord { x: x + 1, y },
            1 => Coord { x: x - 1, y },
            2 => Coord { x, y: y + 1 },
            3 => Coord { x, y: y - 1 },
            _ => unreachable!("local port has no neighbour"),
        };
        self.mesh.core_at(c).index()
    }

    /// The input port of `to` that a flit arriving from `from` lands in
    /// (the reverse direction).
    fn arrival_port(&self, from: usize, to: usize) -> usize {
        let a = self.mesh.coord_of(CoreId::new(from));
        let b = self.mesh.coord_of(CoreId::new(to));
        if b.x > a.x {
            1 // arrived heading east -> lands in the west-side input
        } else if b.x < a.x {
            0
        } else if b.y > a.y {
            3
        } else {
            2
        }
    }

    /// Injects a `flits`-long packet, returning its id, or `None` when the
    /// source router's injection buffer lacks space for the whole packet.
    pub fn inject(&mut self, src: CoreId, dst: CoreId, flits: u64, id: u64) -> Option<u64> {
        assert!(flits >= 1, "a packet has at least one flit");
        let buf = &mut self.routers[src.index()].inputs[LOCAL];
        if buf.len() + flits as usize > self.buffer_capacity.max(flits as usize) {
            // Allow oversize packets to enter an empty buffer so large
            // payloads are representable; otherwise require space.
            if !buf.is_empty() {
                return None;
            }
        }
        let _ = id;
        let packet = self.next_packet;
        self.next_packet += 1;
        for i in 0..flits {
            buf.push_back(Flit {
                packet,
                dst: dst.index(),
                is_tail: i + 1 == flits,
                injected_at: self.cycle,
            });
        }
        self.in_flight += 1;
        Some(packet)
    }

    /// Advances one cycle: every router moves at most one flit per output
    /// port. Completed packets are appended to `delivered`.
    pub fn step(&mut self, delivered: &mut Vec<Delivery>) {
        let n = self.routers.len();
        // Collect moves first (router, input port, output port) so a flit
        // moves at most one hop per cycle.
        let mut moves: Vec<(usize, usize, usize)> = Vec::new();
        for r in 0..n {
            let router = &self.routers[r];
            for out in 0..PORTS {
                // Wormhole: if an input owns this output, it goes next.
                let candidates: Vec<usize> = match router.output_owner[out] {
                    Some(owner) => vec![owner],
                    None => (0..PORTS).map(|i| (router.rr[out] + i) % PORTS).collect(),
                };
                for input in candidates {
                    let Some(flit) = router.inputs[input].front() else {
                        continue;
                    };
                    if self.route_port(r, flit.dst) != out {
                        continue;
                    }
                    // Downstream must have buffer space (except ejection).
                    if out != LOCAL {
                        let next = self.neighbor(r, out);
                        let in_port = self.arrival_port(r, next);
                        if self.routers[next].inputs[in_port].len() >= self.buffer_capacity {
                            continue;
                        }
                    }
                    moves.push((r, input, out));
                    break;
                }
            }
        }

        for (r, input, out) in moves {
            let flit = self.routers[r].inputs[input]
                .pop_front()
                .expect("move was computed from a non-empty buffer");
            // Maintain the wormhole lock.
            self.routers[r].output_owner[out] = if flit.is_tail { None } else { Some(input) };
            self.routers[r].rr[out] = (input + 1) % PORTS;
            if out == LOCAL {
                if flit.is_tail {
                    self.in_flight -= 1;
                    delivered.push(Delivery {
                        id: flit.packet,
                        dst: CoreId::new(r),
                        injected_at: flit.injected_at,
                        delivered_at: self.cycle + 1,
                    });
                }
            } else {
                let next = self.neighbor(r, out);
                let in_port = self.arrival_port(r, next);
                self.routers[next].inputs[in_port].push_back(flit);
            }
        }
        self.cycle += 1;
    }

    /// Runs until the network drains or `max_cycles` pass, returning all
    /// deliveries.
    pub fn drain(&mut self, max_cycles: u64) -> Vec<Delivery> {
        let mut delivered = Vec::new();
        let deadline = self.cycle + max_cycles;
        while self.in_flight > 0 && self.cycle < deadline {
            self.step(&mut delivered);
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> FlitNetwork {
        FlitNetwork::new(&NocConfig::default())
    }

    #[test]
    fn single_packet_reaches_destination() {
        let mut n = net();
        n.inject(CoreId::new(0), CoreId::new(15), 1, 0).unwrap();
        let d = n.drain(1000);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].dst, CoreId::new(15));
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn latency_grows_with_distance() {
        // One hop vs corner-to-corner, single-flit packets, empty network.
        let mut a = net();
        a.inject(CoreId::new(0), CoreId::new(1), 1, 0).unwrap();
        let near = a.drain(1000)[0].latency();
        let mut b = net();
        b.inject(CoreId::new(0), CoreId::new(15), 1, 0).unwrap();
        let far = b.drain(1000)[0].latency();
        assert!(far > near);
        // X-Y on 6 hops: one router traversal per hop plus ejection.
        assert_eq!(far - near, 5, "per-hop cost is one cycle in this model");
    }

    #[test]
    fn multi_flit_packet_adds_serialization() {
        let mut a = net();
        a.inject(CoreId::new(0), CoreId::new(3), 1, 0).unwrap();
        let one = a.drain(1000)[0].latency();
        let mut b = net();
        b.inject(CoreId::new(0), CoreId::new(3), 5, 0).unwrap();
        let five = b.drain(1000)[0].latency();
        assert_eq!(five - one, 4, "tail trails the head by flits-1 cycles");
    }

    #[test]
    fn local_delivery_works() {
        let mut n = net();
        n.inject(CoreId::new(4), CoreId::new(4), 3, 0).unwrap();
        let d = n.drain(100);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].dst, CoreId::new(4));
    }

    #[test]
    fn contending_packets_share_a_link_fairly() {
        // Two packets from different sources converge on the same column
        // path; both must still arrive.
        let mut n = net();
        n.inject(CoreId::new(0), CoreId::new(12), 4, 0).unwrap();
        n.inject(CoreId::new(1), CoreId::new(12), 4, 1).unwrap();
        let d = n.drain(1000);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn wormhole_keeps_packets_contiguous() {
        // Many same-destination packets: deliveries happen tail-by-tail,
        // and every packet completes exactly once.
        let mut n = net();
        for i in 0..4 {
            n.inject(CoreId::new(i), CoreId::new(10), 3, i as u64)
                .unwrap();
        }
        let d = n.drain(10_000);
        assert_eq!(d.len(), 4);
        let mut ids: Vec<u64> = d.iter().map(|x| x.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn injection_backpressure_refuses_when_full() {
        let mut n = net();
        // Fill the injection buffer with an 8-flit packet, then refuse.
        n.inject(CoreId::new(0), CoreId::new(15), 8, 0).unwrap();
        assert!(n.inject(CoreId::new(0), CoreId::new(15), 4, 1).is_none());
        // After draining, injection works again.
        n.drain(10_000);
        assert!(n.inject(CoreId::new(0), CoreId::new(15), 4, 2).is_some());
    }

    #[test]
    fn heavy_random_load_eventually_drains() {
        let mut n = net();
        let mut injected = 0u64;
        let mut delivered = Vec::new();
        for round in 0..200u64 {
            for src in 0..16 {
                let dst = (src * 7 + round as usize) % 16;
                if src != dst
                    && n.inject(CoreId::new(src), CoreId::new(dst), 2, injected)
                        .is_some()
                {
                    injected += 1;
                }
            }
            n.step(&mut delivered);
        }
        delivered.extend(n.drain(100_000));
        assert_eq!(delivered.len() as u64, injected, "no packet may be lost");
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn xy_routing_is_deadlock_free_under_saturation() {
        // Saturate every node toward the opposite corner and ensure the
        // network still drains (dimension-ordered routing on a mesh cannot
        // deadlock).
        let mut n = net();
        let mut id = 0;
        for _ in 0..50 {
            for src in 0..16 {
                let dst = 15 - src;
                if src != dst {
                    n.inject(CoreId::new(src), CoreId::new(dst), 4, id);
                    id += 1;
                }
            }
            let mut sink = Vec::new();
            n.step(&mut sink);
        }
        n.drain(1_000_000);
        assert_eq!(n.in_flight(), 0, "network must drain — deadlock otherwise");
    }
}
