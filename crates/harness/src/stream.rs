//! Streamed sweep execution: run a matrix with results spooled to disk
//! instead of buffered in memory, with crash-safe resume.
//!
//! [`SweepEngine::run_streamed`] fans the matrix out over the usual scoped
//! worker pool, but each worker appends completed runs to its own shard
//! file ([`crate::spool`]) instead of an in-memory slot. Aggregation then
//! replays the shards through a bounded-memory merge, so a sweep's peak
//! memory is O(workers + one record per shard) regardless of matrix size.
//!
//! Resume: a re-invocation with [`StreamConfig::resume`] scans the
//! existing shards, treats every run with a complete (checksummed,
//! newline-terminated) record as done, and re-enqueues only the rest.
//! Torn tail records from a crash are discarded by the frame layer, so
//! the affected runs simply run again; determinism makes the re-run
//! records bit-identical to what was lost.

use std::collections::HashSet;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::engine::{RunResult, SweepEngine, SweepResult};
use crate::golden;
use crate::matrix::{RunMatrix, RunSpec};
use crate::record::{RunRecord, ShardHeader, RECORD_VERSION};
use crate::spool::{self, SpoolError, SpoolMerge, SpoolWriter};
use crate::summary::SweepSummary;

/// Default record count between spool fsyncs.
pub const DEFAULT_FLUSH_EVERY: usize = 32;

/// Where and how a streamed sweep spools its results.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Spool directory (created if missing).
    pub dir: PathBuf,
    /// Records between fsyncs per shard; bounds crash loss.
    pub flush_every: usize,
    /// Continue an interrupted sweep in `dir` instead of requiring it
    /// fresh.
    pub resume: bool,
}

impl StreamConfig {
    /// A fresh-sweep config for `dir` with the default flush interval.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StreamConfig {
            dir: dir.into(),
            flush_every: DEFAULT_FLUSH_EVERY,
            resume: false,
        }
    }

    /// Sets the fsync interval (records per shard; clamped to ≥ 1).
    pub fn flush_every(mut self, n: usize) -> Self {
        self.flush_every = n.max(1);
        self
    }

    /// Enables resuming an interrupted sweep.
    pub fn resume(mut self, yes: bool) -> Self {
        self.resume = yes;
        self
    }
}

/// Handle to a completed streamed sweep: the spool directory plus enough
/// metadata to replay it in canonical order.
///
/// Unlike [`SweepResult`] this holds **no** run statistics in memory —
/// every accessor replays the spool through the bounded-memory merge.
#[derive(Debug)]
pub struct StreamedSweep {
    specs: Vec<RunSpec>,
    dir: PathBuf,
    fingerprint: u64,
    /// Runs executed by this invocation.
    pub executed: usize,
    /// Runs skipped because a complete record already existed (resume).
    pub resumed: usize,
    /// Wall-clock time of this invocation's execution phase.
    pub elapsed: Duration,
    /// Worker count the sweep ran with.
    pub jobs: usize,
}

impl SweepEngine {
    /// Runs a matrix with results streamed to a spool directory.
    ///
    /// Fresh mode errors with [`SpoolError::NotEmpty`] if the directory
    /// already holds shards; resume mode scans them, skips complete runs
    /// and executes only the remainder (writing a new shard generation so
    /// every shard file stays sorted by run index).
    pub fn run_streamed(
        &self,
        matrix: &RunMatrix,
        cfg: &StreamConfig,
    ) -> Result<StreamedSweep, SpoolError> {
        let specs = matrix.expand();
        if specs.iter().any(|s| s.record) {
            return Err(SpoolError::Unsupported(
                "recording matrices spool no per-epoch payloads; \
                 run them through the in-memory engine"
                    .to_string(),
            ));
        }
        let fingerprint = spool::fingerprint(&specs);
        fs::create_dir_all(&cfg.dir).map_err(|e| SpoolError::Io {
            path: cfg.dir.clone(),
            error: e,
        })?;

        let existing = spool::shard_files(&cfg.dir)?;
        if !existing.is_empty() && !cfg.resume {
            return Err(SpoolError::NotEmpty {
                dir: cfg.dir.clone(),
            });
        }
        let done = scan_done(&existing, &specs, fingerprint)?;
        let remaining: Vec<&RunSpec> = specs.iter().filter(|s| !done.contains(&s.index)).collect();
        let generation = spool::next_generation(&cfg.dir)?;

        let started = Instant::now();
        let n = remaining.len();
        let total_specs = specs.len() as u64;
        let workers = self.jobs().min(n.max(1));
        let cursor = AtomicUsize::new(0);
        let remaining_ref = &remaining;

        let mut worker_errors: Vec<SpoolError> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let cursor = &cursor;
                    let dir = &cfg.dir;
                    let flush_every = cfg.flush_every;
                    scope.spawn(move || -> Result<(), SpoolError> {
                        let header = ShardHeader {
                            version: RECORD_VERSION,
                            fingerprint,
                            specs: total_specs,
                        };
                        let mut writer = SpoolWriter::new(
                            dir.join(spool::shard_name(generation, worker)),
                            header,
                            flush_every,
                        );
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let spec = remaining_ref[i];
                            let t0 = Instant::now();
                            let stats = spec.execute();
                            let wall = t0.elapsed();
                            writer.append(&RunRecord {
                                index: spec.index,
                                id: spec.id(),
                                wall,
                                worker,
                                stats,
                            })?;
                        }
                        writer.finish()
                    })
                })
                .collect();
            for handle in handles {
                if let Err(e) = handle.join().expect("streamed sweep worker panicked") {
                    worker_errors.push(e);
                }
            }
        });
        if let Some(e) = worker_errors.into_iter().next() {
            return Err(e);
        }

        Ok(StreamedSweep {
            executed: n,
            resumed: done.len(),
            elapsed: started.elapsed(),
            jobs: workers.max(1),
            specs,
            dir: cfg.dir.clone(),
            fingerprint,
        })
    }
}

/// Scans existing shards and returns the indices of runs whose records
/// are complete, validating every record against the matrix.
fn scan_done(
    shards: &[PathBuf],
    specs: &[RunSpec],
    fingerprint: u64,
) -> Result<HashSet<usize>, SpoolError> {
    let mut done = HashSet::new();
    let mut merge = SpoolMerge::open(shards, fingerprint)?;
    while let Some(rec) = merge.next()? {
        let spec = specs.get(rec.index).ok_or_else(|| SpoolError::Corrupt {
            path: shards.first().cloned().unwrap_or_default(),
            detail: format!(
                "record index {} outside the {}-run matrix",
                rec.index,
                specs.len()
            ),
        })?;
        if spec.id() != rec.id {
            return Err(SpoolError::Corrupt {
                path: shards.first().cloned().unwrap_or_default(),
                detail: format!(
                    "record at index {} is '{}' but the matrix expects '{}'",
                    rec.index,
                    rec.id,
                    spec.id()
                ),
            });
        }
        done.insert(rec.index);
    }
    Ok(done)
}

impl StreamedSweep {
    /// The canonical specs this sweep covers.
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// The spool directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// The matrix fingerprint stamped into every shard header.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Replays the spool in canonical matrix order, calling `f` once per
    /// run with its spec and record.
    ///
    /// Holds one record per shard in memory. Errors with
    /// [`SpoolError::Incomplete`] if any run lacks a complete record and
    /// [`SpoolError::Corrupt`] if a record contradicts the matrix.
    pub fn for_each_run<F>(&self, mut f: F) -> Result<(), SpoolError>
    where
        F: FnMut(&RunSpec, &RunRecord),
    {
        let shards = spool::shard_files(&self.dir)?;
        let mut merge = SpoolMerge::open(&shards, self.fingerprint)?;
        let mut seen = 0usize;
        let mut spec_iter = self.specs.iter();
        while let Some(rec) = merge.next()? {
            // Merged records arrive in strictly ascending index order, so
            // a single forward walk over the specs pairs them up.
            let spec = loop {
                match spec_iter.next() {
                    Some(s) if s.index == rec.index => break s,
                    Some(s) if s.index < rec.index => {
                        // A spec with no record: counted at the end.
                        continue;
                    }
                    _ => {
                        return Err(SpoolError::Corrupt {
                            path: self.dir.clone(),
                            detail: format!(
                                "record index {} does not appear in the matrix",
                                rec.index
                            ),
                        })
                    }
                }
            };
            if spec.id() != rec.id {
                return Err(SpoolError::Corrupt {
                    path: self.dir.clone(),
                    detail: format!(
                        "record at index {} is '{}' but the matrix expects '{}'",
                        rec.index,
                        rec.id,
                        spec.id()
                    ),
                });
            }
            f(spec, &rec);
            seen += 1;
        }
        if seen != self.specs.len() {
            return Err(SpoolError::Incomplete {
                missing: self.specs.len() - seen,
                total: self.specs.len(),
            });
        }
        Ok(())
    }

    /// Aggregates the spool into a [`SweepSummary`], bit-identical to the
    /// in-memory path's summary.
    pub fn summary(&self) -> Result<SweepSummary, SpoolError> {
        let mut sum = SweepSummary::new();
        self.for_each_run(|_, rec| sum.observe(&rec.stats))?;
        Ok(sum)
    }

    /// Renders the sweep's golden snapshot, byte-identical to
    /// [`golden::render`] of the equivalent in-memory sweep, without
    /// buffering runs.
    pub fn render_golden(&self) -> Result<String, SpoolError> {
        let mut out = String::new();
        out.push_str(golden::GOLDEN_HEADER);
        out.push('\n');
        self.for_each_run(|spec, rec| {
            out.push('\n');
            out.push_str(&golden::snapshot_run(spec, &rec.stats));
        })?;
        Ok(out)
    }

    /// Streams the golden snapshot to a writer (for sweeps whose rendered
    /// text should not be buffered either).
    pub fn write_golden<W: std::io::Write>(&self, w: &mut W) -> Result<(), SpoolError> {
        let mut io_error: Option<std::io::Error> = None;
        writeln!(w, "{}", golden::GOLDEN_HEADER).map_err(|e| SpoolError::Io {
            path: self.dir.clone(),
            error: e,
        })?;
        self.for_each_run(|spec, rec| {
            if io_error.is_none() {
                if let Err(e) = write!(w, "\n{}", golden::snapshot_run(spec, &rec.stats)) {
                    io_error = Some(e);
                }
            }
        })?;
        match io_error {
            Some(error) => Err(SpoolError::Io {
                path: self.dir.clone(),
                error,
            }),
            None => Ok(()),
        }
    }

    /// Loads the whole spool into an in-memory [`SweepResult`].
    ///
    /// This forfeits the bounded-memory property — it exists so small
    /// streamed sweeps can reuse the in-memory reporting helpers.
    pub fn into_sweep_result(self) -> Result<SweepResult, SpoolError> {
        let mut runs = Vec::with_capacity(self.specs.len());
        self.for_each_run(|spec, rec| {
            runs.push(RunResult {
                spec: spec.clone(),
                stats: rec.stats.clone(),
                wall: rec.wall,
                worker: rec.worker,
            });
        })?;
        Ok(SweepResult {
            runs,
            elapsed: self.elapsed,
            jobs: self.jobs,
        })
    }

    /// One-line status for stderr, e.g.
    /// `40 runs | 12 resumed | 28 executed | jobs=4 | wall 1.23s`.
    pub fn status_line(&self) -> String {
        format!(
            "{} runs | {} resumed | {} executed | jobs={} | wall {:.2}s",
            self.specs.len(),
            self.resumed,
            self.executed,
            self.jobs,
            self.elapsed.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcp_system::ProtocolKind;
    use spcp_workloads::suite;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spcp-stream-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_matrix() -> RunMatrix {
        RunMatrix::new()
            .bench(suite::by_name("fft").unwrap())
            .bench(suite::by_name("radix").unwrap())
            .protocol("dir", ProtocolKind::Directory)
            .protocol("bc", ProtocolKind::Broadcast)
    }

    #[test]
    fn streamed_matches_in_memory() {
        let dir = tmp_dir("match");
        let matrix = small_matrix();
        let mem = SweepEngine::new(2).run(&matrix);
        let streamed = SweepEngine::new(2)
            .run_streamed(&matrix, &StreamConfig::new(&dir))
            .unwrap();
        assert_eq!(streamed.executed, 4);
        assert_eq!(streamed.resumed, 0);
        assert_eq!(streamed.summary().unwrap(), mem.summary());
        assert_eq!(streamed.render_golden().unwrap(), golden::render(&mem));
        let mut sink = Vec::new();
        streamed.write_golden(&mut sink).unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), golden::render(&mem));
        let loaded = streamed.into_sweep_result().unwrap();
        assert_eq!(loaded.summary(), mem.summary());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_sweep_refuses_dirty_dir() {
        let dir = tmp_dir("dirty");
        let matrix = small_matrix();
        SweepEngine::new(1)
            .run_streamed(&matrix, &StreamConfig::new(&dir))
            .unwrap();
        match SweepEngine::new(1).run_streamed(&matrix, &StreamConfig::new(&dir)) {
            Err(SpoolError::NotEmpty { .. }) => {}
            other => panic!("expected NotEmpty, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_of_complete_sweep_is_a_no_op() {
        let dir = tmp_dir("noop");
        let matrix = small_matrix();
        let first = SweepEngine::new(2)
            .run_streamed(&matrix, &StreamConfig::new(&dir))
            .unwrap();
        let again = SweepEngine::new(2)
            .run_streamed(&matrix, &StreamConfig::new(&dir).resume(true))
            .unwrap();
        assert_eq!(again.executed, 0);
        assert_eq!(again.resumed, 4);
        assert_eq!(again.summary().unwrap(), first.summary().unwrap());
        assert!(again.status_line().contains("4 resumed"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_different_matrix() {
        let dir = tmp_dir("mismatch");
        SweepEngine::new(1)
            .run_streamed(&small_matrix(), &StreamConfig::new(&dir))
            .unwrap();
        let other = RunMatrix::new()
            .bench(suite::by_name("lu").unwrap())
            .protocol("dir", ProtocolKind::Directory);
        match SweepEngine::new(1).run_streamed(&other, &StreamConfig::new(&dir).resume(true)) {
            Err(SpoolError::MatrixMismatch { .. }) => {}
            other => panic!("expected MatrixMismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recording_matrices_are_rejected() {
        let dir = tmp_dir("recording");
        let matrix = small_matrix().recording();
        match SweepEngine::new(1).run_streamed(&matrix, &StreamConfig::new(&dir)) {
            Err(SpoolError::Unsupported(msg)) => assert!(msg.contains("recording"), "{msg}"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn incomplete_spool_is_reported() {
        let dir = tmp_dir("incomplete");
        let matrix = small_matrix();
        let streamed = SweepEngine::new(1)
            .run_streamed(&matrix, &StreamConfig::new(&dir))
            .unwrap();
        // Drop one complete record by truncating the single shard file
        // just before its final frame.
        let shards = spool::shard_files(&dir).unwrap();
        assert_eq!(shards.len(), 1);
        let text = fs::read_to_string(&shards[0]).unwrap();
        let without_last = {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.pop();
            let mut s = lines.join("\n");
            s.push('\n');
            s
        };
        fs::write(&shards[0], without_last).unwrap();
        match streamed.summary() {
            Err(SpoolError::Incomplete { missing, total }) => {
                assert_eq!(missing, 1);
                assert_eq!(total, 4);
            }
            other => panic!("expected Incomplete, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_matrix_streams_trivially() {
        let dir = tmp_dir("empty");
        let matrix = RunMatrix::new();
        let streamed = SweepEngine::new(4)
            .run_streamed(&matrix, &StreamConfig::new(&dir))
            .unwrap();
        assert_eq!(streamed.executed, 0);
        assert_eq!(streamed.summary().unwrap(), SweepSummary::new());
        let _ = fs::remove_dir_all(&dir);
    }
}
