//! JSONL run records: the payload carried inside each spool frame.
//!
//! Every completed run is one flat JSON object holding the run's identity
//! (`index`, `id`), the engine's timing metadata, and the exact integer
//! moments of its statistics. Floating-point fields (`NocStats::energy`,
//! `RunStats::snoop_energy`) are stored as their IEEE-754 bit patterns so
//! the round trip is bit-exact; `MeanAccumulator` and `Histogram` travel
//! as their raw integer parts.
//!
//! The codec is deliberately tiny and dependency-free: values are
//! unsigned integers (up to `u128`), strings, or arrays of unsigned
//! integers — exactly what [`spcp_system::RunStats`] needs. Unknown keys
//! are ignored on decode so the format can grow fields without breaking
//! old readers.
//!
//! Heavy optional payloads (`comm_matrix`, `epoch_records`, `pc_volumes`,
//! traces) do **not** travel through the spool; streamed sweeps reject
//! recording matrices up front.

use std::collections::HashMap;
use std::time::Duration;

use spcp_sim::{Histogram, MeanAccumulator};
use spcp_system::RunStats;

/// Spool format version stamped into every record and shard header.
pub const RECORD_VERSION: u64 = 1;

/// One completed run as it travels through a spool file.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Position in the canonical matrix ordering (`RunSpec::index`).
    pub index: usize,
    /// The run's `RunSpec::id()` string, the resume key.
    pub id: String,
    /// Wall-clock time of the run (timing metadata, never compared).
    pub wall: Duration,
    /// Worker slot that executed the run (informational only).
    pub worker: usize,
    /// The reconstructed statistics.
    pub stats: RunStats,
}

// ---------------------------------------------------------------- JSON

/// A JSON value as used by spool records.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(u128),
    Str(String),
    Arr(Vec<u128>),
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental writer for one flat JSON object.
#[derive(Debug, Default)]
struct ObjWriter {
    buf: String,
}

impl ObjWriter {
    fn new() -> Self {
        ObjWriter {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        push_json_str(&mut self.buf, key);
        self.buf.push(':');
    }

    fn num(&mut self, key: &str, v: u128) {
        self.key(key);
        self.buf.push_str(&v.to_string());
    }

    fn str(&mut self, key: &str, v: &str) {
        self.key(key);
        push_json_str(&mut self.buf, v);
    }

    fn arr(&mut self, key: &str, vs: impl IntoIterator<Item = u128>) {
        self.key(key);
        self.buf.push('[');
        for (i, v) in vs.into_iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push(']');
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Parses one flat JSON object of the record subset.
fn parse_object(s: &str) -> Result<HashMap<String, Val>, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let map = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(map)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn object(&mut self) -> Result<HashMap<String, Val>, String> {
        self.expect(b'{')?;
        let mut map = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(map);
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'0'..=b'9') => Ok(Val::Num(self.number()?)),
            _ => Err(format!("unexpected value at offset {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Val, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Val::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.number()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Val::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<u128, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected digits at offset {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|_| format!("integer overflow at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is already &str-valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

// ----------------------------------------------------- record en/decode

fn get_num(map: &HashMap<String, Val>, key: &str) -> Result<u128, String> {
    match map.get(key) {
        Some(Val::Num(n)) => Ok(*n),
        Some(_) => Err(format!("field '{key}' is not a number")),
        None => Err(format!("missing field '{key}'")),
    }
}

fn get_u64(map: &HashMap<String, Val>, key: &str) -> Result<u64, String> {
    u64::try_from(get_num(map, key)?).map_err(|_| format!("field '{key}' exceeds u64"))
}

fn get_str(map: &HashMap<String, Val>, key: &str) -> Result<String, String> {
    match map.get(key) {
        Some(Val::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("field '{key}' is not a string")),
        None => Err(format!("missing field '{key}'")),
    }
}

fn get_arr_u64(map: &HashMap<String, Val>, key: &str) -> Result<Vec<u64>, String> {
    match map.get(key) {
        Some(Val::Arr(vs)) => vs
            .iter()
            .map(|&v| u64::try_from(v).map_err(|_| format!("field '{key}' exceeds u64")))
            .collect(),
        Some(_) => Err(format!("field '{key}' is not an array")),
        None => Err(format!("missing field '{key}'")),
    }
}

/// One row of the plain-`u64` statistics field table: key, getter, setter.
type U64Field = (&'static str, fn(&RunStats) -> u64, fn(&mut RunStats, u64));

/// The `(key, getter, setter)` table of plain `u64` statistics fields —
/// one place to keep encode and decode in lockstep.
const U64_FIELDS: [U64Field; 23] = [
    ("total_ops", |s| s.total_ops, |s, v| s.total_ops = v),
    ("loads", |s| s.loads, |s, v| s.loads = v),
    ("stores", |s| s.stores, |s, v| s.stores = v),
    ("l1_hits", |s| s.l1_hits, |s, v| s.l1_hits = v),
    ("l2_hits", |s| s.l2_hits, |s, v| s.l2_hits = v),
    ("l2_misses", |s| s.l2_misses, |s, v| s.l2_misses = v),
    ("upgrades", |s| s.upgrades, |s, v| s.upgrades = v),
    ("comm_misses", |s| s.comm_misses, |s, v| s.comm_misses = v),
    (
        "noncomm_misses",
        |s| s.noncomm_misses,
        |s, v| s.noncomm_misses = v,
    ),
    ("exec_cycles", |s| s.exec_cycles, |s, v| s.exec_cycles = v),
    (
        "snoop_probes",
        |s| s.snoop_probes,
        |s, v| s.snoop_probes = v,
    ),
    ("predictions", |s| s.predictions, |s, v| s.predictions = v),
    (
        "pred_sufficient",
        |s| s.pred_sufficient,
        |s, v| s.pred_sufficient = v,
    ),
    (
        "pred_sufficient_comm",
        |s| s.pred_sufficient_comm,
        |s, v| s.pred_sufficient_comm = v,
    ),
    (
        "pred_insufficient",
        |s| s.pred_insufficient,
        |s, v| s.pred_insufficient = v,
    ),
    (
        "indirections",
        |s| s.indirections,
        |s, v| s.indirections = v,
    ),
    (
        "predicted_set_sum",
        |s| s.predicted_set_sum,
        |s, v| s.predicted_set_sum = v,
    ),
    (
        "actual_set_sum",
        |s| s.actual_set_sum,
        |s, v| s.actual_set_sum = v,
    ),
    (
        "predictor_storage_bits",
        |s| s.predictor_storage_bits,
        |s, v| s.predictor_storage_bits = v,
    ),
    (
        "pred_overhead_comm",
        |s| s.pred_overhead_comm,
        |s, v| s.pred_overhead_comm = v,
    ),
    (
        "pred_overhead_noncomm",
        |s| s.pred_overhead_noncomm,
        |s, v| s.pred_overhead_noncomm = v,
    ),
    (
        "filtered_predictions",
        |s| s.filtered_predictions,
        |s, v| s.filtered_predictions = v,
    ),
    ("migrations", |s| s.migrations, |s, v| s.migrations = v),
];

fn write_mean(w: &mut ObjWriter, prefix: &str, m: &MeanAccumulator) {
    w.num(&format!("{prefix}_sum"), m.sum());
    w.num(&format!("{prefix}_count"), m.count() as u128);
    w.num(&format!("{prefix}_min"), m.raw_min() as u128);
    w.num(&format!("{prefix}_max"), m.raw_max() as u128);
}

fn read_mean(map: &HashMap<String, Val>, prefix: &str) -> Result<MeanAccumulator, String> {
    Ok(MeanAccumulator::from_parts(
        get_num(map, &format!("{prefix}_sum"))?,
        get_u64(map, &format!("{prefix}_count"))?,
        get_u64(map, &format!("{prefix}_min"))?,
        get_u64(map, &format!("{prefix}_max"))?,
    ))
}

/// Encodes a run record as one flat JSON object (the frame payload).
pub fn encode_record(rec: &RunRecord) -> String {
    let mut w = ObjWriter::new();
    w.str("kind", "run");
    w.num("v", RECORD_VERSION as u128);
    w.num("index", rec.index as u128);
    w.str("id", &rec.id);
    w.num("wall_ns", rec.wall.as_nanos());
    w.num("worker", rec.worker as u128);
    let s = &rec.stats;
    w.str("benchmark", &s.benchmark);
    w.str("protocol", &s.protocol);
    for (key, get, _) in U64_FIELDS {
        w.num(key, get(s) as u128);
    }
    write_mean(&mut w, "ml", &s.miss_latency);
    write_mean(&mut w, "cml", &s.comm_miss_latency);
    w.arr(
        "hist_bounds",
        s.miss_latency_hist.bounds().iter().map(|&b| b as u128),
    );
    w.arr(
        "hist_counts",
        s.miss_latency_hist
            .bucket_counts()
            .iter()
            .map(|&c| c as u128),
    );
    w.num("noc_messages", s.noc.messages as u128);
    w.num("noc_bytes_injected", s.noc.bytes_injected as u128);
    w.num("noc_byte_hops", s.noc.byte_hops as u128);
    w.num("noc_ctrl_byte_hops", s.noc.ctrl_byte_hops as u128);
    w.num("noc_contention_cycles", s.noc.contention_cycles as u128);
    w.num("noc_energy_bits", s.noc.energy.to_bits() as u128);
    w.num("snoop_energy_bits", s.snoop_energy.to_bits() as u128);
    w.finish()
}

/// Decodes a frame payload back into a [`RunRecord`].
///
/// Heavy optional payloads (communication matrix, epoch records, traces)
/// are not spooled, so the reconstructed `RunStats` carries their empty
/// defaults; every summary/golden/report field round-trips bit-exactly.
pub fn decode_record(payload: &str) -> Result<RunRecord, String> {
    let map = parse_object(payload)?;
    if get_str(&map, "kind")? != "run" {
        return Err("not a run record".into());
    }
    let v = get_u64(&map, "v")?;
    if v != RECORD_VERSION {
        return Err(format!("unsupported record version {v}"));
    }
    let mut stats = RunStats {
        benchmark: get_str(&map, "benchmark")?,
        protocol: get_str(&map, "protocol")?,
        ..RunStats::default()
    };
    for (key, _, set) in U64_FIELDS {
        set(&mut stats, get_u64(&map, key)?);
    }
    stats.miss_latency = read_mean(&map, "ml")?;
    stats.comm_miss_latency = read_mean(&map, "cml")?;
    let bounds = get_arr_u64(&map, "hist_bounds")?;
    let counts = get_arr_u64(&map, "hist_counts")?;
    if counts.len() != bounds.len() + 1 || !bounds.windows(2).all(|w| w[0] < w[1]) {
        return Err("malformed latency histogram".into());
    }
    stats.miss_latency_hist = Histogram::from_parts(&bounds, &counts);
    stats.noc.messages = get_u64(&map, "noc_messages")?;
    stats.noc.bytes_injected = get_u64(&map, "noc_bytes_injected")?;
    stats.noc.byte_hops = get_u64(&map, "noc_byte_hops")?;
    stats.noc.ctrl_byte_hops = get_u64(&map, "noc_ctrl_byte_hops")?;
    stats.noc.contention_cycles = get_u64(&map, "noc_contention_cycles")?;
    stats.noc.energy = f64::from_bits(get_u64(&map, "noc_energy_bits")?);
    stats.snoop_energy = f64::from_bits(get_u64(&map, "snoop_energy_bits")?);
    Ok(RunRecord {
        index: get_u64(&map, "index")? as usize,
        id: get_str(&map, "id")?,
        wall: Duration::from_nanos(u64::try_from(get_num(&map, "wall_ns")?).unwrap_or(u64::MAX)),
        worker: get_u64(&map, "worker")? as usize,
        stats,
    })
}

/// The header record opening every shard file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHeader {
    /// Format version.
    pub version: u64,
    /// Fingerprint of the matrix the shard belongs to.
    pub fingerprint: u64,
    /// Total number of runs in the matrix (all shards together).
    pub specs: u64,
}

/// Encodes a shard header payload.
pub fn encode_header(h: &ShardHeader) -> String {
    let mut w = ObjWriter::new();
    w.str("kind", "shard");
    w.num("v", h.version as u128);
    w.num("fingerprint", h.fingerprint as u128);
    w.num("specs", h.specs as u128);
    w.finish()
}

/// Decodes a shard header payload.
pub fn decode_header(payload: &str) -> Result<ShardHeader, String> {
    let map = parse_object(payload)?;
    if get_str(&map, "kind")? != "shard" {
        return Err("not a shard header".into());
    }
    Ok(ShardHeader {
        version: get_u64(&map, "v")?,
        fingerprint: get_u64(&map, "fingerprint")?,
        specs: get_u64(&map, "specs")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> RunRecord {
        let mut stats = RunStats {
            benchmark: "fft".to_string(),
            protocol: "Directory (MESIF)".to_string(),
            total_ops: 123_456,
            exec_cycles: 987_654,
            l2_misses: 3210,
            comm_misses: 2100,
            noncomm_misses: 1110,
            ..RunStats::default()
        };
        stats.miss_latency.record(17);
        stats.miss_latency.record(250);
        stats.comm_miss_latency.record(250);
        stats.miss_latency_hist.record(17);
        stats.miss_latency_hist.record(250);
        stats.noc.messages = 5;
        stats.noc.byte_hops = 4096;
        stats.noc.energy = 1234.5678;
        stats.snoop_energy = 0.125;
        RunRecord {
            index: 7,
            id: "fft/dir/seed7/paper16".to_string(),
            wall: Duration::from_nanos(123_456_789),
            worker: 3,
            stats,
        }
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        let rec = sample_record();
        let payload = encode_record(&rec);
        assert!(!payload.contains('\n'));
        let back = decode_record(&payload).unwrap();
        assert_eq!(back.index, rec.index);
        assert_eq!(back.id, rec.id);
        assert_eq!(back.wall, rec.wall);
        assert_eq!(back.worker, rec.worker);
        assert_eq!(back.stats.benchmark, rec.stats.benchmark);
        assert_eq!(back.stats.protocol, rec.stats.protocol);
        assert_eq!(back.stats.total_ops, rec.stats.total_ops);
        assert_eq!(back.stats.exec_cycles, rec.stats.exec_cycles);
        assert_eq!(back.stats.miss_latency, rec.stats.miss_latency);
        assert_eq!(back.stats.comm_miss_latency, rec.stats.comm_miss_latency);
        assert_eq!(back.stats.miss_latency_hist, rec.stats.miss_latency_hist);
        assert_eq!(back.stats.noc, rec.stats.noc);
        assert_eq!(back.stats.snoop_energy.to_bits(), 0.125f64.to_bits());
        // And the re-encoding is byte-identical (canonical field order).
        assert_eq!(encode_record(&back), payload);
    }

    #[test]
    fn decode_rejects_missing_fields() {
        let err = decode_record(r#"{"kind":"run","v":1}"#).unwrap_err();
        assert!(err.contains("missing field"), "{err}");
    }

    #[test]
    fn decode_rejects_wrong_kind_and_version() {
        let rec = sample_record();
        let payload = encode_record(&rec);
        let other = payload.replace(r#""kind":"run""#, r#""kind":"walk""#);
        assert!(decode_record(&other).is_err());
        let other = payload.replace(r#""v":1"#, r#""v":999"#);
        assert!(decode_record(&other).unwrap_err().contains("version"));
    }

    #[test]
    fn strings_with_specials_round_trip() {
        let mut rec = sample_record();
        rec.id = "weird\"id\\with\tchars".to_string();
        rec.stats.benchmark = "bench\u{1}name".to_string();
        let back = decode_record(&encode_record(&rec)).unwrap();
        assert_eq!(back.id, rec.id);
        assert_eq!(back.stats.benchmark, rec.stats.benchmark);
    }

    #[test]
    fn header_round_trips() {
        let h = ShardHeader {
            version: RECORD_VERSION,
            fingerprint: 0xdead_beef_cafe_f00d,
            specs: 40,
        };
        assert_eq!(decode_header(&encode_header(&h)).unwrap(), h);
        assert!(decode_header(r#"{"kind":"run","v":1}"#).is_err());
    }

    #[test]
    fn parser_rejects_malformed_objects() {
        assert!(parse_object("").is_err());
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a":}"#).is_err());
        assert!(parse_object(r#"{"a":1,}"#).is_err());
        assert!(parse_object(r#"{"a":1} trailing"#).is_err());
        assert!(parse_object(r#"{"a":[1,]}"#).is_err());
        assert!(parse_object(r#"{"a":"unterminated}"#).is_err());
    }

    #[test]
    fn parser_accepts_empty_object_and_array() {
        assert!(parse_object("{}").unwrap().is_empty());
        let map = parse_object(r#"{"a":[]}"#).unwrap();
        assert_eq!(map.get("a"), Some(&Val::Arr(Vec::new())));
    }
}
