//! Parallel experiment sweep engine for the SPCP reproduction.
//!
//! The paper's evaluation is a large run matrix — benchmarks × protocols ×
//! seeds × machine configurations. Each cell is an independent,
//! single-threaded, fully deterministic simulation, so the matrix is
//! embarrassingly parallel. This crate provides:
//!
//! - [`RunMatrix`] / [`RunSpec`] — the declarative matrix and its canonical
//!   expansion order,
//! - [`SweepEngine`] — a `std::thread::scope` worker pool with per-run
//!   wall-time and throughput metrics ([`SweepResult`]),
//! - [`SweepSummary`] — exact, order-independent aggregation of
//!   [`spcp_system::RunStats`],
//! - [`golden`] — golden-snapshot emit/verify of run stats to a line-based
//!   text format (see `docs/HARNESS.md` and `docs/FORMATS.md`),
//! - [`stream`] / [`spool`] / [`frame`] — streamed sweeps: workers append
//!   completed runs as checksummed JSONL frames to per-shard spool files,
//!   a bounded-memory merge replays them in canonical order, and
//!   crash-safe resume ([`StreamConfig::resume`]) re-enqueues only runs
//!   without a complete record.
//!
//! # Determinism guarantees
//!
//! For a fixed matrix, the engine produces bit-identical per-run stats and
//! bit-identical merged summaries at any `--jobs` value. This holds
//! because runs share no mutable state, results are collected into slots
//! indexed by the canonical matrix order, and summaries use exact integer
//! accumulators whose merge is commutative and associative.
//!
//! # Examples
//!
//! ```
//! use spcp_harness::{RunMatrix, SweepEngine};
//! use spcp_system::ProtocolKind;
//! use spcp_workloads::suite;
//!
//! let matrix = RunMatrix::new()
//!     .bench(suite::by_name("fft").unwrap())
//!     .protocol("dir", ProtocolKind::Directory)
//!     .protocol("bc", ProtocolKind::Broadcast);
//! let serial = SweepEngine::new(1).run(&matrix);
//! let parallel = SweepEngine::new(4).run(&matrix);
//! assert_eq!(serial.summary(), parallel.summary());
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod frame;
pub mod golden;
pub mod matrix;
pub mod record;
pub mod spool;
pub mod stream;
pub mod summary;

pub use engine::{RunResult, SweepEngine, SweepResult};
pub use matrix::{MachineEntry, ProtocolEntry, RunMatrix, RunSpec, VariantEntry};
pub use record::RunRecord;
pub use spool::SpoolError;
pub use stream::{StreamConfig, StreamedSweep};
pub use summary::SweepSummary;
