//! Spool files: per-worker shard files of framed run records, plus the
//! bounded-memory merge that folds them back into canonical matrix order.
//!
//! A streamed sweep writes one shard file per worker per invocation
//! (`shard-g<generation>-w<worker>.jsonl`). Each shard opens with a header
//! frame carrying the matrix fingerprint, followed by one run-record frame
//! per completed run. Because workers claim specs through a monotonically
//! increasing cursor, **every shard file is sorted by run index**, which is
//! what lets [`SpoolMerge`] replay a whole sweep in canonical order while
//! holding only one record per shard in memory.
//!
//! Crash safety comes from the frame layer ([`crate::frame`]): a torn tail
//! line is discarded, a corrupt line is rejected, and resume simply treats
//! both as "run not done".

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::frame;
use crate::matrix::RunSpec;
use crate::record::{self, RunRecord, ShardHeader, RECORD_VERSION};

/// Why a spool operation failed.
#[derive(Debug)]
pub enum SpoolError {
    /// An underlying filesystem error.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        error: io::Error,
    },
    /// A shard file is structurally invalid beyond what crash truncation
    /// can explain (e.g. a run record appears before any shard header, or
    /// a record's identity contradicts the matrix).
    Corrupt {
        /// The shard file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// A shard belongs to a different run matrix than the one being
    /// swept — resuming it would silently mix incompatible results.
    MatrixMismatch {
        /// The shard file.
        path: PathBuf,
        /// Fingerprint of the matrix being swept.
        expected: u64,
        /// Fingerprint stored in the shard header.
        found: u64,
    },
    /// The output directory already holds shard files and `--resume` was
    /// not requested.
    NotEmpty {
        /// The output directory.
        dir: PathBuf,
    },
    /// A merge ended with runs still missing from the spool.
    Incomplete {
        /// How many matrix cells have no complete record.
        missing: usize,
        /// Total cells in the matrix.
        total: usize,
    },
    /// The matrix cannot be streamed (e.g. recording matrices, whose heavy
    /// per-epoch payloads are not spooled).
    Unsupported(String),
}

impl fmt::Display for SpoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpoolError::Io { path, error } => {
                write!(f, "spool io error at {}: {error}", path.display())
            }
            SpoolError::Corrupt { path, detail } => {
                write!(f, "corrupt spool shard {}: {detail}", path.display())
            }
            SpoolError::MatrixMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "shard {} belongs to a different matrix (fingerprint {found:016x}, \
                 sweep expects {expected:016x}); use a fresh --out directory",
                path.display()
            ),
            SpoolError::NotEmpty { dir } => write!(
                f,
                "output directory {} already contains shard files; \
                 pass --resume to continue them or choose a fresh directory",
                dir.display()
            ),
            SpoolError::Incomplete { missing, total } => write!(
                f,
                "spool is incomplete: {missing} of {total} runs have no complete record"
            ),
            SpoolError::Unsupported(what) => write!(f, "streaming unsupported: {what}"),
        }
    }
}

impl std::error::Error for SpoolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpoolError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

fn io_err(path: &Path, error: io::Error) -> SpoolError {
    SpoolError::Io {
        path: path.to_path_buf(),
        error,
    }
}

/// Fingerprint of an expanded matrix: FNV-1a over every spec id (in
/// canonical order) plus the spec count.
///
/// Stored in shard headers so `--resume` refuses to mix results from a
/// different matrix into the current sweep.
pub fn fingerprint(specs: &[RunSpec]) -> u64 {
    let mut buf = String::new();
    for spec in specs {
        buf.push_str(&spec.id());
        buf.push('\n');
    }
    buf.push_str(&specs.len().to_string());
    frame::checksum(buf.as_bytes())
}

/// Shard file name for one worker of one sweep invocation (generation).
pub fn shard_name(generation: u64, worker: usize) -> String {
    format!("shard-g{generation:04}-w{worker:04}.jsonl")
}

/// All shard files in a spool directory, sorted by name (generation-major,
/// then worker — i.e. oldest generation first).
pub fn shard_files(dir: &Path) -> Result<Vec<PathBuf>, SpoolError> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err(dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("shard-") && name.ends_with(".jsonl") {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// Next free generation number in a spool directory (0 for a fresh one).
pub fn next_generation(dir: &Path) -> Result<u64, SpoolError> {
    let mut next = 0;
    for path in shard_files(dir)? {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        // shard-g<gen>-w<worker>.jsonl
        if let Some(gen) = name
            .strip_prefix("shard-g")
            .and_then(|r| r.split('-').next())
            .and_then(|g| g.parse::<u64>().ok())
        {
            next = next.max(gen + 1);
        }
    }
    Ok(next)
}

/// Append-only writer for one shard file.
///
/// The file is created lazily on the first [`Self::append`], so workers
/// that never complete a run leave no empty shard behind. The header frame
/// is written first; records are flushed **and** fsync'd every
/// `flush_every` appends, bounding how many completed runs a crash can
/// lose.
#[derive(Debug)]
pub struct SpoolWriter {
    path: PathBuf,
    header: ShardHeader,
    file: Option<BufWriter<File>>,
    flush_every: usize,
    pending: usize,
    written: usize,
}

impl SpoolWriter {
    /// A writer for `path` (not yet created) flushing every `flush_every`
    /// records (clamped to at least 1).
    pub fn new(path: impl Into<PathBuf>, header: ShardHeader, flush_every: usize) -> Self {
        SpoolWriter {
            path: path.into(),
            header,
            file: None,
            flush_every: flush_every.max(1),
            pending: 0,
            written: 0,
        }
    }

    fn open(&mut self) -> Result<&mut BufWriter<File>, SpoolError> {
        if self.file.is_none() {
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&self.path)
                .map_err(|e| io_err(&self.path, e))?;
            let mut writer = BufWriter::new(file);
            writer
                .write_all(frame::encode(&record::encode_header(&self.header)).as_bytes())
                .map_err(|e| io_err(&self.path, e))?;
            self.file = Some(writer);
        }
        Ok(self.file.as_mut().expect("just opened"))
    }

    /// Appends one run record, syncing if the flush interval elapsed.
    pub fn append(&mut self, rec: &RunRecord) -> Result<(), SpoolError> {
        let path = self.path.clone();
        let writer = self.open()?;
        writer
            .write_all(frame::encode(&record::encode_record(rec)).as_bytes())
            .map_err(|e| io_err(&path, e))?;
        self.written += 1;
        self.pending += 1;
        if self.pending >= self.flush_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes buffered records and fsyncs file data to disk.
    pub fn sync(&mut self) -> Result<(), SpoolError> {
        if let Some(writer) = self.file.as_mut() {
            writer.flush().map_err(|e| io_err(&self.path, e))?;
            writer
                .get_ref()
                .sync_data()
                .map_err(|e| io_err(&self.path, e))?;
        }
        self.pending = 0;
        Ok(())
    }

    /// Records appended so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Final sync; consumes the writer.
    pub fn finish(mut self) -> Result<(), SpoolError> {
        self.sync()
    }
}

/// Incremental reader over one shard file.
///
/// Damaged lines (failed checksum, bad frame, undecodable record) are
/// counted and skipped, and an unterminated tail line is discarded — both
/// are exactly what a crash leaves behind, and resume treats the affected
/// runs as not done. Only structural impossibilities (a record before the
/// shard header) are hard errors.
#[derive(Debug)]
pub struct ShardReader {
    path: PathBuf,
    reader: BufReader<File>,
    buf: Vec<u8>,
    header: Option<ShardHeader>,
    rejected: usize,
    truncated_tail: bool,
    done: bool,
}

impl ShardReader {
    /// Opens a shard and reads up to its header frame.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, SpoolError> {
        let path = path.into();
        let file = File::open(&path).map_err(|e| io_err(&path, e))?;
        let mut reader = ShardReader {
            path,
            reader: BufReader::new(file),
            buf: Vec::with_capacity(1024),
            header: None,
            rejected: 0,
            truncated_tail: false,
            done: false,
        };
        reader.read_header()?;
        Ok(reader)
    }

    /// Reads lines until the first valid frame, which must be a shard
    /// header. A shard whose header never made it to disk (crash at file
    /// creation) reads as empty.
    fn read_header(&mut self) -> Result<(), SpoolError> {
        while let Some(payload) = self.next_payload()? {
            match record::decode_header(&payload) {
                Ok(h) => {
                    if h.version != RECORD_VERSION {
                        return Err(SpoolError::Corrupt {
                            path: self.path.clone(),
                            detail: format!("unsupported spool version {}", h.version),
                        });
                    }
                    self.header = Some(h);
                    return Ok(());
                }
                Err(_) => {
                    // A valid frame that is not a header: a record cannot
                    // legally precede the header (writes are sequential),
                    // so this is real corruption, not a crash artifact.
                    if record::decode_record(&payload).is_ok() {
                        return Err(SpoolError::Corrupt {
                            path: self.path.clone(),
                            detail: "run record before shard header".to_string(),
                        });
                    }
                    self.rejected += 1;
                }
            }
        }
        Ok(())
    }

    /// Next valid frame payload, skipping damaged lines; `None` at EOF or
    /// at a torn tail.
    fn next_payload(&mut self) -> Result<Option<String>, SpoolError> {
        while !self.done {
            self.buf.clear();
            let n = self
                .reader
                .read_until(b'\n', &mut self.buf)
                .map_err(|e| io_err(&self.path, e))?;
            if n == 0 {
                self.done = true;
                break;
            }
            if self.buf.last() != Some(&b'\n') {
                // Unterminated tail: the signature of a crash mid-append.
                self.truncated_tail = true;
                self.done = true;
                break;
            }
            match frame::decode_line(&self.buf[..self.buf.len() - 1]) {
                Ok(payload) => return Ok(Some(payload.to_string())),
                Err(_) => self.rejected += 1,
            }
        }
        Ok(None)
    }

    /// Next complete run record, skipping damaged lines.
    pub fn next_record(&mut self) -> Result<Option<RunRecord>, SpoolError> {
        while let Some(payload) = self.next_payload()? {
            match record::decode_record(&payload) {
                Ok(rec) => return Ok(Some(rec)),
                Err(_) => self.rejected += 1,
            }
        }
        Ok(None)
    }

    /// The shard's header, if one was read intact.
    pub fn header(&self) -> Option<&ShardHeader> {
        self.header.as_ref()
    }

    /// The shard file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Damaged (rejected) lines seen so far.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Whether the file ended in a torn, discarded tail line.
    pub fn truncated_tail(&self) -> bool {
        self.truncated_tail
    }
}

/// Bounded-memory k-way merge over shard files, yielding run records in
/// ascending index order with cross-shard duplicates dropped (first wins —
/// duplicates are bit-identical by the determinism contract anyway).
///
/// Memory held: one decoded record per shard, independent of matrix size.
#[derive(Debug)]
pub struct SpoolMerge {
    readers: Vec<ShardReader>,
    heads: Vec<Option<RunRecord>>,
    duplicates: usize,
    last_index: Option<usize>,
}

impl SpoolMerge {
    /// Opens every shard, verifying each intact header against the
    /// sweep's matrix fingerprint.
    pub fn open(paths: &[PathBuf], expected_fingerprint: u64) -> Result<Self, SpoolError> {
        let mut readers = Vec::with_capacity(paths.len());
        let mut heads = Vec::with_capacity(paths.len());
        for path in paths {
            let mut reader = ShardReader::open(path)?;
            if let Some(h) = reader.header() {
                if h.fingerprint != expected_fingerprint {
                    return Err(SpoolError::MatrixMismatch {
                        path: path.clone(),
                        expected: expected_fingerprint,
                        found: h.fingerprint,
                    });
                }
            }
            let head = reader.next_record()?;
            readers.push(reader);
            heads.push(head);
        }
        Ok(SpoolMerge {
            readers,
            heads,
            duplicates: 0,
            last_index: None,
        })
    }

    /// Next record in ascending index order, or `None` when all shards are
    /// exhausted. Not an `Iterator`: every pull is fallible, and callers
    /// want `?` on the `Result`, not `Option<Result<…>>` adapters.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<RunRecord>, SpoolError> {
        loop {
            let mut min: Option<usize> = None;
            for (slot, head) in self.heads.iter().enumerate() {
                if let Some(rec) = head {
                    let better = match min {
                        None => true,
                        Some(m) => {
                            rec.index < self.heads[m].as_ref().expect("min slot is occupied").index
                        }
                    };
                    if better {
                        min = Some(slot);
                    }
                }
            }
            let Some(slot) = min else { return Ok(None) };
            let rec = self.heads[slot].take().expect("min slot is occupied");
            self.heads[slot] = self.readers[slot].next_record()?;
            if self.last_index == Some(rec.index) {
                // Cross-generation duplicate (a record that reached disk
                // despite never being fsync'd before the crash).
                self.duplicates += 1;
                continue;
            }
            self.last_index = Some(rec.index);
            return Ok(Some(rec));
        }
    }

    /// Cross-shard duplicate records dropped so far.
    pub fn duplicates(&self) -> usize {
        self.duplicates
    }

    /// Total damaged lines skipped across all shards so far.
    pub fn rejected(&self) -> usize {
        self.readers.iter().map(|r| r.rejected()).sum()
    }

    /// How many shards ended in a torn, discarded tail line.
    pub fn truncated_tails(&self) -> usize {
        self.readers.iter().filter(|r| r.truncated_tail()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::RunMatrix;
    use spcp_system::{ProtocolKind, RunStats};
    use std::time::Duration;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spcp-spool-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn header(fp: u64) -> ShardHeader {
        ShardHeader {
            version: RECORD_VERSION,
            fingerprint: fp,
            specs: 4,
        }
    }

    fn rec(index: usize, ops: u64) -> RunRecord {
        RunRecord {
            index,
            id: format!("run{index}"),
            wall: Duration::from_millis(1),
            worker: 0,
            stats: RunStats {
                benchmark: "b".into(),
                protocol: "p".into(),
                total_ops: ops,
                ..RunStats::default()
            },
        }
    }

    #[test]
    fn writer_reader_round_trip() {
        let dir = tmp_dir("rt");
        let path = dir.join(shard_name(0, 0));
        let mut w = SpoolWriter::new(&path, header(42), 2);
        for i in 0..5 {
            w.append(&rec(i, 100 + i as u64)).unwrap();
        }
        assert_eq!(w.written(), 5);
        w.finish().unwrap();

        let mut r = ShardReader::open(&path).unwrap();
        assert_eq!(r.header().unwrap().fingerprint, 42);
        let mut seen = Vec::new();
        while let Some(rec) = r.next_record().unwrap() {
            seen.push((rec.index, rec.stats.total_ops));
        }
        assert_eq!(seen, [(0, 100), (1, 101), (2, 102), (3, 103), (4, 104)]);
        assert_eq!(r.rejected(), 0);
        assert!(!r.truncated_tail());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_writer_creates_no_file() {
        let dir = tmp_dir("lazy");
        let path = dir.join(shard_name(0, 1));
        let w = SpoolWriter::new(&path, header(1), 8);
        w.finish().unwrap();
        assert!(!path.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_discarded_not_an_error() {
        let dir = tmp_dir("trunc");
        let path = dir.join(shard_name(0, 0));
        let mut w = SpoolWriter::new(&path, header(7), 1);
        w.append(&rec(0, 10)).unwrap();
        w.append(&rec(1, 11)).unwrap();
        w.finish().unwrap();

        // Simulate a crash mid-append: chop bytes off the tail record.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let mut r = ShardReader::open(&path).unwrap();
        let first = r.next_record().unwrap().unwrap();
        assert_eq!(first.index, 0);
        assert!(r.next_record().unwrap().is_none());
        assert!(r.truncated_tail());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_before_header_is_corrupt() {
        let dir = tmp_dir("corrupt");
        let path = dir.join(shard_name(0, 0));
        let line = frame::encode(&record::encode_record(&rec(0, 1)));
        fs::write(&path, line).unwrap();
        match ShardReader::open(&path) {
            Err(SpoolError::Corrupt { detail, .. }) => {
                assert!(detail.contains("before shard header"), "{detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_interleaves_and_dedups() {
        let dir = tmp_dir("merge");
        let a = dir.join(shard_name(0, 0));
        let b = dir.join(shard_name(0, 1));
        let c = dir.join(shard_name(1, 0));
        let mut w = SpoolWriter::new(&a, header(9), 1);
        for i in [0, 2, 5] {
            w.append(&rec(i, i as u64)).unwrap();
        }
        w.finish().unwrap();
        let mut w = SpoolWriter::new(&b, header(9), 1);
        for i in [1, 4] {
            w.append(&rec(i, i as u64)).unwrap();
        }
        w.finish().unwrap();
        // Generation 1 re-ran index 4 (its gen-0 record was presumed lost)
        // and finished index 3.
        let mut w = SpoolWriter::new(&c, header(9), 1);
        for i in [3, 4] {
            w.append(&rec(i, i as u64)).unwrap();
        }
        w.finish().unwrap();

        let mut merge = SpoolMerge::open(&shard_files(&dir).unwrap(), 9).unwrap();
        let mut order = Vec::new();
        while let Some(rec) = merge.next().unwrap() {
            order.push(rec.index);
        }
        assert_eq!(order, [0, 1, 2, 3, 4, 5]);
        assert_eq!(merge.duplicates(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_rejects_foreign_fingerprint() {
        let dir = tmp_dir("foreign");
        let path = dir.join(shard_name(0, 0));
        let mut w = SpoolWriter::new(&path, header(123), 1);
        w.append(&rec(0, 1)).unwrap();
        w.finish().unwrap();
        match SpoolMerge::open(&[path], 456) {
            Err(SpoolError::MatrixMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, 456);
                assert_eq!(found, 123);
            }
            other => panic!("expected MatrixMismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_files_sorts_and_generations_advance() {
        let dir = tmp_dir("gen");
        assert_eq!(next_generation(&dir).unwrap(), 0);
        fs::write(dir.join(shard_name(0, 1)), "").unwrap();
        fs::write(dir.join(shard_name(2, 0)), "").unwrap();
        fs::write(dir.join("notashard.txt"), "").unwrap();
        let files = shard_files(&dir).unwrap();
        assert_eq!(files.len(), 2);
        assert!(files[0].ends_with(shard_name(0, 1)));
        assert!(files[1].ends_with(shard_name(2, 0)));
        assert_eq!(next_generation(&dir).unwrap(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_lists_empty() {
        let dir = std::env::temp_dir().join("spcp-spool-definitely-missing");
        assert!(shard_files(&dir).unwrap().is_empty());
        assert_eq!(next_generation(&dir).unwrap(), 0);
    }

    #[test]
    fn fingerprint_tracks_matrix_identity() {
        let m1 = RunMatrix::new()
            .bench(spcp_workloads::suite::by_name("fft").unwrap())
            .protocol("dir", ProtocolKind::Directory);
        let m2 = RunMatrix::new()
            .bench(spcp_workloads::suite::by_name("fft").unwrap())
            .protocol("bc", ProtocolKind::Broadcast);
        let f1 = fingerprint(&m1.expand());
        let f2 = fingerprint(&m2.expand());
        assert_ne!(f1, f2);
        assert_eq!(f1, fingerprint(&m1.expand()));
    }
}
