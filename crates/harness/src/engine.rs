//! The parallel sweep engine: fans a run matrix out over a scoped worker
//! pool and collects results in canonical matrix order.
//!
//! Determinism contract: each run is an isolated single-threaded simulation
//! keyed only by its [`RunSpec`], workers write results into per-run slots
//! indexed by `RunSpec::index`, and aggregation walks those slots in index
//! order. Worker count and OS scheduling therefore affect wall-clock time
//! only — never a single bit of the statistics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use spcp_system::RunStats;

use crate::matrix::{RunMatrix, RunSpec};
use crate::summary::SweepSummary;

/// Outcome of one run: stats plus the engine's own timing metadata.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The spec that produced this result.
    pub spec: RunSpec,
    /// The run's statistics.
    pub stats: RunStats,
    /// Wall-clock time this single run took.
    pub wall: Duration,
    /// Which worker slot executed the run (informational only).
    pub worker: usize,
}

impl RunResult {
    /// Simulated memory accesses retired per wall-clock second for this
    /// single run — the per-run analogue of
    /// [`SweepResult::throughput_ops_per_sec`].
    pub fn ops_per_sec(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            return 0.0;
        }
        self.stats.total_ops as f64 / wall
    }
}

/// All results of one sweep, in canonical matrix order.
#[derive(Debug)]
pub struct SweepResult {
    /// Per-run results, ordered by `RunSpec::index`.
    pub runs: Vec<RunResult>,
    /// Wall-clock time for the whole sweep.
    pub elapsed: Duration,
    /// Worker count the sweep ran with.
    pub jobs: usize,
}

impl SweepResult {
    /// Aggregates every run into an order-independent [`SweepSummary`].
    pub fn summary(&self) -> SweepSummary {
        let mut sum = SweepSummary::new();
        for r in &self.runs {
            sum.observe(&r.stats);
        }
        sum
    }

    /// Looks up one run by its matrix coordinates (first machine match).
    pub fn get(&self, bench: &str, protocol_label: &str, seed: u64) -> Option<&RunResult> {
        self.runs.iter().find(|r| {
            r.spec.bench.name == bench
                && r.spec.protocol_label == protocol_label
                && r.spec.seed == seed
        })
    }

    /// Looks up one run by its full matrix coordinates, including machine.
    pub fn get_on(
        &self,
        bench: &str,
        protocol_label: &str,
        seed: u64,
        machine_label: &str,
    ) -> Option<&RunResult> {
        self.runs.iter().find(|r| {
            r.spec.bench.name == bench
                && r.spec.protocol_label == protocol_label
                && r.spec.seed == seed
                && r.spec.machine_label == machine_label
        })
    }

    /// Looks up one run by bench, protocol, seed and variant label (any
    /// machine). The neutral default variant has the empty label.
    pub fn get_variant(
        &self,
        bench: &str,
        protocol_label: &str,
        seed: u64,
        variant_label: &str,
    ) -> Option<&RunResult> {
        self.runs.iter().find(|r| {
            r.spec.bench.name == bench
                && r.spec.protocol_label == protocol_label
                && r.spec.seed == seed
                && r.spec.variant.label == variant_label
        })
    }

    /// All runs under the given protocol label, in canonical matrix order.
    pub fn by_protocol(&self, label: &str) -> Vec<&RunResult> {
        self.runs
            .iter()
            .filter(|r| r.spec.protocol_label == label)
            .collect()
    }

    /// Sum of per-run wall times: the serial-equivalent workload.
    pub fn busy_time(&self) -> Duration {
        self.runs.iter().map(|r| r.wall).sum()
    }

    /// Observed parallel speedup: busy time over elapsed time.
    ///
    /// ≈1.0 at `--jobs 1`; approaches the worker count when runs are
    /// well-balanced and cores are available.
    pub fn speedup(&self) -> f64 {
        let elapsed = self.elapsed.as_secs_f64();
        if elapsed <= 0.0 {
            return 1.0;
        }
        self.busy_time().as_secs_f64() / elapsed
    }

    /// Simulated memory operations retired per wall-clock second.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        let elapsed = self.elapsed.as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let ops: u64 = self.runs.iter().map(|r| r.stats.total_ops).sum();
        ops as f64 / elapsed
    }

    /// One-line timing report, e.g. for bench binaries.
    pub fn timing_line(&self) -> String {
        format!(
            "{} runs | jobs={} | wall {:.2}s | busy {:.2}s | speedup {:.2}x | {:.0} ops/s",
            self.runs.len(),
            self.jobs,
            self.elapsed.as_secs_f64(),
            self.busy_time().as_secs_f64(),
            self.speedup(),
            self.throughput_ops_per_sec(),
        )
    }

    /// Multi-line per-run timing report: one `id | wall | ops/s` row per
    /// run in canonical order, closed by the [`Self::timing_line`] totals.
    ///
    /// Timing is measurement metadata, not simulation output: it never
    /// feeds [`Self::summary`] or golden snapshots, so reports vary run to
    /// run while the statistics stay bit-identical.
    pub fn timing_report(&self) -> String {
        let mut out = String::new();
        let id_width = self
            .runs
            .iter()
            .map(|r| r.spec.id().len())
            .max()
            .unwrap_or(0)
            .max(4);
        for r in &self.runs {
            out.push_str(&format!(
                "{:<id_width$}  {:>9.3}s  {:>12.0} ops/s\n",
                r.spec.id(),
                r.wall.as_secs_f64(),
                r.ops_per_sec(),
            ));
        }
        out.push_str(&self.timing_line());
        out.push('\n');
        out
    }
}

/// A fixed-width worker pool that executes [`RunMatrix`] sweeps.
///
/// # Examples
///
/// ```
/// use spcp_harness::{RunMatrix, SweepEngine};
/// use spcp_system::ProtocolKind;
/// use spcp_workloads::suite;
///
/// let matrix = RunMatrix::new()
///     .bench(suite::by_name("fft").unwrap())
///     .protocol("dir", ProtocolKind::Directory);
/// let result = SweepEngine::new(2).run(&matrix);
/// assert_eq!(result.runs.len(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SweepEngine {
    jobs: usize,
}

impl SweepEngine {
    /// An engine with `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        SweepEngine { jobs: jobs.max(1) }
    }

    /// An engine sized to the machine's available parallelism.
    pub fn auto() -> Self {
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SweepEngine::new(jobs)
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Expands and executes a matrix.
    pub fn run(&self, matrix: &RunMatrix) -> SweepResult {
        self.run_specs(matrix.expand())
    }

    /// Executes pre-expanded specs (their `index` fields define result
    /// order; they need not be contiguous).
    pub fn run_specs(&self, specs: Vec<RunSpec>) -> SweepResult {
        let started = Instant::now();
        let n = specs.len();
        let workers = self.jobs.min(n.max(1));

        // One slot per run. Workers claim specs through a shared cursor and
        // deposit into their spec's slot, so the collected order is the
        // canonical matrix order no matter which worker finished first.
        let slots: Vec<Mutex<Option<(RunStats, Duration, usize)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let specs_ref = &specs;

        std::thread::scope(|scope| {
            for worker in 0..workers {
                let slots = &slots;
                let cursor = &cursor;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let t0 = Instant::now();
                    let stats = specs_ref[i].execute();
                    let wall = t0.elapsed();
                    *slots[i].lock().unwrap() = Some((stats, wall, worker));
                });
            }
        });

        let mut runs = Vec::with_capacity(n);
        for (spec, slot) in specs.into_iter().zip(slots) {
            let (stats, wall, worker) = slot
                .into_inner()
                .unwrap()
                .expect("worker pool exited without filling every slot");
            runs.push(RunResult {
                spec,
                stats,
                wall,
                worker,
            });
        }

        SweepResult {
            runs,
            elapsed: started.elapsed(),
            jobs: workers.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcp_system::ProtocolKind;
    use spcp_workloads::suite;

    fn small_matrix() -> RunMatrix {
        RunMatrix::new()
            .bench(suite::by_name("fft").unwrap())
            .bench(suite::by_name("radix").unwrap())
            .protocol("dir", ProtocolKind::Directory)
            .protocol("bc", ProtocolKind::Broadcast)
    }

    #[test]
    fn results_arrive_in_matrix_order() {
        let result = SweepEngine::new(3).run(&small_matrix());
        assert_eq!(result.runs.len(), 4);
        for (i, r) in result.runs.iter().enumerate() {
            assert_eq!(r.spec.index, i);
        }
        assert!(result.get("fft", "dir", 7).is_some());
        assert!(result.get("fft", "missing", 7).is_none());
        assert!(result.get_on("fft", "dir", 7, "paper16").is_some());
        assert!(result.get_on("fft", "dir", 7, "other").is_none());
        let dirs = result.by_protocol("dir");
        assert_eq!(dirs.len(), 2);
        assert!(dirs.iter().all(|r| r.spec.protocol_label == "dir"));
    }

    #[test]
    fn worker_count_does_not_change_stats() {
        let serial = SweepEngine::new(1).run(&small_matrix());
        let parallel = SweepEngine::new(4).run(&small_matrix());
        for (a, b) in serial.runs.iter().zip(&parallel.runs) {
            assert_eq!(a.spec.id(), b.spec.id());
            assert_eq!(a.stats.exec_cycles, b.stats.exec_cycles);
            assert_eq!(a.stats.noc.byte_hops, b.stats.noc.byte_hops);
            assert_eq!(a.stats.total_ops, b.stats.total_ops);
        }
        assert_eq!(serial.summary(), parallel.summary());
    }

    #[test]
    fn timing_metrics_are_sane() {
        let result = SweepEngine::new(2).run(&small_matrix());
        assert!(result.elapsed > Duration::ZERO);
        assert!(result.busy_time() > Duration::ZERO);
        assert!(result.speedup() > 0.0);
        assert!(result.throughput_ops_per_sec() > 0.0);
        assert!(result.timing_line().contains("jobs=2"));
        for r in &result.runs {
            assert!(r.ops_per_sec() > 0.0);
        }
        let report = result.timing_report();
        assert!(report.contains("fft/dir/seed7/paper16"));
        assert!(report.contains("ops/s"));
        assert!(report.ends_with('\n'));
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(SweepEngine::new(0).jobs(), 1);
    }

    #[test]
    fn empty_spec_list_is_fine() {
        let result = SweepEngine::new(4).run_specs(Vec::new());
        assert!(result.runs.is_empty());
        assert_eq!(result.summary(), SweepSummary::new());
    }
}
