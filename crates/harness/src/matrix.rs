//! Declarative run matrices: the cross product of benchmarks, protocols,
//! seeds and machine configurations that an experiment sweeps over.

use spcp_system::{CmpSystem, MachineConfig, ProtocolKind, RunConfig, RunStats};
use spcp_workloads::BenchmarkSpec;

/// A labelled protocol entry in a [`RunMatrix`].
///
/// The label is what reports, golden files and lookups key on (e.g. `dir`,
/// `sp`), independent of the longer [`ProtocolKind::name`].
#[derive(Debug, Clone)]
pub struct ProtocolEntry {
    /// Short stable label used in reports and golden snapshots.
    pub label: String,
    /// The protocol configuration itself.
    pub kind: ProtocolKind,
}

/// A labelled machine configuration in a [`RunMatrix`].
#[derive(Debug, Clone)]
pub struct MachineEntry {
    /// Short stable label used in reports and golden snapshots.
    pub label: String,
    /// The machine configuration itself.
    pub config: MachineConfig,
}

/// A labelled run-scenario variant in a [`RunMatrix`]: the §5.5
/// thread-migration knobs that apply on top of a (bench, protocol, seed,
/// machine) cell.
///
/// The default matrix carries a single neutral variant whose label is
/// empty, so [`RunSpec::id`] strings and golden snapshots of plain
/// matrices are unaffected by this axis.
#[derive(Debug, Clone)]
pub struct VariantEntry {
    /// Short stable label used in reports and lookups; empty for the
    /// neutral default (pinned threads), in which case `id()` omits it.
    pub label: String,
    /// Rotate thread→core mappings every n-th barrier release (0 = never).
    pub migrate_every: u64,
    /// How many positions each migration rotates by.
    pub migrate_rotation: usize,
    /// Track logical thread IDs through the mapping (§5.5) instead of
    /// physical core IDs.
    pub logical_tracking: bool,
}

impl VariantEntry {
    /// The neutral default: pinned threads, physical-ID tracking.
    pub fn pinned() -> Self {
        VariantEntry {
            label: String::new(),
            migrate_every: 0,
            migrate_rotation: 0,
            logical_tracking: false,
        }
    }
}

/// The declarative cross product an experiment sweeps over.
///
/// A matrix is benchmarks × protocols × seeds × machines, plus run flags
/// that apply to every cell. [`RunMatrix::expand`] flattens it into
/// individually executable [`RunSpec`]s in a deterministic order
/// (benchmark-major, then protocol, then seed, then machine), so run
/// indices are stable across processes and worker counts.
///
/// # Examples
///
/// ```
/// use spcp_harness::RunMatrix;
/// use spcp_system::ProtocolKind;
/// use spcp_workloads::suite;
///
/// let matrix = RunMatrix::new()
///     .bench(suite::by_name("fmm").unwrap())
///     .protocol("dir", ProtocolKind::Directory)
///     .protocol("bc", ProtocolKind::Broadcast)
///     .seeds(&[7, 8]);
/// assert_eq!(matrix.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct RunMatrix {
    benches: Vec<BenchmarkSpec>,
    protocols: Vec<ProtocolEntry>,
    seeds: Vec<u64>,
    machines: Vec<MachineEntry>,
    machines_explicit: bool,
    variants: Vec<VariantEntry>,
    variants_explicit: bool,
    record: bool,
    validate: bool,
    snoop_filter: bool,
}

impl Default for RunMatrix {
    fn default() -> Self {
        Self::new()
    }
}

impl RunMatrix {
    /// An empty matrix with seed 7 on the paper's 16-core machine.
    ///
    /// Seed 7 and `paper16` match the defaults the bench binaries have
    /// always used, so sweeps reproduce the figures unless overridden.
    pub fn new() -> Self {
        RunMatrix {
            benches: Vec::new(),
            protocols: Vec::new(),
            seeds: vec![7],
            machines: vec![MachineEntry {
                label: "paper16".to_string(),
                config: MachineConfig::paper_16core(),
            }],
            machines_explicit: false,
            variants: vec![VariantEntry::pinned()],
            variants_explicit: false,
            record: false,
            validate: false,
            snoop_filter: false,
        }
    }

    /// Adds one benchmark.
    pub fn bench(mut self, spec: BenchmarkSpec) -> Self {
        self.benches.push(spec);
        self
    }

    /// Adds many benchmarks.
    pub fn benches(mut self, specs: impl IntoIterator<Item = BenchmarkSpec>) -> Self {
        self.benches.extend(specs);
        self
    }

    /// Adds a labelled protocol.
    pub fn protocol(mut self, label: impl Into<String>, kind: ProtocolKind) -> Self {
        self.protocols.push(ProtocolEntry {
            label: label.into(),
            kind,
        });
        self
    }

    /// Replaces the seed list (default: `[7]`).
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Adds a labelled machine. The first explicit machine replaces the
    /// implicit `paper16` default.
    pub fn machine(mut self, label: impl Into<String>, config: MachineConfig) -> Self {
        if !self.machines_explicit {
            self.machines.clear();
            self.machines_explicit = true;
        }
        self.machines.push(MachineEntry {
            label: label.into(),
            config,
        });
        self
    }

    /// Adds a labelled scenario variant (thread-migration knobs). The
    /// first explicit variant replaces the implicit pinned default.
    pub fn variant(
        mut self,
        label: impl Into<String>,
        migrate_every: u64,
        migrate_rotation: usize,
        logical_tracking: bool,
    ) -> Self {
        if !self.variants_explicit {
            self.variants.clear();
            self.variants_explicit = true;
        }
        self.variants.push(VariantEntry {
            label: label.into(),
            migrate_every,
            migrate_rotation,
            logical_tracking,
        });
        self
    }

    /// Enables epoch/volume recording on every run.
    pub fn recording(mut self) -> Self {
        self.record = true;
        self
    }

    /// Runs every cell through the validated entry point, which checks
    /// coherence invariants after the run.
    pub fn validated(mut self) -> Self {
        self.validate = true;
        self
    }

    /// Enables the snoop filter on every run.
    pub fn with_snoop_filter(mut self) -> Self {
        self.snoop_filter = true;
        self
    }

    /// Number of runs the matrix expands to.
    pub fn len(&self) -> usize {
        self.benches.len()
            * self.protocols.len()
            * self.seeds.len()
            * self.machines.len()
            * self.variants.len()
    }

    /// True when the matrix expands to no runs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattens the matrix into executable [`RunSpec`]s.
    ///
    /// The order is benchmark-major → protocol → seed → machine → variant
    /// and is the canonical run ordering: `RunSpec::index` positions are
    /// identical no matter how many workers later execute them.
    pub fn expand(&self) -> Vec<RunSpec> {
        let mut specs = Vec::with_capacity(self.len());
        for bench in &self.benches {
            for proto in &self.protocols {
                for &seed in &self.seeds {
                    for machine in &self.machines {
                        for variant in &self.variants {
                            specs.push(RunSpec {
                                index: specs.len(),
                                bench: bench.clone(),
                                protocol_label: proto.label.clone(),
                                protocol: proto.kind.clone(),
                                seed,
                                machine_label: machine.label.clone(),
                                machine: machine.config.clone(),
                                variant: variant.clone(),
                                record: self.record,
                                validate: self.validate,
                                snoop_filter: self.snoop_filter,
                            });
                        }
                    }
                }
            }
        }
        specs
    }
}

/// One fully specified, independently executable experiment run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Position in the canonical matrix ordering.
    pub index: usize,
    /// The workload to synthesize.
    pub bench: BenchmarkSpec,
    /// Short protocol label from the matrix.
    pub protocol_label: String,
    /// The protocol to run under.
    pub protocol: ProtocolKind,
    /// Workload generation seed.
    pub seed: u64,
    /// Short machine label from the matrix.
    pub machine_label: String,
    /// The machine to simulate.
    pub machine: MachineConfig,
    /// Scenario variant (thread-migration knobs) applied on top.
    pub variant: VariantEntry,
    /// Record per-epoch sharing volumes.
    pub record: bool,
    /// Check coherence invariants after the run.
    pub validate: bool,
    /// Enable the snoop filter.
    pub snoop_filter: bool,
}

impl RunSpec {
    /// Synthesizes the workload and simulates it, returning the run's stats.
    ///
    /// Runs share no mutable state, which is what makes the sweep engine's
    /// parallelism trivially deterministic.
    pub fn execute(&self) -> RunStats {
        let workload = self.bench.generate(self.machine.num_cores, self.seed);
        let mut cfg = RunConfig::new(self.machine.clone(), self.protocol.clone());
        if self.record {
            cfg = cfg.recording();
        }
        if self.snoop_filter {
            cfg = cfg.with_snoop_filter();
        }
        if self.variant.migrate_every > 0 || self.variant.logical_tracking {
            cfg = cfg.with_migration(
                self.variant.migrate_every,
                self.variant.migrate_rotation,
                self.variant.logical_tracking,
            );
        }
        if self.validate {
            CmpSystem::run_workload_validated(&workload, &cfg)
        } else {
            CmpSystem::run_workload(&workload, &cfg)
        }
    }

    /// A compact human-readable identifier, e.g. `fmm/dir/seed7/paper16`.
    ///
    /// Non-default scenario variants append their label
    /// (`fmm/sp/seed7/paper16/migr-log`); the neutral pinned variant is
    /// omitted so plain-matrix ids are stable across this axis.
    pub fn id(&self) -> String {
        let base = format!(
            "{}/{}/seed{}/{}",
            self.bench.name, self.protocol_label, self.seed, self.machine_label
        );
        if self.variant.label.is_empty() {
            base
        } else {
            format!("{base}/{}", self.variant.label)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spcp_workloads::suite;

    fn tiny_matrix() -> RunMatrix {
        RunMatrix::new()
            .bench(suite::by_name("fft").unwrap())
            .bench(suite::by_name("lu").unwrap())
            .protocol("dir", ProtocolKind::Directory)
            .protocol("bc", ProtocolKind::Broadcast)
            .seeds(&[7, 11])
    }

    #[test]
    fn expansion_is_bench_major_and_indexed() {
        let specs = tiny_matrix().expand();
        assert_eq!(specs.len(), 8);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.index, i);
        }
        assert_eq!(specs[0].id(), "fft/dir/seed7/paper16");
        assert_eq!(specs[1].id(), "fft/dir/seed11/paper16");
        assert_eq!(specs[2].id(), "fft/bc/seed7/paper16");
        assert_eq!(specs[4].id(), "lu/dir/seed7/paper16");
    }

    #[test]
    fn explicit_machine_replaces_default() {
        let mut small = MachineConfig::paper_16core();
        small.num_cores = 4;
        small.noc.width = 2;
        small.noc.height = 2;
        let m = RunMatrix::new()
            .bench(suite::by_name("fft").unwrap())
            .protocol("dir", ProtocolKind::Directory)
            .machine("quad", small);
        let specs = m.expand();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].machine_label, "quad");
        assert_eq!(specs[0].machine.num_cores, 4);
    }

    #[test]
    fn empty_matrix_reports_empty() {
        assert!(RunMatrix::new().is_empty());
    }

    #[test]
    fn variants_expand_innermost_and_tag_ids() {
        let m = RunMatrix::new()
            .bench(suite::by_name("fft").unwrap())
            .protocol(
                "sp",
                ProtocolKind::Predicted(spcp_system::PredictorKind::sp_default()),
            )
            .variant("pin", 0, 0, false)
            .variant("migr-phys", 10, 1, false)
            .variant("migr-log", 10, 1, true);
        assert_eq!(m.len(), 3);
        let specs = m.expand();
        assert_eq!(specs[0].id(), "fft/sp/seed7/paper16/pin");
        assert_eq!(specs[1].id(), "fft/sp/seed7/paper16/migr-phys");
        assert_eq!(specs[2].id(), "fft/sp/seed7/paper16/migr-log");
        assert_eq!(specs[1].variant.migrate_every, 10);
        assert!(specs[2].variant.logical_tracking);
    }

    #[test]
    fn migration_variant_changes_execution() {
        let m = RunMatrix::new()
            .bench(suite::by_name("fft").unwrap())
            .protocol("dir", ProtocolKind::Directory)
            .variant("pin", 0, 0, false)
            .variant("migr", 4, 1, false);
        let specs = m.expand();
        let pinned = specs[0].execute();
        let migrated = specs[1].execute();
        assert_eq!(pinned.migrations, 0);
        assert!(migrated.migrations > 0, "migration variant must migrate");
    }

    #[test]
    fn default_variant_is_neutral() {
        let spec = &tiny_matrix().expand()[0];
        assert!(spec.variant.label.is_empty());
        assert_eq!(spec.variant.migrate_every, 0);
        assert!(!spec.variant.logical_tracking);
    }

    #[test]
    fn execute_is_deterministic() {
        let spec = &tiny_matrix().expand()[0];
        let a = spec.execute();
        let b = spec.execute();
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.noc.byte_hops, b.noc.byte_hops);
        assert_eq!(a.total_ops, b.total_ops);
    }
}
