//! Self-delimiting, checksummed line frames for result spool files.
//!
//! A spool file is a sequence of *frames*, one per line:
//!
//! ```text
//! SPCP1 <payload-len> <fnv1a64-hex> <payload>\n
//! ```
//!
//! * `payload-len` — decimal byte length of the payload;
//! * `fnv1a64-hex` — 16 lowercase hex digits, FNV-1a 64 over the payload
//!   bytes;
//! * `payload` — arbitrary UTF-8 without `\n` (one JSON object in spool
//!   files).
//!
//! The frame is what makes append-only spool files crash-safe: a record is
//! complete **iff** its line is newline-terminated, its magic/length parse,
//! the payload length matches, and the checksum verifies. A process killed
//! mid-`write` leaves at most one truncated tail line, which decoding
//! discards; a torn or bit-flipped line anywhere fails its checksum and is
//! rejected rather than misparsed. Concatenations of valid frame streams
//! decode to the concatenation of their payloads.

use std::fmt;

/// Magic token opening every frame line; bump when the frame layout
/// changes so old spools are rejected loudly.
pub const FRAME_MAGIC: &str = "SPCP1";

/// FNV-1a 64-bit checksum over a byte string.
///
/// Not cryptographic — it guards against truncation, torn writes and
/// random corruption, which is all a local spool file needs.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes one payload as a complete frame line (including the trailing
/// newline).
///
/// # Panics
///
/// Panics if the payload contains a newline — payloads are single-line by
/// contract, which is what makes frames self-delimiting.
pub fn encode(payload: &str) -> String {
    assert!(
        !payload.contains('\n'),
        "frame payloads must not contain newlines"
    );
    format!(
        "{FRAME_MAGIC} {} {:016x} {payload}\n",
        payload.len(),
        checksum(payload.as_bytes())
    )
}

/// Why a frame line failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line does not start with [`FRAME_MAGIC`].
    BadMagic,
    /// The line is missing the length/checksum/payload fields.
    Malformed,
    /// The declared payload length does not match the actual payload.
    LengthMismatch {
        /// Length declared in the frame header.
        declared: usize,
        /// Actual payload byte length on the line.
        actual: usize,
    },
    /// The payload checksum does not verify.
    ChecksumMismatch,
    /// The payload is not valid UTF-8.
    NotUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::Malformed => write!(f, "malformed frame line"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "frame length mismatch: declared {declared}, got {actual}"
                )
            }
            FrameError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            FrameError::NotUtf8 => write!(f, "frame payload is not UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Decodes one frame line (without its trailing newline) into its payload.
pub fn decode_line(line: &[u8]) -> Result<&str, FrameError> {
    let magic = FRAME_MAGIC.as_bytes();
    if line.len() < magic.len() + 1 || &line[..magic.len()] != magic || line[magic.len()] != b' ' {
        return Err(FrameError::BadMagic);
    }
    let rest = &line[magic.len() + 1..];
    // <len> SP <crc16hex> SP <payload>
    let len_end = rest
        .iter()
        .position(|&b| b == b' ')
        .ok_or(FrameError::Malformed)?;
    let len: usize = std::str::from_utf8(&rest[..len_end])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(FrameError::Malformed)?;
    let rest = &rest[len_end + 1..];
    if rest.len() < 17 || rest[16] != b' ' {
        return Err(FrameError::Malformed);
    }
    let crc = u64::from_str_radix(
        std::str::from_utf8(&rest[..16]).map_err(|_| FrameError::Malformed)?,
        16,
    )
    .map_err(|_| FrameError::Malformed)?;
    let payload = &rest[17..];
    if payload.len() != len {
        return Err(FrameError::LengthMismatch {
            declared: len,
            actual: payload.len(),
        });
    }
    if checksum(payload) != crc {
        return Err(FrameError::ChecksumMismatch);
    }
    std::str::from_utf8(payload).map_err(|_| FrameError::NotUtf8)
}

/// Outcome of decoding a whole byte stream of frames.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StreamDecode {
    /// Payloads of every valid frame, in file order.
    pub payloads: Vec<String>,
    /// Newline-terminated lines that failed to decode (corruption).
    pub rejected: usize,
    /// Whether the stream ended in an unterminated (torn) tail line,
    /// which is discarded — the signature of a crash mid-append.
    pub truncated_tail: bool,
}

/// Decodes a byte stream into frames, rejecting damaged lines and
/// discarding an unterminated tail.
///
/// This is the whole-buffer twin of the incremental reader in
/// [`crate::spool`]; property tests drive it with random truncations,
/// bit-flips and concatenations.
pub fn decode_stream(bytes: &[u8]) -> StreamDecode {
    let mut out = StreamDecode::default();
    let mut rest = bytes;
    while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
        let line = &rest[..nl];
        rest = &rest[nl + 1..];
        match decode_line(line) {
            Ok(payload) => out.payloads.push(payload.to_string()),
            Err(_) => out.rejected += 1,
        }
    }
    out.truncated_tail = !rest.is_empty();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let frame = encode(r#"{"kind":"run","index":3}"#);
        assert!(frame.ends_with('\n'));
        let payload = decode_line(frame.trim_end_matches('\n').as_bytes()).unwrap();
        assert_eq!(payload, r#"{"kind":"run","index":3}"#);
    }

    #[test]
    fn empty_payload_round_trips() {
        let frame = encode("");
        assert_eq!(decode_line(frame.trim_end_matches('\n').as_bytes()), Ok(""));
    }

    #[test]
    #[should_panic(expected = "newlines")]
    fn encode_rejects_embedded_newline() {
        encode("a\nb");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode_line(b"NOPE1 1 0 x"), Err(FrameError::BadMagic));
        assert_eq!(decode_line(b""), Err(FrameError::BadMagic));
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut frame = encode("hello world").into_bytes();
        frame.pop(); // drop newline
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert_eq!(decode_line(&frame), Err(FrameError::ChecksumMismatch));
    }

    #[test]
    fn truncated_payload_fails_length() {
        let frame = encode("hello world");
        let cut = &frame.as_bytes()[..frame.len() - 4];
        assert!(matches!(
            decode_line(cut),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn stream_discards_torn_tail() {
        let mut bytes = encode("one").into_bytes();
        bytes.extend_from_slice(&encode("two").into_bytes());
        let full = decode_stream(&bytes);
        assert_eq!(full.payloads, ["one", "two"]);
        assert!(!full.truncated_tail);
        assert_eq!(full.rejected, 0);

        // Cut mid-way through the second frame: only "one" survives.
        let cut = decode_stream(&bytes[..bytes.len() - 3]);
        assert_eq!(cut.payloads, ["one"]);
        assert!(cut.truncated_tail);
        assert_eq!(cut.rejected, 0);
    }

    #[test]
    fn stream_counts_corrupt_middle_lines() {
        let mut bytes = encode("one").into_bytes();
        bytes.extend_from_slice(b"garbage line\n");
        bytes.extend_from_slice(&encode("two").into_bytes());
        let got = decode_stream(&bytes);
        assert_eq!(got.payloads, ["one", "two"]);
        assert_eq!(got.rejected, 1);
        assert!(!got.truncated_tail);
    }

    #[test]
    fn checksum_is_stable() {
        // FNV-1a 64 reference value for the empty string.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(checksum(b"a"), checksum(b"b"));
    }
}
